//! Live-graph analysis, adaptation safety, validation gates and the
//! runtime monotonicity probe, exercised against real middleware
//! instances.

#![allow(clippy::unwrap_used)]

use std::collections::BTreeMap;

use perpos_analysis::adaptation::{check_adaptation, simulate, AdaptationOp, AdaptationPlan};
use perpos_analysis::gate::{config_gate, structure_gate};
use perpos_analysis::probe::{MonotonicityProbe, PROBE_NAME};
use perpos_analysis::{analyze_structure, Code, TypeCatalog};
use perpos_core::assembly::{
    Assembler, ComponentConfig, ComponentFactory, ConnectionConfig, GraphConfig,
};
use perpos_core::channel::{ChannelFeature, ChannelHost, ChannelId, DataNode, DataTree};
use perpos_core::graph::NodeId;
use perpos_core::prelude::*;

fn gps_factory() -> Box<dyn Component> {
    Box::new(FnSource::new("gps", kinds::RAW_STRING, |_| {
        Some(Value::from("$GPGGA"))
    }))
}

fn parser_factory() -> Box<dyn Component> {
    Box::new(FnProcessor::new(
        "parser",
        vec![kinds::RAW_STRING],
        kinds::NMEA_SENTENCE,
        |i| Some(i.payload.clone()),
    ))
}

/// gps -> parser -> app, returning (mw, gps, parser, app).
fn pipeline() -> (Middleware, NodeId, NodeId, NodeId) {
    let mut mw = Middleware::new();
    let gps = mw.add_boxed_component(gps_factory());
    let parser = mw.add_boxed_component(parser_factory());
    let app = mw.application_sink();
    mw.connect(gps, parser, 0).unwrap();
    mw.connect(parser, app, 0).unwrap();
    (mw, gps, parser, app)
}

// ---------------------------------------------------------------------
// Live structure analysis
// ---------------------------------------------------------------------

#[test]
fn healthy_pipeline_analyzes_clean() {
    let (mw, ..) = pipeline();
    let report = analyze_structure(&mw.structure());
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn dangling_processor_input_is_p002_error() {
    let mut mw = Middleware::new();
    let parser = mw.add_boxed_component(parser_factory());
    mw.connect(parser, mw.application_sink(), 0).unwrap();
    let report = analyze_structure(&mw.structure());
    assert_eq!(
        report.with_code(Code::P002).len(),
        1,
        "{}",
        report.render_human()
    );
    assert!(report.has_errors());
}

#[test]
fn unconsumed_source_is_p004_warning() {
    let (mut mw, ..) = pipeline();
    mw.add_boxed_component(gps_factory());
    let report = analyze_structure(&mw.structure());
    let dead = report.with_code(Code::P004);
    assert_eq!(dead.len(), 1, "{}", report.render_human());
    assert!(!report.has_errors(), "dead components warn, not error");
}

#[test]
fn lost_feature_requirement_is_p003_error() {
    // The live graph validates feature requirements at connect time; a
    // structure where the requirement got lost afterwards must be caught.
    let (mw, ..) = pipeline();
    let mut nodes = mw.structure();
    let parser = nodes
        .iter_mut()
        .find(|n| n.descriptor.name == "parser")
        .unwrap();
    parser.descriptor.inputs[0]
        .required_features
        .push("Hdop".into());
    let report = analyze_structure(&nodes);
    let hits = report.with_code(Code::P003);
    assert_eq!(hits.len(), 1, "{}", report.render_human());
    assert!(hits[0].message.contains("Hdop"));
}

#[test]
fn conflicting_features_are_p006_warnings() {
    let (mw, ..) = pipeline();
    let mut nodes = mw.structure();
    let gps = nodes
        .iter_mut()
        .find(|n| n.descriptor.name == "gps")
        .unwrap();
    gps.features.push(
        FeatureDescriptor::new("SatA")
            .adds(kinds::POSITION_WGS84)
            .method(MethodSpec::new("count", "() -> int")),
    );
    gps.features.push(
        FeatureDescriptor::new("SatB")
            .adds(kinds::POSITION_WGS84)
            .method(MethodSpec::new("count", "() -> int")),
    );
    let report = analyze_structure(&nodes);
    let hits = report.with_code(Code::P006);
    assert_eq!(
        hits.len(),
        2,
        "one kind conflict + one method conflict:\n{}",
        report.render_human()
    );
    assert!(!report.has_errors());
}

#[test]
fn feature_added_kind_satisfies_type_flow() {
    // P001 must honour effective provides: a feature-added kind makes an
    // otherwise-mismatched edge valid.
    let (mw, ..) = pipeline();
    let mut nodes = mw.structure();
    let parser_id = nodes
        .iter()
        .find(|n| n.descriptor.name == "parser")
        .unwrap()
        .id;
    // Narrow the app port to expect positions only: the edge from parser
    // (nmea.sentence) now mismatches...
    let app = nodes
        .iter_mut()
        .find(|n| n.descriptor.role == ComponentRole::Sink)
        .unwrap();
    app.descriptor.inputs[0].accepts = vec![kinds::POSITION_WGS84];
    let report = analyze_structure(&nodes);
    assert_eq!(
        report.with_code(Code::P001).len(),
        1,
        "{}",
        report.render_human()
    );
    // ...until a feature on the parser adds the position kind.
    let parser = nodes.iter_mut().find(|n| n.id == parser_id).unwrap();
    parser
        .features
        .push(FeatureDescriptor::new("Geodecode").adds(kinds::POSITION_WGS84));
    let report = analyze_structure(&nodes);
    assert!(
        report.with_code(Code::P001).is_empty(),
        "{}",
        report.render_human()
    );
}

// ---------------------------------------------------------------------
// Adaptation safety
// ---------------------------------------------------------------------

#[test]
fn disconnecting_a_required_input_is_unsafe() {
    let (mw, _, parser, _) = pipeline();
    let plan = AdaptationPlan::new().then(AdaptationOp::Disconnect {
        to: parser,
        port: 0,
    });
    let report = check_adaptation(&mw, &plan);
    assert!(report.has_errors(), "{}", report.render_human());
    assert_eq!(report.with_code(Code::P002).len(), 1);
    // The live middleware was not touched.
    assert!(analyze_structure(&mw.structure()).is_clean());
}

#[test]
fn self_wiring_plan_is_reported_as_a_cycle() {
    let (mw, gps, parser, _) = pipeline();
    // Free the port, drop the source, then wire the parser to itself:
    // each op applies cleanly, but the resulting structure is cyclic.
    let plan = AdaptationPlan::new()
        .then(AdaptationOp::Disconnect {
            to: parser,
            port: 0,
        })
        .then(AdaptationOp::Remove { node: gps })
        .then(AdaptationOp::Connect {
            from: parser,
            to: parser,
            port: 0,
        });
    let report = check_adaptation(&mw, &plan);
    assert_eq!(
        report.with_code(Code::P005).len(),
        1,
        "{}",
        report.render_human()
    );
}

#[test]
fn connecting_an_occupied_port_fails_the_plan() {
    let (mw, _, parser, _) = pipeline();
    let plan = AdaptationPlan::new().then(AdaptationOp::Connect {
        from: parser,
        to: parser,
        port: 0,
    });
    // Port 0 of parser is occupied: the op itself fails (P007).
    let report = check_adaptation(&mw, &plan);
    assert_eq!(
        report.with_code(Code::P007).len(),
        1,
        "{}",
        report.render_human()
    );
}

#[test]
fn detaching_a_feature_an_edge_relies_on_is_unsafe() {
    let (mw, gps, parser, _) = pipeline();
    let mut nodes = mw.structure();
    // Model: gps carries feature "Hdop"; parser's port requires it.
    let g = nodes.iter_mut().find(|n| n.id == gps).unwrap();
    g.features.push(FeatureDescriptor::new("Hdop"));
    let p = nodes.iter_mut().find(|n| n.id == parser).unwrap();
    p.descriptor.inputs[0].required_features.push("Hdop".into());
    let plan = AdaptationPlan::new().then(AdaptationOp::DetachFeature {
        node: gps,
        feature: "Hdop".into(),
    });
    let (result, op_report) = simulate(nodes, &plan);
    assert!(op_report.is_clean(), "{}", op_report.render_human());
    let report = analyze_structure(&result);
    assert_eq!(
        report.with_code(Code::P003).len(),
        1,
        "{}",
        report.render_human()
    );
}

#[test]
fn attach_feature_plan_is_safe_and_validated() {
    let (mw, gps, ..) = pipeline();
    let plan = AdaptationPlan::new().then(AdaptationOp::AttachFeature {
        node: gps,
        descriptor: FeatureDescriptor::new("NumberOfSatellites"),
    });
    let report = check_adaptation(&mw, &plan);
    assert!(!report.has_errors(), "{}", report.render_human());
    // Attaching the same feature twice is rejected by the simulation.
    let twice = AdaptationPlan {
        ops: vec![plan.ops[0].clone(), plan.ops[0].clone()],
    };
    let report = check_adaptation(&mw, &twice);
    assert_eq!(
        report.with_code(Code::P007).len(),
        1,
        "{}",
        report.render_human()
    );
}

// ---------------------------------------------------------------------
// Gates
// ---------------------------------------------------------------------

fn factories() -> BTreeMap<String, ComponentFactory> {
    let mut f: BTreeMap<String, ComponentFactory> = BTreeMap::new();
    f.insert("gps".into(), Box::new(gps_factory));
    f.insert("parser".into(), Box::new(parser_factory));
    f
}

#[test]
fn instantiate_checked_blocks_bad_config_without_touching_middleware() {
    let factories = factories();
    let gate = config_gate(TypeCatalog::probe(&factories));
    // parser's input is never driven: P002 error at config level.
    let bad = GraphConfig {
        components: vec![
            ComponentConfig {
                name: "p0".into(),
                kind: "parser".into(),
                fault_policy: None,
                transfer: None,
                effects: None,
            },
            ComponentConfig {
                name: "app".into(),
                kind: "application".into(),
                fault_policy: None,
                transfer: None,
                effects: None,
            },
        ],
        connections: vec![ConnectionConfig {
            from: "p0".into(),
            to: "app".into(),
            port: 0,
        }],
        executor: None,
        tree_policy: None,
        fleet: None,
    };
    let mut mw = Middleware::new();
    let before = mw.structure().len();
    let err = bad
        .instantiate_checked(&mut mw, &factories, &gate)
        .unwrap_err();
    assert!(err.to_string().contains("P002"), "{err}");
    assert_eq!(mw.structure().len(), before, "nothing was instantiated");

    // The same gate passes a sound configuration.
    let good = GraphConfig {
        components: vec![
            ComponentConfig {
                name: "gps0".into(),
                kind: "gps".into(),
                fault_policy: Some("drop_item".into()),
                transfer: None,
                effects: None,
            },
            ComponentConfig {
                name: "p0".into(),
                kind: "parser".into(),
                fault_policy: None,
                transfer: None,
                effects: None,
            },
            ComponentConfig {
                name: "app".into(),
                kind: "application".into(),
                fault_policy: None,
                transfer: None,
                effects: None,
            },
        ],
        connections: vec![
            ConnectionConfig {
                from: "gps0".into(),
                to: "p0".into(),
                port: 0,
            },
            ConnectionConfig {
                from: "p0".into(),
                to: "app".into(),
                port: 0,
            },
        ],
        executor: None,
        tree_policy: None,
        fleet: None,
    };
    let nodes = good
        .instantiate_checked(&mut mw, &factories, &gate)
        .unwrap();
    assert_eq!(nodes.len(), 3);
}

#[test]
fn sync_checked_flags_unsound_assembled_structure() {
    let mut mw = Middleware::new();
    let mut asm = Assembler::new();
    // A parser that declares an input port but no registry requirement:
    // it resolves immediately and assembles with a dangling input.
    asm.register_factory("parser", &[kinds::NMEA_SENTENCE], &[], parser_factory);
    let err = asm.sync_checked(&mut mw, &structure_gate()).unwrap_err();
    assert!(err.to_string().contains("P002"), "{err}");

    // A sound assembly passes the same gate (the unconnected app sink and
    // the parser not reaching it are warnings, not errors).
    let mut mw = Middleware::new();
    let mut asm = Assembler::new();
    asm.register_factory(
        "parser",
        &[kinds::NMEA_SENTENCE],
        &[kinds::RAW_STRING],
        parser_factory,
    );
    asm.register_factory("gps", &[kinds::RAW_STRING], &[], gps_factory);
    assert_eq!(asm.sync_checked(&mut mw, &structure_gate()).unwrap(), 2);
}

// ---------------------------------------------------------------------
// Runtime monotonicity probe (P008)
// ---------------------------------------------------------------------

#[test]
fn probe_is_silent_on_a_healthy_channel() {
    let (mut mw, _, _, app) = pipeline();
    let channel = mw.channel_into(app, 0).expect("channel into the sink");
    mw.attach_channel_feature(channel, MonotonicityProbe::new())
        .unwrap();
    mw.run_for(SimDuration::from_millis(500), SimDuration::from_millis(100))
        .unwrap();
    let (deliveries, violations) = mw
        .with_channel_feature_mut(channel, PROBE_NAME, |p: &mut MonotonicityProbe| {
            (p.deliveries(), p.report())
        })
        .unwrap();
    assert!(deliveries > 0, "probe saw deliveries");
    assert!(violations.is_clean(), "{}", violations.render_human());
    // Reflective access reports the same.
    let count = mw
        .invoke_channel_feature(channel, PROBE_NAME, "violationCount", &[])
        .unwrap();
    assert_eq!(count, Value::Int(0));
}

#[test]
fn probe_reports_p008_on_non_monotonic_logical_time() {
    let mut graph = ProcessingGraph::new();
    let node = graph.add(Box::new(FnSource::new("src", kinds::RAW_STRING, |_| None)));
    let members = [node];

    let tree_at = |logical: u64| DataTree {
        channel: ChannelId::of_head(node),
        root: DataNode {
            component: node,
            component_name: "src".into(),
            item: DataItem::new(kinds::RAW_STRING, SimTime::ZERO, Value::Null),
            logical,
            range: None,
            children: Vec::new(),
        },
    };

    let mut probe = MonotonicityProbe::new();
    {
        let mut host = ChannelHost::for_test(&mut graph, &members);
        probe.apply(&tree_at(1), &mut host).unwrap();
        probe.apply(&tree_at(2), &mut host).unwrap();
        // Logical time repeats: violation.
        probe.apply(&tree_at(2), &mut host).unwrap();
    }
    let report = probe.report();
    let hits = report.with_code(Code::P008);
    assert_eq!(hits.len(), 1, "{}", report.render_human());
    assert!(report.has_errors());
    assert_eq!(probe.invoke("violationCount", &[]).unwrap(), Value::Int(1));
    probe.invoke("reset", &[]).unwrap();
    assert_eq!(probe.invoke("violationCount", &[]).unwrap(), Value::Int(0));
}

#[test]
fn probe_checks_consumed_ranges() {
    let mut graph = ProcessingGraph::new();
    let src = graph.add(Box::new(FnSource::new("src", kinds::RAW_STRING, |_| None)));
    let members = [src];
    let item = || DataItem::new(kinds::RAW_STRING, SimTime::ZERO, Value::Null);

    // Root claims it consumed logical times 1-2 but a child reports 5.
    let tree = DataTree {
        channel: ChannelId::of_head(src),
        root: DataNode {
            component: src,
            component_name: "agg".into(),
            item: item(),
            logical: 1,
            range: Some((1, 2)),
            children: vec![DataNode {
                component: src,
                component_name: "src".into(),
                item: item(),
                logical: 5,
                range: None,
                children: Vec::new(),
            }],
        },
    };
    let mut probe = MonotonicityProbe::new();
    {
        let mut host = ChannelHost::for_test(&mut graph, &members);
        probe.apply(&tree, &mut host).unwrap();
    }
    assert_eq!(probe.report().with_code(Code::P008).len(), 1);
}
