//! Accuracy-interval propagation (P011).
//!
//! The fact on a node's output is the interval of horizontal accuracy
//! (in metres, lower = better) that position data derived from the
//! node's output can achieve: `Some((best, worst))`, or `None` when
//! nothing upstream declares accuracy. Sources (and synthesizing
//! components) declare their interval via
//! [`TransferSpec::accuracy_best_m`] / [`TransferSpec::accuracy_worst_m`];
//! other components combine their inputs by taking the *best* bound per
//! end (a fusion step may always fall back to its most accurate input)
//! and then apply their declared degradation
//! ([`TransferSpec::accuracy_scale`], [`TransferSpec::accuracy_add_m`]).
//!
//! [`diagnostics`] reports P011 when a component *claims* an accuracy
//! ([`TransferSpec::claims_accuracy_m`]) strictly better than the
//! statically achievable best bound — a promise no runtime condition can
//! ever satisfy.

use crate::dataflow::{Domain, FlowGraph};
use crate::diagnostic::{Code, Diagnostic, Report, Severity};

#[allow(unused_imports)] // doc links
use perpos_core::component::TransferSpec;

/// The accuracy-interval domain; facts are optional `(best, worst)`
/// metre intervals.
pub struct AccuracyDomain;

impl Domain for AccuracyDomain {
    type Fact = Option<(f64, f64)>;

    fn bottom(&self) -> Self::Fact {
        None
    }

    fn transfer(
        &self,
        graph: &FlowGraph,
        node: usize,
        inputs: &[(usize, &Self::Fact)],
    ) -> Self::Fact {
        let t = &graph.nodes[node].transfer;
        if t.accuracy_best_m.is_some() || t.accuracy_worst_m.is_some() {
            let best = t.accuracy_best_m.or(t.accuracy_worst_m).unwrap_or(0.0);
            let worst = t.accuracy_worst_m.unwrap_or(best).max(best);
            return Some((best, worst));
        }
        let mut combined: Option<(f64, f64)> = None;
        for (_, fact) in inputs {
            if let Some((lo, hi)) = fact {
                combined = Some(match combined {
                    Some((clo, chi)) => (clo.min(*lo), chi.min(*hi)),
                    None => (*lo, *hi),
                });
            }
        }
        combined.map(|(lo, hi)| {
            let scale = t.accuracy_scale.unwrap_or(1.0);
            let add = t.accuracy_add_m.unwrap_or(0.0);
            (lo * scale + add, hi * scale + add)
        })
    }

    fn widen(&self, _previous: &Self::Fact, next: &Self::Fact) -> Self::Fact {
        // Jump straight to the widest interval: anything between 0 m and
        // unbounded error is possible.
        next.map(|_| (0.0, f64::INFINITY))
    }
}

/// P011 checks over the solved accuracy facts.
pub fn diagnostics(graph: &FlowGraph, facts: &[Option<(f64, f64)>], report: &mut Report) {
    for (i, n) in graph.nodes.iter().enumerate() {
        let Some(claimed) = n.transfer.claims_accuracy_m else {
            continue;
        };
        let Some((best, _)) = facts[i] else { continue };
        if claimed < best {
            report.push(
                Diagnostic::new(
                    Code::P011,
                    Severity::Error,
                    format!(
                        "{} claims {claimed} m accuracy but the statically achievable \
                         best over its inputs is {best} m",
                        n.label
                    ),
                    vec![n.label.clone()],
                )
                .with_hint(
                    "relax the claimed accuracy or feed the component from a more \
                     accurate source",
                ),
            );
        }
    }
}
