//! Ablation experiment — the value of *timing* in translucency.
//!
//! The paper's §3.4 claims PerPos "is superior in its retainment of
//! timing information connecting low-level and high-level information":
//! a PoSIM-style `getHDOP()` "will always return the latest HDOP value,
//! which may correspond to a new position" (§3.2). This experiment makes
//! that difference measurable.
//!
//! Scenario: an application gates GPS positions on quality (keep only
//! fixes with HDOP below a threshold), processing its input in batches —
//! the normal situation for a server-side consumer. Two gating
//! strategies:
//!
//! * **timed (PerPos)** — each position carries the accuracy derived from
//!   *its own* sentence (association maintained by the data-tree
//!   machinery);
//! * **stale (PoSIM-style)** — the application queries the Parser's HDOP
//!   feature once per batch and applies that latest value to every
//!   position in the batch.
//!
//! Reported: what fraction of gating decisions are wrong under each
//! strategy, and the error of the positions each strategy accepts.
//!
//! Run with: `cargo run -p perpos-bench --bin exp_ablation_timing --release`

#![allow(clippy::unwrap_used)]
use perpos_bench::{frame, ErrorStats};
use perpos_core::prelude::*;
use perpos_sensors::{GpsEnvironment, GpsSimulator, HdopFeature, Interpreter, Parser, Trajectory};

const HDOP_GATE: f64 = 2.5;
const UERE_M: f64 = 5.0;

struct Decision {
    error_m: f64,
    true_hdop: f64,
    accepted_timed: bool,
    accepted_stale: bool,
}

fn run(batch_s: u64, seed: u64) -> Vec<Decision> {
    // Strongly fluctuating sky: HDOP varies sample to sample.
    let env = GpsEnvironment {
        mean_visible_sats: 6.5,
        sat_stddev: 2.5,
        base_noise_m: 6.0,
        dropout_prob: 0.02,
    };
    let walk = Trajectory::new(
        vec![
            perpos_geo::Point2::new(0.0, 0.0),
            perpos_geo::Point2::new(250.0, 0.0),
        ],
        1.4,
    );
    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame(), walk.clone())
            .with_seed(seed)
            .with_environment(env),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let app = mw.application_sink();
    mw.connect(gps, parser, 0).unwrap();
    mw.connect(parser, interpreter, 0).unwrap();
    mw.connect(interpreter, app, 0).unwrap();
    mw.attach_feature(parser, HdopFeature::new()).unwrap();
    let provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();

    let f = frame();
    let mut decisions = Vec::new();
    let mut seen = 0usize;
    for _ in 0..(250 / batch_s.max(1)) {
        // Run one batch interval.
        for _ in 0..batch_s {
            mw.step().unwrap();
            mw.advance_clock(SimDuration::from_secs(1));
        }
        // The application wakes up and processes the batch.
        let history = provider.history();
        let batch = &history[seen..];
        // PoSIM-style: one latest-value query for the whole batch.
        let stale_hdop = mw
            .invoke(parser, "getHDOP", &[])
            .unwrap()
            .as_f64()
            .unwrap_or(99.0);
        for item in batch {
            let Some(p) = item.payload.as_position() else {
                continue;
            };
            // PerPos: the position's own accuracy is its own sentence's
            // HDOP (the data-tree association, folded into the item).
            let own_hdop = p.accuracy_m().unwrap_or(99.0) / UERE_M;
            let truth = walk.position_at(item.timestamp);
            decisions.push(Decision {
                error_m: f.to_local(p.coord()).distance(&truth),
                true_hdop: own_hdop,
                accepted_timed: own_hdop <= HDOP_GATE,
                accepted_stale: stale_hdop <= HDOP_GATE,
            });
        }
        seen = history.len();
    }
    decisions
}

fn summarize(decisions: &[Decision], pick: impl Fn(&Decision) -> bool) -> (usize, ErrorStats) {
    let accepted: Vec<f64> = decisions
        .iter()
        .filter(|d| pick(d))
        .map(|d| d.error_m)
        .collect();
    (accepted.len(), ErrorStats::from(accepted))
}

fn main() {
    println!("=== ablation: correctly-timed vs latest-value (stale) HDOP gating ===");
    println!("gate: accept positions with HDOP <= {HDOP_GATE}\n");
    println!(
        "{:<10} {:<9} {:>9} {:>10} {:>10} {:>12}",
        "batch", "strategy", "accepted", "mean err", "p95 err", "wrong gates"
    );
    println!("{}", "-".repeat(64));
    for batch_s in [1u64, 5, 15, 30] {
        let mut all = Vec::new();
        for seed in [3u64, 19, 59] {
            all.extend(run(batch_s, seed));
        }
        let n = all.len();
        let (nt, st) = summarize(&all, |d| d.accepted_timed);
        let wrong_timed = all
            .iter()
            .filter(|d| d.accepted_timed != (d.true_hdop <= HDOP_GATE))
            .count();
        println!(
            "{:<10} {:<9} {:>9} {:>10.2} {:>10.2} {:>7}/{:<4}",
            format!("{batch_s}s"),
            "timed",
            nt,
            st.mean,
            st.p95,
            wrong_timed,
            n
        );
        let (ns, ss) = summarize(&all, |d| d.accepted_stale);
        let wrong_stale = all
            .iter()
            .filter(|d| d.accepted_stale != (d.true_hdop <= HDOP_GATE))
            .count();
        println!(
            "{:<10} {:<9} {:>9} {:>10.2} {:>10.2} {:>7}/{:<4}",
            "", "stale", ns, ss.mean, ss.p95, wrong_stale, n
        );
    }
    println!(
        "\n(expected shape: at batch = 1 s the strategies nearly coincide; as batching grows,\n the stale strategy mis-gates more positions — accepting bad fixes and dropping good\n ones — while the timed strategy is batch-size invariant. This is the §3.2/§3.4\n 'retainment of timing information' claim, quantified.)"
    );
}
