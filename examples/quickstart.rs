//! Quickstart: the transparent ("seamless") use of PerPos.
//!
//! Builds the classic GPS pipeline of the paper's Fig. 1 — GPS sensor →
//! Parser → Interpreter → application — runs it for a minute of simulated
//! time and reads positions through the high-level Positioning Layer,
//! without touching any middleware internals.
//!
//! Run with: `cargo run --example quickstart`

use perpos::prelude::*;

fn main() -> Result<(), CoreError> {
    // A pedestrian walking 100 m east of the Aarhus campus anchor.
    let frame = LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).expect("valid anchor"));
    let walk = Trajectory::new(
        vec![Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)],
        1.4, // m/s
    );

    // Assemble the middleware: sensor -> parser -> interpreter -> app.
    let mut mw = Middleware::new();
    let gps = mw.add_component(GpsSimulator::new("GPS", frame, walk).with_seed(7));
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let app = mw.application_sink();
    mw.connect(gps, parser, 0)?;
    mw.connect(parser, interpreter, 0)?;
    mw.connect(interpreter, app, 0)?;

    // Pull semantics: request a provider, run, read positions.
    let provider = mw.location_provider(Criteria::new().kind(kinds::POSITION_WGS84))?;

    // Push semantics: subscribe before running.
    let updates = provider.subscribe();

    // Proximity notification 60 m down the road.
    let waypoint = frame.from_local(&Point2::new(60.0, 0.0));
    let proximity = provider.proximity_alert(waypoint, 10.0);

    mw.run_for(SimDuration::from_secs(60), SimDuration::from_millis(500))?;

    let last = provider.last_position().expect("a position after a minute");
    println!("latest position : {last}");
    println!("pushed updates  : {}", updates.try_iter().count());
    for event in proximity.try_iter() {
        println!(
            "proximity       : {} the 10 m zone at {} ({:.1} m from centre)",
            if event.entered { "entered" } else { "left" },
            event.at,
            event.distance_m
        );
    }

    // The same middleware is translucent when you need it to be:
    println!(
        "\nprocess tree (the PSL view):\n{}",
        mw.render_process_tree()
    );
    Ok(())
}
