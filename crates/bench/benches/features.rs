//! Criterion bench: per-item cost of attached Component Features
//! (interception overhead, the price of the paper's extension model).

#![allow(clippy::unwrap_used)]
use std::any::Any;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perpos_core::feature::{ComponentFeature, FeatureAction, FeatureDescriptor, FeatureHost};
use perpos_core::prelude::*;

struct Noop;
impl ComponentFeature for Noop {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new("Noop")
    }
    fn on_produce(
        &mut self,
        item: DataItem,
        _h: &mut FeatureHost<'_>,
    ) -> Result<FeatureAction, CoreError> {
        Ok(FeatureAction::Continue(item))
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Tagging;
impl ComponentFeature for Tagging {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new("Tagging")
    }
    fn on_produce(
        &mut self,
        mut item: DataItem,
        _h: &mut FeatureHost<'_>,
    ) -> Result<FeatureAction, CoreError> {
        item.attrs.insert("tag", Value::Int(1));
        Ok(FeatureAction::Continue(item))
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn setup(features: usize, tagging: bool) -> Middleware {
    let mut mw = Middleware::new();
    let mut i = 0i64;
    let src = mw.add_component(FnSource::new("src", kinds::RAW_STRING, move |_| {
        i += 1;
        Some(Value::Int(i))
    }));
    for _ in 0..features {
        if tagging {
            mw.attach_feature(src, Tagging).unwrap();
        } else {
            mw.attach_feature(src, Noop).unwrap();
        }
    }
    let app = mw.application_sink();
    mw.connect(src, app, 0).unwrap();
    mw
}

fn bench_noop_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("noop_features_per_item");
    for n in [0usize, 1, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut mw = setup(n, false);
            b.iter(|| {
                mw.step().unwrap();
                mw.advance_clock(SimDuration::from_micros(1));
            });
        });
    }
    group.finish();
}

fn bench_tagging_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("tagging_features_per_item");
    for n in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut mw = setup(n, true);
            b.iter(|| {
                mw.step().unwrap();
                mw.advance_clock(SimDuration::from_micros(1));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_noop_features, bench_tagging_features);
criterion_main!(benches);
