//! Offline shim for the `bytes` crate surface the PerPos workspace uses:
//! [`BytesMut`] as a growable byte buffer with cheap front consumption
//! via [`Buf::advance`], dereferencing to `[u8]`.

use std::fmt;
use std::ops::Deref;

/// Read access to a contiguous byte buffer with front consumption.
pub trait Buf {
    /// Bytes left between the read cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// A slice of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the read cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics when `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

/// A growable byte buffer.
///
/// Backed by a `Vec<u8>` plus a read offset; [`Buf::advance`] is O(1) and
/// the consumed prefix is physically reclaimed once it outgrows the live
/// region, keeping long-running streaming parsers at bounded memory.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
            start: 0,
        }
    }

    /// Appends `slice` to the end of the buffer.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether the buffer has no unread bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all contents.
    pub fn clear(&mut self) {
        self.data.clear();
        self.start = 0;
    }

    fn reclaim(&mut self) {
        // Compact when the dead prefix dominates; amortized O(1) per byte.
        if self.start > 64 && self.start * 2 >= self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance past end of buffer: {cnt} > {}",
            self.len()
        );
        self.start += cnt;
        self.reclaim();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl From<&[u8]> for BytesMut {
    fn from(slice: &[u8]) -> Self {
        BytesMut {
            data: slice.to_vec(),
            start: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_then_advance() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello ");
        b.extend_from_slice(b"world");
        assert_eq!(&b[..], b"hello world");
        b.advance(6);
        assert_eq!(&b[..], b"world");
        assert_eq!(b.len(), 5);
        b.extend_from_slice(b"!");
        assert_eq!(&b[..], b"world!");
    }

    #[test]
    fn reclaims_consumed_prefix() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[7u8; 1000]);
        b.advance(900);
        assert_eq!(b.len(), 100);
        assert!(b.data.len() < 1000, "dead prefix not reclaimed");
        assert_eq!(&b[..], &[7u8; 100][..]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = BytesMut::from(&b"ab"[..]);
        b.advance(3);
    }
}
