//! Component Features — small code modules that hook into a Processing
//! Component and augment it (paper §2.1, Fig. 3a).
//!
//! A [`ComponentFeature`] can augment its host component in the three ways
//! the paper enumerates:
//!
//! 1. **Changing produced data** — [`ComponentFeature::on_consume`] and
//!    [`ComponentFeature::on_produce`] intercept items flowing into and
//!    out of the component and may alter or drop them (the data *kind*
//!    cannot change, which the engine enforces).
//! 2. **Adding data** — a feature may call [`FeatureHost::emit`], which
//!    propagates the new item through the tree "as if it were produced by
//!    the component itself"; downstream ports must declare that they
//!    accept the added kind. Features may also *attach* attributes to a
//!    passing item (the common idiom for seam data like HDOP).
//! 3. **Changing component state** — [`ComponentFeature::invoke`] exposes
//!    new reflective methods, and the feature itself may call back into
//!    its host component through [`FeatureHost::invoke_component`].

use std::any::Any;
use std::fmt;

use crate::component::{Component, MethodSpec};
use crate::data::{DataItem, DataKind, Value};
use crate::{CoreError, SimTime};

/// Static description of a feature: its name, the data kinds it may add
/// to its host's output, and its reflective methods.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureDescriptor {
    /// Feature name; unique per host component (e.g. `"NumberOfSatellites"`).
    pub name: String,
    /// Data kinds the feature may emit through [`FeatureHost::emit`].
    /// These extend the host's output capabilities (paper §2.1).
    pub adds_kinds: Vec<DataKind>,
    /// Reflective methods the feature provides.
    pub methods: Vec<MethodSpec>,
    /// Names of components or features this feature depends on. For
    /// Channel Features the channel must contain a member component,
    /// attached Component Feature, or prior Channel Feature with each
    /// listed name (paper §2.2: "Input requirements may include Component
    /// Features, Channel Features, and Processing Components").
    pub requires: Vec<String>,
    /// Whether this feature anonymizes or aggregates identifiable sensor
    /// data passing through its host. Whole-graph privacy-taint analysis
    /// (`perpos-analysis` code P012) treats the host's output as clean
    /// when an anonymizing feature is attached.
    pub anonymizes: bool,
}

impl FeatureDescriptor {
    /// Creates a descriptor with no added kinds or methods.
    pub fn new(name: impl Into<String>) -> Self {
        FeatureDescriptor {
            name: name.into(),
            adds_kinds: Vec::new(),
            methods: Vec::new(),
            requires: Vec::new(),
            anonymizes: false,
        }
    }

    /// Marks the feature as anonymizing identifiable sensor data
    /// (builder style); see [`FeatureDescriptor::anonymizes`].
    pub fn anonymizing(mut self) -> Self {
        self.anonymizes = true;
        self
    }

    /// Declares an added data kind (builder style).
    pub fn adds(mut self, kind: DataKind) -> Self {
        self.adds_kinds.push(kind);
        self
    }

    /// Declares a dependency on a component or feature name (builder
    /// style).
    pub fn requiring(mut self, name: impl Into<String>) -> Self {
        self.requires.push(name.into());
        self
    }

    /// Declares a reflective method (builder style).
    pub fn method(mut self, spec: MethodSpec) -> Self {
        self.methods.push(spec);
        self
    }
}

/// Outcome of a feature intercepting an item.
#[derive(Debug)]
pub enum FeatureAction {
    /// Deliver the (possibly modified) item onward.
    Continue(DataItem),
    /// Swallow the item; it is not delivered further.
    Drop,
}

/// The view a running feature has of its host component.
///
/// Grants the three augmentation capabilities: emitting additional data as
/// the component, reflectively calling the component, and reading the
/// clock.
pub struct FeatureHost<'a> {
    component: &'a mut dyn Component,
    now: SimTime,
    emitted: Vec<DataItem>,
}

impl<'a> FeatureHost<'a> {
    /// Creates a host view over `component` at `now`. The engine builds
    /// these internally; tests may build one to unit-test a feature.
    pub fn new(component: &'a mut dyn Component, now: SimTime) -> Self {
        FeatureHost {
            component,
            now,
            emitted: Vec::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Emits `item` as if the host component had produced it
    /// (paper §2.1 "Adding Data"). The engine only forwards it to
    /// downstream ports that declare they accept the item's kind.
    pub fn emit(&mut self, item: DataItem) {
        self.emitted.push(item);
    }

    /// Convenience for [`FeatureHost::emit`] with a fresh item.
    pub fn emit_value(&mut self, kind: DataKind, payload: impl Into<crate::data::Payload>) {
        let item = DataItem::new(kind, self.now, payload);
        self.emit(item);
    }

    /// Reflectively invokes a method on the host component
    /// (paper §2.1 "Changing Component State").
    ///
    /// # Errors
    ///
    /// Propagates the component's [`CoreError::NoSuchMethod`] or other
    /// failure.
    pub fn invoke_component(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        self.component.invoke(method, args)
    }

    pub(crate) fn take_emitted(&mut self) -> Vec<DataItem> {
        std::mem::take(&mut self.emitted)
    }
}

impl fmt::Debug for FeatureHost<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FeatureHost")
            .field("now", &self.now)
            .field("pending_emissions", &self.emitted.len())
            .finish()
    }
}

/// A Component Feature (paper §2.1, Fig. 3a).
///
/// Features are attached to graph nodes with
/// [`crate::graph::ProcessingGraph::attach_feature`] and run in attachment
/// order: `on_consume` before the host sees an input, `on_produce` after
/// the host emits an output.
pub trait ComponentFeature: Send {
    /// The feature's static declaration.
    fn descriptor(&self) -> FeatureDescriptor;

    /// Intercepts an item about to be consumed by the host component.
    ///
    /// The default passes the item through unchanged.
    ///
    /// # Errors
    ///
    /// Implementations report failures as [`CoreError::ComponentFailure`].
    fn on_consume(
        &mut self,
        item: DataItem,
        host: &mut FeatureHost<'_>,
    ) -> Result<FeatureAction, CoreError> {
        let _ = host;
        Ok(FeatureAction::Continue(item))
    }

    /// Intercepts an item the host component just produced.
    ///
    /// The default passes the item through unchanged.
    ///
    /// # Errors
    ///
    /// Implementations report failures as [`CoreError::ComponentFailure`].
    fn on_produce(
        &mut self,
        item: DataItem,
        host: &mut FeatureHost<'_>,
    ) -> Result<FeatureAction, CoreError> {
        let _ = host;
        Ok(FeatureAction::Continue(item))
    }

    /// Reflectively invokes one of the feature's methods. The host view
    /// lets state-manipulation features act on their component — e.g. the
    /// EnTracked Power Strategy toggles the GPS from `setPowerMode`
    /// (paper §3.3).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSuchMethod`] for unknown methods.
    fn invoke(
        &mut self,
        method: &str,
        args: &[Value],
        host: &mut FeatureHost<'_>,
    ) -> Result<Value, CoreError> {
        let _ = (args, host);
        Err(CoreError::NoSuchMethod {
            target: self.descriptor().name,
            method: method.to_string(),
        })
    }

    /// Typed escape hatch for same-process callers that hold the concrete
    /// feature type (mirrors the paper's Java `getFeature(HDOP.class)`).
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Serializes the feature's internal state for a
    /// [`crate::Middleware::snapshot`] checkpoint; see
    /// [`crate::component::Component::snapshot_state`]. Default: `None`
    /// (stateless).
    fn snapshot_state(&self) -> Option<Value> {
        None
    }

    /// Applies state previously captured by
    /// [`ComponentFeature::snapshot_state`]. Default: no-op.
    fn restore_state(&mut self, state: &Value) {
        let _ = state;
    }
}

/// A feature that attaches a fixed attribute to every item produced by
/// its host. Useful for tagging provenance (e.g. `source = "gps"`).
#[derive(Debug, Clone)]
pub struct TagFeature {
    name: String,
    key: String,
    value: Value,
}

impl TagFeature {
    /// Creates a tagging feature named `name` that sets `key` to `value`
    /// on every produced item.
    pub fn new(name: impl Into<String>, key: impl Into<String>, value: Value) -> Self {
        TagFeature {
            name: name.into(),
            key: key.into(),
            value,
        }
    }
}

impl ComponentFeature for TagFeature {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(self.name.clone())
    }

    fn on_produce(
        &mut self,
        mut item: DataItem,
        _host: &mut FeatureHost<'_>,
    ) -> Result<FeatureAction, CoreError> {
        item.attrs.insert(self.key.clone(), self.value.clone());
        Ok(FeatureAction::Continue(item))
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{ComponentCtx, ComponentDescriptor, FnSource};
    use crate::data::kinds;

    struct DropEven {
        seen: i64,
    }

    impl ComponentFeature for DropEven {
        fn descriptor(&self) -> FeatureDescriptor {
            FeatureDescriptor::new("DropEven")
        }

        fn on_produce(
            &mut self,
            item: DataItem,
            _host: &mut FeatureHost<'_>,
        ) -> Result<FeatureAction, CoreError> {
            self.seen += 1;
            if self.seen % 2 == 0 {
                Ok(FeatureAction::Drop)
            } else {
                Ok(FeatureAction::Continue(item))
            }
        }

        fn invoke(
            &mut self,
            method: &str,
            _args: &[Value],
            _host: &mut FeatureHost<'_>,
        ) -> Result<Value, CoreError> {
            match method {
                "seen" => Ok(Value::Int(self.seen)),
                other => Err(CoreError::NoSuchMethod {
                    target: "DropEven".into(),
                    method: other.into(),
                }),
            }
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn host_component() -> impl Component {
        FnSource::new("host", kinds::RAW_STRING, |_| None)
    }

    #[test]
    fn descriptor_builder() {
        let d = FeatureDescriptor::new("HDOP")
            .adds(kinds::NMEA_SENTENCE)
            .method(MethodSpec::new("getHDOP", "() -> float"));
        assert_eq!(d.name, "HDOP");
        assert_eq!(d.adds_kinds, vec![kinds::NMEA_SENTENCE]);
        assert_eq!(d.methods.len(), 1);
    }

    #[test]
    fn feature_can_drop_and_reflect() {
        let mut host = host_component();
        let mut hostref = FeatureHost::new(&mut host, SimTime::ZERO);
        let mut f = DropEven { seen: 0 };
        let item = DataItem::new(kinds::RAW_STRING, SimTime::ZERO, Value::Int(1));
        assert!(matches!(
            f.on_produce(item.clone(), &mut hostref).unwrap(),
            FeatureAction::Continue(_)
        ));
        assert!(matches!(
            f.on_produce(item, &mut hostref).unwrap(),
            FeatureAction::Drop
        ));
        assert_eq!(f.invoke("seen", &[], &mut hostref).unwrap(), Value::Int(2));
        assert!(f.invoke("nope", &[], &mut hostref).is_err());
    }

    #[test]
    fn host_emissions_are_collected() {
        let mut host = host_component();
        let mut hostref = FeatureHost::new(&mut host, SimTime::from_micros(7));
        hostref.emit_value(kinds::POSITION_ROOM, Value::from("R1"));
        let out = hostref.take_emitted();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].timestamp, SimTime::from_micros(7));
        assert!(hostref.take_emitted().is_empty());
    }

    #[test]
    fn host_invoke_reaches_component() {
        struct Settable {
            v: i64,
        }
        impl Component for Settable {
            fn descriptor(&self) -> ComponentDescriptor {
                ComponentDescriptor::source("settable", vec![])
            }
            fn on_input(
                &mut self,
                _p: usize,
                _i: DataItem,
                _c: &mut ComponentCtx<'_>,
            ) -> Result<(), CoreError> {
                Ok(())
            }
            fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
                match method {
                    "set" => {
                        self.v = args[0].as_i64().unwrap_or(0);
                        Ok(Value::Null)
                    }
                    "get" => Ok(Value::Int(self.v)),
                    other => Err(CoreError::NoSuchMethod {
                        target: "settable".into(),
                        method: other.into(),
                    }),
                }
            }
        }
        let mut comp = Settable { v: 0 };
        let mut host = FeatureHost::new(&mut comp, SimTime::ZERO);
        host.invoke_component("set", &[Value::Int(5)]).unwrap();
        assert_eq!(host.invoke_component("get", &[]).unwrap(), Value::Int(5));
    }

    #[test]
    fn tag_feature_attaches_attribute() {
        let mut host = host_component();
        let mut hostref = FeatureHost::new(&mut host, SimTime::ZERO);
        let mut tag = TagFeature::new("SourceTag", "source", Value::from("gps"));
        let item = DataItem::new(kinds::POSITION_WGS84, SimTime::ZERO, Value::Null);
        let FeatureAction::Continue(out) = tag.on_produce(item, &mut hostref).unwrap() else {
            panic!("tag must not drop");
        };
        assert_eq!(out.attr("source").and_then(Value::as_text), Some("gps"));
    }

    #[test]
    fn as_any_mut_downcasts() {
        let mut f = DropEven { seen: 3 };
        let any = f.as_any_mut();
        assert_eq!(any.downcast_mut::<DropEven>().unwrap().seen, 3);
    }
}
