//! Offline JSON serializer/deserializer for the PerPos workspace's serde
//! shim.
//!
//! Covers the `serde_json` surface the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`]/[`from_value`] and the
//! [`Value`] alias. Numbers round-trip exactly: integers stay integers
//! (`i64`/`u64` width) and floats are printed with Rust's shortest
//! round-trip formatting, matching the real crate's `float_roundtrip`
//! feature for the value ranges in use.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// A parsed JSON document (alias for the serde shim's content tree).
pub type Value = Content;

/// Error for JSON encoding/decoding.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
///
/// # Errors
///
/// Infallible for the shim's data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible for the shim's data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_content())
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_content(value).map_err(Error::from)
}

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Rust's Display for f64 is shortest round-trip; force a
                // fractional part so the value re-parses as a float.
                let s = v.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // Real serde_json writes null for non-finite floats.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::List(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            write_sep(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            write_sep(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(n * depth));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// Parses a JSON document into a typed value.
///
/// # Errors
///
/// Returns an error on malformed JSON or on shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    T::from_content(&value).map_err(Error::from)
}

/// Parses a JSON document into a dynamically-typed [`Value`].
///
/// # Errors
///
/// Returns an error on malformed JSON.
pub fn parse_value_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' in object, found {:?} at offset {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::List(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::List(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' in array, found {:?} at offset {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    out.push(
                                        char::from_u32(combined)
                                            .ok_or_else(|| Error::new("invalid surrogate"))?,
                                    );
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().ok_or_else(|| Error::new("empty string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_integers_exactly() {
        let json = to_string(&i64::MIN).unwrap();
        assert_eq!(from_str::<i64>(&json).unwrap(), i64::MIN);
        let json = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), u64::MAX);
    }

    #[test]
    fn round_trips_floats() {
        for v in [0.1, -1.5e-9, std::f64::consts::PI, 1e300, 5.0] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), v, "{json}");
        }
    }

    #[test]
    fn round_trips_strings_with_escapes() {
        let s = "he said \"hi\"\n\tüñî\u{1F600}\u{07}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value = parse_value_str(r#"{"a": [1, 2.5, "x", null, true], "b": {}}"#).unwrap();
        let map = v.as_map().unwrap();
        assert_eq!(map[0].0, "a");
        assert_eq!(map[0].1.as_list().unwrap().len(), 5);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = parse_value_str(r#"{"a":[1,{"b":2}],"c":"d"}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_value_str("{").is_err());
        assert!(parse_value_str("[1,]").is_err());
        assert!(parse_value_str("nul").is_err());
        assert!(parse_value_str("1 2").is_err());
    }
}
