//! # PerPos — a translucent positioning middleware
//!
//! This crate is a Rust reproduction of the middleware presented in
//! *"PerPos: A Translucent Positioning Middleware Supporting Adaptation of
//! Internal Positioning Processes"* (Langdal, Schougaard, Kjærgaard,
//! Toftkjær — Middleware 2010).
//!
//! PerPos represents the positioning process explicitly as a graph of
//! *Processing Components* through which sensor data flows towards the
//! application, and exposes that graph at three levels of abstraction:
//!
//! 1. **Process Structure Layer** ([`graph::ProcessingGraph`]) — every
//!    processing step, with insert/remove/connect manipulation, declared
//!    port requirements/capabilities, and [`feature::ComponentFeature`]s
//!    that intercept, extend and reflect on individual components.
//! 2. **Process Channel Layer** ([`channel`]) — the process abstracted to
//!    data sources, merge components and the [`channel::ChannelInfo`]s between
//!    them; every channel output carries a [`channel::DataTree`] of the
//!    intermediate data that produced it, grouped by logical time
//!    (paper Fig. 4), and [`channel::ChannelFeature`]s reason over those
//!    trees (paper Fig. 5).
//! 3. **Positioning Layer** ([`positioning`]) — a traditional JSR-179-like
//!    API: location providers matched by [`positioning::Criteria`],
//!    push/pull position access and proximity notifications, with the
//!    adaptations made below still reachable.
//!
//! The [`Middleware`] facade ties the layers together over a deterministic
//! simulation clock ([`SimClock`]).
//!
//! # Examples
//!
//! Build a one-sensor pipeline and read a position through the high-level
//! API (the transparent, "seamless" use of the middleware):
//!
//! ```
//! use perpos_core::prelude::*;
//!
//! let mut mw = Middleware::new();
//! // A trivial source that emits one WGS-84 position per tick.
//! let source = mw.add_component(FnSource::new("demo-gps", kinds::POSITION_WGS84, |_now| {
//!     let coord = perpos_geo::Wgs84::new(56.17, 10.19, 0.0).expect("valid");
//!     Some(Value::from(Position::new(coord, Some(5.0))))
//! }));
//! let app = mw.application_sink();
//! mw.connect(source, app, 0)?;
//! mw.run_for(SimDuration::from_secs(1), SimDuration::from_millis(200))?;
//! let provider = mw.location_provider(Criteria::new().kind(kinds::POSITION_WGS84))?;
//! let pos = provider.last_position().expect("position produced");
//! assert!((pos.coord().lat_deg() - 56.17).abs() < 1e-9);
//! # Ok::<(), perpos_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assembly;
pub mod channel;
pub mod component;
pub mod data;
pub mod distribution;
mod error;
pub mod executor;
pub mod feature;
pub mod fleet;
pub mod graph;
pub mod middleware;
pub mod positioning;
pub mod supervision;
mod time;

pub use error::CoreError;
pub use middleware::Middleware;
pub use time::{SimClock, SimDuration, SimTime};

/// Convenient glob import for applications built on PerPos.
pub mod prelude {
    pub use crate::assembly::{
        Assembler, ComponentConfig, ComponentFactory, ConnectionConfig, GraphConfig,
        SynthesizedConfig,
    };
    pub use crate::channel::{
        ChannelFeature, ChannelId, ChannelStats, DataNode, DataTree, TreePolicy,
    };
    pub use crate::component::{
        Component, ComponentCtx, ComponentCtxProbe, ComponentDescriptor, ComponentRole, EffectSpec,
        FnProcessor, FnRelay, FnSource, InputSpec, MethodSpec, OutputSpec, TransferSpec,
    };
    pub use crate::data::{
        kinds, ArenaStats, Attrs, DataItem, DataKind, InternedKey, Payload, PayloadArena,
        PayloadRef, Position, Value,
    };
    pub use crate::executor::{machine_parallelism, ExecMode, Executor, LevelParallel, Sequential};
    pub use crate::feature::{ComponentFeature, FeatureAction, FeatureDescriptor, FeatureHost};
    pub use crate::fleet::{
        FleetConfig, FleetPool, FleetScheduler, FleetStats, FleetTotals, ShardState, ShardStats,
        Snapshot, SNAPSHOT_VERSION,
    };
    pub use crate::graph::{NodeId, ProcessingGraph};
    pub use crate::middleware::Middleware;
    pub use crate::positioning::{
        Criteria, FailoverProvider, LocationProvider, ProviderEvent, ProximityEvent,
    };
    pub use crate::supervision::{FaultPolicy, HealthStatus, NodeHealth};
    pub use crate::{CoreError, SimClock, SimDuration, SimTime};
}
