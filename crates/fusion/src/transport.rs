//! Transportation-mode inference as a processing pipeline.
//!
//! The paper's introduction motivates translucency with applications that
//! "structure the reasoning process when determining transportation mode
//! of a target by segmentation, feature extraction, decision tree
//! classification and hidden-markov model post processing" (Zheng et al.,
//! WWW 2008 — the paper's reference \[4\]). This module provides exactly
//! that pipeline as ordinary Processing Components, so the reasoning
//! process is inspectable and adaptable like any other PerPos process:
//!
//! `position.wgs84 → [Segmenter] → motion.segment → [ModeClassifier] →
//! transport.mode → [HmmSmoother] → transport.mode`

use std::collections::VecDeque;

use perpos_core::component::{Component, ComponentCtx, ComponentDescriptor, InputSpec, MethodSpec};
use perpos_core::data::DataKind;
use perpos_core::prelude::*;
use perpos_geo::LocalFrame;

/// Data kind for motion segments (payload: map of features).
pub const MOTION_SEGMENT: DataKind = DataKind::from_static("motion.segment");
/// Data kind for transportation modes (payload: mode text).
pub const TRANSPORT_MODE: DataKind = DataKind::from_static("transport.mode");

/// A transportation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Walking (≲ 2 m/s).
    Walk,
    /// Cycling (≲ 7 m/s).
    Bike,
    /// Motorized vehicle.
    Vehicle,
}

impl Mode {
    /// All modes in index order (the HMM state space).
    pub const ALL: [Mode; 3] = [Mode::Walk, Mode::Bike, Mode::Vehicle];

    /// The mode name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Mode::Walk => "walk",
            Mode::Bike => "bike",
            Mode::Vehicle => "vehicle",
        }
    }

    /// Parses a mode name.
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "walk" => Some(Mode::Walk),
            "bike" => Some(Mode::Bike),
            "vehicle" => Some(Mode::Vehicle),
            _ => None,
        }
    }

    fn index(&self) -> usize {
        match self {
            Mode::Walk => 0,
            Mode::Bike => 1,
            Mode::Vehicle => 2,
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Segmentation + feature extraction: windows consecutive positions and
/// emits `motion.segment` items with speed statistics.
///
/// Reflective methods: `setWindow(seconds: float)`, `getWindow() -> float`,
/// `segmentsProduced() -> int`.
pub struct Segmenter {
    frame: LocalFrame,
    window: SimDuration,
    buffer: VecDeque<(SimTime, perpos_geo::Point2)>,
    window_start: Option<SimTime>,
    produced: i64,
}

impl Segmenter {
    /// Creates a segmenter with a 10 s window.
    pub fn new(frame: LocalFrame) -> Self {
        Segmenter {
            frame,
            window: SimDuration::from_secs(10),
            buffer: VecDeque::new(),
            window_start: None,
            produced: 0,
        }
    }

    /// Sets the window length (builder style).
    pub fn with_window(mut self, d: SimDuration) -> Self {
        self.window = d;
        self
    }

    fn flush(&mut self, ctx: &mut ComponentCtx<'_>) {
        if self.buffer.len() < 2 {
            self.buffer.clear();
            self.window_start = None;
            return;
        }
        let mut speeds = Vec::new();
        for pair in self.buffer.make_contiguous().windows(2) {
            let dt = pair[1].0.since(pair[0].0).as_secs_f64();
            if dt > 0.0 {
                speeds.push(pair[0].1.distance(&pair[1].1) / dt);
            }
        }
        if speeds.is_empty() {
            self.buffer.clear();
            self.window_start = None;
            return;
        }
        let mean = speeds.iter().sum::<f64>() / speeds.len() as f64;
        let max = speeds.iter().cloned().fold(0.0, f64::max);
        let var = speeds.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / speeds.len() as f64;
        let mut map = std::collections::BTreeMap::new();
        map.insert("mean_speed".to_string(), Value::Float(mean));
        map.insert("max_speed".to_string(), Value::Float(max));
        map.insert("speed_var".to_string(), Value::Float(var));
        map.insert("samples".to_string(), Value::Int(speeds.len() as i64 + 1));
        self.produced += 1;
        ctx.emit_value(MOTION_SEGMENT, Value::Map(map));
        self.buffer.clear();
        self.window_start = None;
    }
}

impl std::fmt::Debug for Segmenter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segmenter")
            .field("window", &self.window)
            .finish()
    }
}

impl Component for Segmenter {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::processor(
            "Segmenter",
            InputSpec::new("positions", vec![kinds::POSITION_WGS84]),
            vec![MOTION_SEGMENT],
        )
    }

    fn on_input(
        &mut self,
        _port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        let position = item.position()?;
        let p = self.frame.to_local(position.coord());
        if self.window_start.is_none() {
            self.window_start = Some(item.timestamp);
        }
        self.buffer.push_back((item.timestamp, p));
        if item.timestamp.since(self.window_start.expect("set above")) >= self.window {
            self.flush(ctx);
        }
        Ok(())
    }

    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "setWindow" => {
                let secs = args.first().and_then(Value::as_f64).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one float".into(),
                    }
                })?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(CoreError::BadArguments {
                        method: method.to_string(),
                        reason: format!("window must be positive, got {secs}"),
                    });
                }
                self.window = SimDuration::from_secs_f64(secs);
                Ok(Value::Null)
            }
            "getWindow" => Ok(Value::Float(self.window.as_secs_f64())),
            "segmentsProduced" => Ok(Value::Int(self.produced)),
            other => Err(CoreError::NoSuchMethod {
                target: "Segmenter".into(),
                method: other.into(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("setWindow", "(seconds: float) -> null"),
            MethodSpec::new("getWindow", "() -> float"),
            MethodSpec::new("segmentsProduced", "() -> int"),
        ]
    }
}

/// Decision-tree classifier: `motion.segment` in, `transport.mode` out,
/// with a `confidence` attribute.
///
/// The tree follows the speed-based splits of the Zheng et al. approach:
/// mean and maximum speed thresholds separate walking, cycling and
/// driving.
#[derive(Debug, Default)]
pub struct ModeClassifier {
    classified: i64,
}

impl ModeClassifier {
    /// Creates a classifier.
    pub fn new() -> Self {
        ModeClassifier::default()
    }

    /// The decision tree itself, exposed for testing.
    pub fn classify(mean_speed: f64, max_speed: f64) -> (Mode, f64) {
        // Split 1: mean speed.
        if mean_speed < 2.2 {
            // Walking unless bursts say otherwise.
            if max_speed > 8.0 {
                (Mode::Vehicle, 0.55) // stop-and-go traffic
            } else {
                (Mode::Walk, 0.9)
            }
        } else if mean_speed < 7.0 {
            if max_speed > 14.0 {
                (Mode::Vehicle, 0.6)
            } else {
                (Mode::Bike, 0.8)
            }
        } else {
            (Mode::Vehicle, 0.9)
        }
    }
}

impl Component for ModeClassifier {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::processor(
            "ModeClassifier",
            InputSpec::new("segments", vec![MOTION_SEGMENT]),
            vec![TRANSPORT_MODE],
        )
    }

    fn on_input(
        &mut self,
        _port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        let Some(map) = item.payload.as_map() else {
            return Ok(());
        };
        let mean = map.get("mean_speed").and_then(Value::as_f64).unwrap_or(0.0);
        let max = map.get("max_speed").and_then(Value::as_f64).unwrap_or(mean);
        let (mode, confidence) = Self::classify(mean, max);
        self.classified += 1;
        let out = DataItem::new(TRANSPORT_MODE, ctx.now(), Value::from(mode.as_str()))
            .with_attr("confidence", Value::Float(confidence))
            .with_attr("mean_speed", Value::Float(mean));
        ctx.emit(out);
        Ok(())
    }

    fn invoke(&mut self, method: &str, _args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "classifiedCount" => Ok(Value::Int(self.classified)),
            other => Err(CoreError::NoSuchMethod {
                target: "ModeClassifier".into(),
                method: other.into(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![MethodSpec::new("classifiedCount", "() -> int")]
    }
}

/// Hidden-Markov post-processing: filters the classifier's mode sequence
/// with a sticky transition model (forward algorithm), smoothing out
/// one-off misclassifications.
///
/// Reflective methods: `setStickiness(p: float)`, `getStickiness() -> float`.
#[derive(Debug)]
pub struct HmmSmoother {
    /// Probability of staying in the same mode between segments.
    stickiness: f64,
    /// Forward probabilities over [walk, bike, vehicle].
    belief: [f64; 3],
}

impl Default for HmmSmoother {
    fn default() -> Self {
        HmmSmoother::new()
    }
}

impl HmmSmoother {
    /// Creates a smoother with 0.85 stickiness and a uniform prior.
    pub fn new() -> Self {
        HmmSmoother {
            stickiness: 0.85,
            belief: [1.0 / 3.0; 3],
        }
    }

    /// Current belief over modes.
    pub fn belief(&self) -> [f64; 3] {
        self.belief
    }

    fn observe(&mut self, observed: Mode, confidence: f64) -> Mode {
        // Predict: sticky transition.
        let stay = self.stickiness;
        let switch = (1.0 - stay) / 2.0;
        let mut predicted = [0.0; 3];
        for (i, p) in predicted.iter_mut().enumerate() {
            for (j, b) in self.belief.iter().enumerate() {
                *p += b * if i == j { stay } else { switch };
            }
        }
        // Update: the observation is right with prob = confidence.
        let wrong = (1.0 - confidence) / 2.0;
        let mut updated = [0.0; 3];
        for (i, u) in updated.iter_mut().enumerate() {
            let likelihood = if i == observed.index() {
                confidence
            } else {
                wrong
            };
            *u = predicted[i] * likelihood;
        }
        let sum: f64 = updated.iter().sum();
        if sum > 0.0 {
            for u in &mut updated {
                *u /= sum;
            }
        } else {
            updated = [1.0 / 3.0; 3];
        }
        self.belief = updated;
        let best = (0..3)
            .max_by(|a, b| self.belief[*a].total_cmp(&self.belief[*b]))
            .expect("three states");
        Mode::ALL[best]
    }
}

impl Component for HmmSmoother {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::processor(
            "HmmSmoother",
            InputSpec::new("modes", vec![TRANSPORT_MODE]),
            vec![TRANSPORT_MODE],
        )
    }

    fn on_input(
        &mut self,
        _port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        let Some(mode) = item.payload.as_text().and_then(Mode::parse) else {
            return Ok(());
        };
        let confidence = item
            .attr("confidence")
            .and_then(Value::as_f64)
            .unwrap_or(0.7)
            .clamp(0.34, 0.999);
        let smoothed = self.observe(mode, confidence);
        let out = DataItem::new(TRANSPORT_MODE, ctx.now(), Value::from(smoothed.as_str()))
            .with_attr(
                "belief",
                Value::List(self.belief.iter().map(|b| Value::Float(*b)).collect()),
            )
            .with_attr("smoothed", Value::Bool(true));
        ctx.emit(out);
        Ok(())
    }

    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "setStickiness" => {
                let p = args.first().and_then(Value::as_f64).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one float".into(),
                    }
                })?;
                if !(0.34..1.0).contains(&p) {
                    return Err(CoreError::BadArguments {
                        method: method.to_string(),
                        reason: format!("stickiness must be in [0.34, 1), got {p}"),
                    });
                }
                self.stickiness = p;
                Ok(Value::Null)
            }
            "getStickiness" => Ok(Value::Float(self.stickiness)),
            other => Err(CoreError::NoSuchMethod {
                target: "HmmSmoother".into(),
                method: other.into(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("setStickiness", "(p: float) -> null"),
            MethodSpec::new("getStickiness", "() -> float"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_core::component::ComponentCtxProbe;
    use perpos_geo::{Point2, Wgs84};

    fn frame() -> LocalFrame {
        LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap())
    }

    fn position(f: &LocalFrame, x: f64, t: f64) -> DataItem {
        DataItem::new(
            kinds::POSITION_WGS84,
            SimTime::from_secs_f64(t),
            Value::from(Position::new(f.from_local(&Point2::new(x, 0.0)), Some(3.0))),
        )
    }

    #[test]
    fn segmenter_windows_and_features() {
        let f = frame();
        let mut seg = Segmenter::new(f).with_window(SimDuration::from_secs(5));
        let mut out = Vec::new();
        // 1.4 m/s walk, 1 Hz positions.
        for t in 0..=5 {
            let items =
                ComponentCtxProbe::run_input(&mut seg, position(&f, t as f64 * 1.4, t as f64))
                    .unwrap();
            out.extend(items);
        }
        assert_eq!(out.len(), 1);
        let map = out[0].payload.as_map().unwrap();
        let mean = map["mean_speed"].as_f64().unwrap();
        assert!((mean - 1.4).abs() < 0.1, "mean {mean}");
        assert!(map["speed_var"].as_f64().unwrap() < 0.1);
        assert_eq!(out[0].kind, MOTION_SEGMENT);
    }

    #[test]
    fn segmenter_needs_at_least_two_points() {
        let f = frame();
        let mut seg = Segmenter::new(f).with_window(SimDuration::from_secs(1));
        // A single far-apart sample flushes an empty window silently.
        let out = ComponentCtxProbe::run_input(&mut seg, position(&f, 0.0, 0.0)).unwrap();
        assert!(out.is_empty());
        let out = ComponentCtxProbe::run_input(&mut seg, position(&f, 1.0, 5.0)).unwrap();
        // Window [0,5] flushed with 2 samples -> one segment.
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn decision_tree_thresholds() {
        assert_eq!(ModeClassifier::classify(1.2, 1.8).0, Mode::Walk);
        assert_eq!(ModeClassifier::classify(4.5, 6.0).0, Mode::Bike);
        assert_eq!(ModeClassifier::classify(14.0, 20.0).0, Mode::Vehicle);
        // Stop-and-go traffic: low mean, high max.
        assert_eq!(ModeClassifier::classify(1.5, 12.0).0, Mode::Vehicle);
    }

    #[test]
    fn hmm_smooths_single_blips() {
        let mut hmm = HmmSmoother::new();
        // Settle into walking.
        for _ in 0..5 {
            assert_eq!(hmm.observe(Mode::Walk, 0.9), Mode::Walk);
        }
        // One low-confidence vehicle blip does not flip the mode…
        assert_eq!(hmm.observe(Mode::Vehicle, 0.55), Mode::Walk);
        // …but sustained evidence does.
        let mut flipped = false;
        for _ in 0..6 {
            if hmm.observe(Mode::Vehicle, 0.9) == Mode::Vehicle {
                flipped = true;
            }
        }
        assert!(flipped, "sustained observations must win");
    }

    #[test]
    fn hmm_component_round_trip() {
        let mut hmm = HmmSmoother::new();
        let item = DataItem::new(TRANSPORT_MODE, SimTime::ZERO, Value::from("walk"))
            .with_attr("confidence", Value::Float(0.9));
        let out = ComponentCtxProbe::run_input(&mut hmm, item).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.as_text(), Some("walk"));
        assert_eq!(out[0].attr("smoothed").and_then(Value::as_bool), Some(true));
        // Unparseable modes are absorbed.
        let bad = DataItem::new(TRANSPORT_MODE, SimTime::ZERO, Value::from("teleport"));
        assert!(ComponentCtxProbe::run_input(&mut hmm, bad)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn full_pipeline_classifies_multimodal_trip() {
        // walk 60 s @1.4, drive 60 s @15, walk 60 s @1.4 — fed directly.
        let f = frame();
        let mut mw = Middleware::new();
        let mut items = Vec::new();
        let mut x = 0.0;
        for t in 0..180u64 {
            let speed = if (60..120).contains(&t) { 15.0 } else { 1.4 };
            x += speed;
            items.push(position(&f, x, t as f64));
        }
        let emu = mw.add_component(perpos_sensors::EmulatorSource::new(
            "trip",
            perpos_sensors::Trace::new(items),
        ));
        let seg = mw.add_component(Segmenter::new(f));
        let cls = mw.add_component(ModeClassifier::new());
        let hmm = mw.add_component(HmmSmoother::new());
        let app = mw.application_sink();
        mw.connect(emu, seg, 0).unwrap();
        mw.connect(seg, cls, 0).unwrap();
        mw.connect(cls, hmm, 0).unwrap();
        mw.connect(hmm, app, 0).unwrap();
        let provider = mw
            .location_provider(Criteria::new().kind(TRANSPORT_MODE))
            .unwrap();
        mw.run_for(SimDuration::from_secs(181), SimDuration::from_secs(1))
            .unwrap();
        let modes: Vec<String> = provider
            .history()
            .iter()
            .filter_map(|i| i.payload.as_text().map(str::to_string))
            .collect();
        assert!(modes.len() >= 12, "{} segments", modes.len());
        // The middle third must be dominated by "vehicle", the outer
        // thirds by "walk".
        let third = modes.len() / 3;
        let count = |slice: &[String], m: &str| slice.iter().filter(|s| *s == m).count();
        assert!(count(&modes[..third], "walk") * 2 > third);
        assert!(count(&modes[third..2 * third], "vehicle") * 2 > third);
        assert!(count(&modes[2 * third..], "walk") * 2 > modes.len() - 2 * third);
    }
}
