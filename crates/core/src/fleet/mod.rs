//! Supervised fleet runtime: many middleware instances, sharded, with
//! checkpoint/restore recovery and escalating supervision.
//!
//! The paper's middleware hosts *one* positioning process; deployments
//! host thousands (one per tracked device). This module scales the
//! engine to that shape without giving up determinism: a [`FleetPool`]
//! owns N [`Shard`]s, each shard owns a slice of [`Middleware`]
//! instances built by a shared factory and stepped through the
//! [`Middleware::step_batch`] fast path.
//!
//! Supervision escalates through three rungs:
//!
//! 1. **Inside an instance** — per-node [`FaultPolicy`] containment
//!    (drop / restart / quarantine), exactly as in a standalone
//!    middleware.
//! 2. **Instance restart** — a fault that escapes containment (a
//!    `Propagate` node failing, or a contained policy exhausted) fails
//!    the instance's step; the shard rebuilds the instance from the
//!    factory and restores its last [`Snapshot`] checkpoint, so the
//!    instance resumes from the checkpoint byte-identically to an
//!    uninterrupted run.
//! 3. **Shard quarantine** — repeated instance failures within a step
//!    window trip the shard's [`Watchdog`]: the whole shard stops
//!    stepping for a seeded exponential backoff (with jitter), then
//!    resumes; a clean round closes the breaker.
//!
//! Everything is seeded and stepped on simulated time, so a chaos soak
//! (`exp_fleet` in `perpos-bench`) replays bit-for-bit.
//!
//! Shards are **share-nothing**: instances, checkpoints, watchdog (and
//! its shard-local RNG) and counters all live inside one shard, and the
//! only shared object is the immutable instance factory. That is what
//! lets [`FleetPool::run`] distribute shards over cores through a
//! pluggable [`FleetScheduler`] — serial, work-stealing parallel, or
//! seed-permuted — with *byte-identical* observables under every
//! scheduler and worker count (`tests/fleet_parallel_determinism.rs`
//! proves it under faults, checkpoints and restores).
//!
//! [`FaultPolicy`]: crate::supervision::FaultPolicy
//! [`Middleware`]: crate::Middleware
//! [`Middleware::step_batch`]: crate::Middleware::step_batch

pub mod pool;
pub mod scheduler;
pub mod shard;
pub mod snapshot;
pub mod watchdog;

pub use pool::{FleetConfig, FleetPool, FleetStats, FleetTotals};
pub use scheduler::FleetScheduler;
pub use shard::{Shard, ShardState, ShardStats};
pub use snapshot::{Snapshot, SNAPSHOT_VERSION};
pub use watchdog::Watchdog;
