//! Seamful use of PerPos: the three abstraction levels of Fig. 2 and the
//! §3.1 adaptation (detecting unreliable GPS readings), exercised through
//! the public middleware API only.
//!
//! Run with: `cargo run --example seamful_inspection`

use perpos::prelude::*;

fn main() -> Result<(), CoreError> {
    let frame = LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).expect("valid"));
    let walk = Trajectory::new(vec![Point2::new(0.0, 0.0), Point2::new(60.0, 0.0)], 1.2);

    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame, walk)
            .with_seed(41)
            .with_environment(GpsEnvironment::urban()),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let app = mw.application_sink();
    mw.connect(gps, parser, 0)?;
    mw.connect(parser, interpreter, 0)?;
    mw.connect(interpreter, app, 0)?;

    // ---- Level 3: the Positioning Layer (transparent use). -------------
    let provider = mw.location_provider(Criteria::new().kind(kinds::POSITION_WGS84))?;
    mw.run_for(SimDuration::from_secs(30), SimDuration::from_secs(1))?;
    println!("== Positioning Layer ==");
    println!(
        "position: {:?}\n",
        provider.last_position().map(|p| p.to_string())
    );

    // ---- Level 2: the Process Channel Layer. ---------------------------
    println!("== Process Channel Layer ==");
    for info in mw.channels() {
        println!(
            "channel {}: {} (features: {:?})",
            info.id,
            info.member_names.join(" -> "),
            info.features
        );
    }

    // ---- Level 1: the Process Structure Layer. -------------------------
    println!("\n== Process Structure Layer ==");
    print!("{}", mw.render_process_tree());
    for node in mw.structure() {
        let methods = mw.methods(node.id)?;
        if !methods.is_empty() {
            println!(
                "{} exposes: {}",
                node.descriptor.name,
                methods
                    .iter()
                    .map(|m| format!("{}{}", m.name, m.signature))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }

    // ---- The §3.1 adaptation, at runtime. -------------------------------
    // Attach the NumberOfSatellites feature to the Parser and insert the
    // satellite filter between Parser and Interpreter — while running.
    println!("\n== Adapting the running process (§3.1) ==");
    mw.attach_feature(parser, NumberOfSatellitesFeature::new())?;
    let filter = mw.add_component(SatelliteFilter::new(5));
    mw.insert_between(filter, parser, interpreter, 0)?;
    println!("inserted SatelliteFilter (threshold 5) after the Parser");

    mw.run_for(SimDuration::from_secs(60), SimDuration::from_secs(1))?;
    let filtered = mw.invoke(filter, "filteredCount", &[])?;
    let last_sats = mw.invoke(parser, "getNumberOfSatellites", &[])?;
    println!("unreliable readings filtered: {filtered}");
    println!("latest satellite count (via the Parser's feature): {last_sats}");
    print!(
        "\nprocess tree after adaptation:\n{}",
        mw.render_process_tree()
    );

    // Reflection is causally connected: raising the threshold changes
    // behaviour immediately.
    mw.invoke(filter, "setThreshold", &[Value::Int(12)])?;
    mw.run_for(SimDuration::from_secs(20), SimDuration::from_secs(1))?;
    println!(
        "after raising the threshold to 12: filtered = {}",
        mw.invoke(filter, "filteredCount", &[])?
    );
    Ok(())
}
