//! NMEA-0183 substrate for the PerPos positioning middleware.
//!
//! GPS receivers deliver their measurements as a byte stream of NMEA-0183
//! sentences. In the PerPos processing graph (paper Fig. 1/4) a *Parser*
//! component turns raw strings into structured sentences, from which an
//! *Interpreter* derives WGS-84 positions, and Component Features extract
//! seam information such as HDOP and satellite counts (paper §3.1, Fig. 5).
//!
//! This crate provides:
//!
//! * the sentence data model ([`Sentence`], [`Gga`], [`Rmc`], …),
//! * a validating parser ([`parse_sentence`]) and encoder
//!   ([`Sentence::to_nmea_string`]) that round-trip,
//! * a streaming [`SentenceSplitter`] that re-frames arbitrary byte chunks
//!   into complete sentences, as delivered by a serial port.
//!
//! # Examples
//!
//! ```
//! use perpos_nmea::{parse_sentence, Sentence};
//!
//! let line = "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47";
//! match parse_sentence(line)? {
//!     Sentence::Gga(gga) => {
//!         assert_eq!(gga.num_satellites, 8);
//!         assert!((gga.hdop - 0.9).abs() < 1e-9);
//!     }
//!     other => panic!("expected GGA, got {other:?}"),
//! }
//! # Ok::<(), perpos_nmea::NmeaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
mod error;
mod parser;
mod sentence;
mod splitter;

pub use error::NmeaError;
pub use parser::{checksum, parse_sentence, verify_checksum};
pub use sentence::{
    FixQuality, Gga, Gsa, GsaFixType, Gsv, NmeaTime, Rmc, SatelliteInfo, Sentence, Vtg,
};
pub use splitter::SentenceSplitter;
