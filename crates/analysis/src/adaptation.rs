//! "Is this adaptation safe?" — static checking of structural changes
//! *before* they touch a live middleware.
//!
//! The paper's central promise is that applications may adapt the
//! internal positioning process at runtime. Each individual graph call
//! is validated, but a multi-step adaptation can pass every per-edge
//! check and still leave the process unsound in between or at the end
//! (a dangling merge input, a dead subgraph, a feature requirement lost
//! with a detach). [`check_adaptation`] simulates a whole
//! [`AdaptationPlan`] on a *copy* of the reflective structure and runs
//! the full whole-graph analysis on the result, so callers can reject
//! unsound adaptations without mutating anything.

use perpos_core::component::ComponentRole;
use perpos_core::feature::FeatureDescriptor;
use perpos_core::graph::{NodeId, NodeInfo};
use perpos_core::supervision::HealthStatus;
use perpos_core::Middleware;

use crate::dataflow::FlowGraph;
use crate::diagnostic::{Code, Diagnostic, Report, Severity};
use crate::domains::{infer_facts, GraphFacts};
use crate::live::analyze_structure;

/// One structural change in an adaptation plan.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptationOp {
    /// Wire `from`'s output to input `port` of `to`.
    Connect {
        /// Producing node.
        from: NodeId,
        /// Consuming node.
        to: NodeId,
        /// Input port on the consumer.
        port: usize,
    },
    /// Remove the wire into input `port` of `to`.
    Disconnect {
        /// Consuming node.
        to: NodeId,
        /// Input port on the consumer.
        port: usize,
    },
    /// Remove a component and all its wires.
    Remove {
        /// The node to remove.
        node: NodeId,
    },
    /// Attach a Component Feature (described by its descriptor).
    AttachFeature {
        /// Host node.
        node: NodeId,
        /// The feature's declaration.
        descriptor: FeatureDescriptor,
    },
    /// Detach a Component Feature by name.
    DetachFeature {
        /// Host node.
        node: NodeId,
        /// Name of the feature to detach.
        feature: String,
    },
}

/// An ordered sequence of structural changes to check as a unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptationPlan {
    /// The changes, applied in order.
    pub ops: Vec<AdaptationOp>,
}

impl AdaptationPlan {
    /// An empty plan.
    pub fn new() -> Self {
        AdaptationPlan::default()
    }

    /// Appends an operation (builder style).
    pub fn then(mut self, op: AdaptationOp) -> Self {
        self.ops.push(op);
        self
    }
}

/// Checks a plan against a live middleware without touching it: the
/// plan is applied to a copy of `mw.structure()` and the resulting
/// structure is fully analyzed — structural lints plus the semantic
/// dataflow passes, with *semantic deltas* (how accuracy, rate and taint
/// observed at the sinks change) reported at Info severity. The plan is
/// safe when the returned report [has no errors](Report::has_errors).
pub fn check_adaptation(mw: &Middleware, plan: &AdaptationPlan) -> Report {
    check_adaptation_with_facts(mw, plan).report
}

/// The full result of checking an adaptation plan: the diagnostic
/// report plus the solved dataflow facts of the current and the
/// hypothetical structure, for callers that want to compare predicted
/// semantics themselves (e.g. an adaptation engine choosing between
/// candidate plans).
#[derive(Debug, Clone)]
pub struct AdaptationOutcome {
    /// Op-application errors, whole-graph findings on the resulting
    /// structure, quarantine warnings and semantic-delta infos.
    pub report: Report,
    /// Analysis representation of the *current* structure.
    pub before_graph: FlowGraph,
    /// Solved facts of the current structure.
    pub before_facts: GraphFacts,
    /// Analysis representation of the structure the plan produces.
    pub after_graph: FlowGraph,
    /// Solved facts of that hypothetical structure.
    pub after_facts: GraphFacts,
}

/// [`check_adaptation`], returning the underlying dataflow facts as
/// well as the report.
pub fn check_adaptation_with_facts(mw: &Middleware, plan: &AdaptationPlan) -> AdaptationOutcome {
    let current = mw.structure();
    let before_graph = FlowGraph::from_structure(&current);
    let before_facts = infer_facts(&before_graph);

    let (result, mut report) = simulate(current.clone(), plan);
    for d in check_quarantined_targets(mw, &current, plan) {
        report.push(d);
    }
    report.merge(analyze_structure(&result));

    let after_graph = FlowGraph::from_structure(&result);
    let after_facts = infer_facts(&after_graph);
    for d in semantic_deltas(&before_graph, &before_facts, &after_graph, &after_facts) {
        report.push(d);
    }
    AdaptationOutcome {
        report,
        before_graph,
        before_facts,
        after_graph,
        after_facts,
    }
}

/// Warns (P007) for every plan op that targets a node the middleware
/// currently holds in quarantine: the adaptation will apply, but the
/// node is not processing data, so the plan's effect cannot be observed
/// until the quarantine lifts — usually a sign the plan was computed
/// from stale health information.
fn check_quarantined_targets(
    mw: &Middleware,
    current: &[NodeInfo],
    plan: &AdaptationPlan,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (step, op) in plan.ops.iter().enumerate() {
        let targets: Vec<NodeId> = match op {
            AdaptationOp::Connect { from, to, .. } => vec![*from, *to],
            AdaptationOp::Disconnect { to, .. } => vec![*to],
            AdaptationOp::Remove { node }
            | AdaptationOp::AttachFeature { node, .. }
            | AdaptationOp::DetachFeature { node, .. } => vec![*node],
        };
        for id in targets {
            if !current.iter().any(|n| n.id == id) {
                continue; // unknown node; simulate() reports the error
            }
            if mw.node_health(id).status == HealthStatus::Quarantined {
                out.push(
                    Diagnostic::new(
                        Code::P007,
                        Severity::Warning,
                        format!("plan step {step} adapts quarantined node {id}"),
                        vec![format!("plan step {step}")],
                    )
                    .with_hint(
                        "the node is not processing data while quarantined; verify the \
                         plan was computed from current health state",
                    ),
                );
            }
        }
    }
    out
}

fn format_interval(fact: Option<(f64, f64)>, unit: &str) -> String {
    match fact {
        None => "unknown".to_string(),
        Some((lo, hi)) if hi.is_infinite() => format!("[{lo} {unit}, unbounded)"),
        Some((lo, hi)) => format!("[{lo} {unit}, {hi} {unit}]"),
    }
}

/// Info-severity diagnostics describing how the facts observed at each
/// sink change under the plan — the predicted semantic effect of the
/// adaptation (accuracy: P011, taint: P012, rate: P013/P014).
fn semantic_deltas(
    before_graph: &FlowGraph,
    before: &GraphFacts,
    after_graph: &FlowGraph,
    after: &GraphFacts,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (ai, an) in after_graph.nodes.iter().enumerate() {
        if an.role != ComponentRole::Sink {
            continue;
        }
        let Some(bi) = before_graph.nodes.iter().position(|n| n.label == an.label) else {
            continue;
        };
        if before.accuracy[bi] != after.accuracy[ai] {
            out.push(Diagnostic::new(
                Code::P011,
                Severity::Info,
                format!(
                    "plan changes achievable accuracy at {} from {} to {}",
                    an.label,
                    format_interval(before.accuracy[bi], "m"),
                    format_interval(after.accuracy[ai], "m"),
                ),
                vec![an.label.clone()],
            ));
        }
        if before.rate[bi] != after.rate[ai] {
            out.push(Diagnostic::new(
                Code::P013,
                Severity::Info,
                format!(
                    "plan changes sustained item rate at {} from {} to {}",
                    an.label,
                    format_interval(before.rate[bi], "items/s"),
                    format_interval(after.rate[ai], "items/s"),
                ),
                vec![an.label.clone()],
            ));
        }
        if before.taint[bi] != after.taint[ai] {
            let describe = |set: &std::collections::BTreeSet<(String, String)>| {
                if set.is_empty() {
                    "none".to_string()
                } else {
                    set.iter()
                        .map(|(kind, origin)| format!("{kind} from {origin}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            };
            out.push(Diagnostic::new(
                Code::P012,
                Severity::Info,
                format!(
                    "plan changes identifiable data reaching {} from {{{}}} to {{{}}}",
                    an.label,
                    describe(&before.taint[bi]),
                    describe(&after.taint[ai]),
                ),
                vec![an.label.clone()],
            ));
        }
    }
    out
}

/// Applies a plan to a detached structure model, reporting operations
/// that could not apply (P007). Returns the resulting structure and the
/// application report; analysis of the result is the caller's job
/// (see [`check_adaptation`]).
pub fn simulate(mut nodes: Vec<NodeInfo>, plan: &AdaptationPlan) -> (Vec<NodeInfo>, Report) {
    let mut report = Report::new();
    for (step, op) in plan.ops.iter().enumerate() {
        if let Err(d) = apply(&mut nodes, step, op) {
            report.push(d);
        }
    }
    (nodes, report)
}

fn find(nodes: &[NodeInfo], id: NodeId) -> Option<usize> {
    nodes.iter().position(|n| n.id == id)
}

fn op_error(step: usize, message: String, hint: &str) -> Diagnostic {
    Diagnostic::new(
        Code::P007,
        Severity::Error,
        message,
        vec![format!("plan step {step}")],
    )
    .with_hint(hint.to_string())
}

fn apply(nodes: &mut Vec<NodeInfo>, step: usize, op: &AdaptationOp) -> Result<(), Diagnostic> {
    match op {
        AdaptationOp::Connect { from, to, port } => {
            let fi = find(nodes, *from).ok_or_else(|| {
                op_error(
                    step,
                    format!("connect references unknown node {from}"),
                    "use node ids from Middleware::structure()",
                )
            })?;
            if nodes[fi].descriptor.output.is_none() {
                return Err(op_error(
                    step,
                    format!("connect uses sink {from} as a producer"),
                    "sinks have no output port; pick a producing node",
                ));
            }
            let ti = find(nodes, *to).ok_or_else(|| {
                op_error(
                    step,
                    format!("connect references unknown node {to}"),
                    "use node ids from Middleware::structure()",
                )
            })?;
            if *port >= nodes[ti].inputs.len() {
                return Err(op_error(
                    step,
                    format!(
                        "connect targets port {port} of {to}, which declares {} port(s)",
                        nodes[ti].inputs.len()
                    ),
                    "use a port index within the consumer's declared inputs",
                ));
            }
            if nodes[ti].inputs[*port].is_some() {
                return Err(op_error(
                    step,
                    format!("input port {port} of {to} is already connected"),
                    "disconnect the port first",
                ));
            }
            nodes[ti].inputs[*port] = Some(*from);
            nodes[fi].outputs.push((*to, *port));
            Ok(())
        }
        AdaptationOp::Disconnect { to, port } => {
            let ti = find(nodes, *to).ok_or_else(|| {
                op_error(
                    step,
                    format!("disconnect references unknown node {to}"),
                    "use node ids from Middleware::structure()",
                )
            })?;
            if *port >= nodes[ti].inputs.len() {
                return Err(op_error(
                    step,
                    format!("disconnect targets out-of-range port {port} of {to}"),
                    "use a port index within the consumer's declared inputs",
                ));
            }
            if let Some(producer) = nodes[ti].inputs[*port].take() {
                if let Some(pi) = find(nodes, producer) {
                    nodes[pi]
                        .outputs
                        .retain(|(n, p)| !(*n == *to && *p == *port));
                }
            }
            Ok(())
        }
        AdaptationOp::Remove { node } => {
            let i = find(nodes, *node).ok_or_else(|| {
                op_error(
                    step,
                    format!("remove references unknown node {node}"),
                    "use node ids from Middleware::structure()",
                )
            })?;
            nodes.remove(i);
            for n in nodes.iter_mut() {
                for input in n.inputs.iter_mut() {
                    if *input == Some(*node) {
                        *input = None;
                    }
                }
                n.outputs.retain(|(t, _)| *t != *node);
            }
            Ok(())
        }
        AdaptationOp::AttachFeature { node, descriptor } => {
            let i = find(nodes, *node).ok_or_else(|| {
                op_error(
                    step,
                    format!("attach references unknown node {node}"),
                    "use node ids from Middleware::structure()",
                )
            })?;
            if nodes[i].features.iter().any(|f| f.name == descriptor.name) {
                return Err(op_error(
                    step,
                    format!(
                        "feature {:?} is already attached to {node}",
                        descriptor.name
                    ),
                    "detach the existing feature first",
                ));
            }
            nodes[i].features.push(descriptor.clone());
            Ok(())
        }
        AdaptationOp::DetachFeature { node, feature } => {
            let i = find(nodes, *node).ok_or_else(|| {
                op_error(
                    step,
                    format!("detach references unknown node {node}"),
                    "use node ids from Middleware::structure()",
                )
            })?;
            let before = nodes[i].features.len();
            nodes[i].features.retain(|f| &f.name != feature);
            if nodes[i].features.len() == before {
                return Err(op_error(
                    step,
                    format!("feature {feature:?} is not attached to {node}"),
                    "check attached features via Middleware::structure()",
                ));
            }
            Ok(())
        }
    }
}
