//! Building and location model substrate for the PerPos middleware.
//!
//! The paper's Room Number Application (Fig. 1) resolves positions to room
//! identifiers through a *location model service*, and the particle filter
//! of §3.2 uses "location models to impose restrictions on possible
//! movements in the environment" (walls, Fig. 6). This crate provides that
//! substrate:
//!
//! * [`Polygon`] — planar polygons with point-containment and centroid,
//! * [`Room`], [`Floor`], [`Building`] — a floor-plan model with walls and
//!   doors, anchored to the globe through a [`perpos_geo::LocalFrame`],
//! * [`Building::room_at`] / [`Building::resolve_wgs84`] — the location
//!   model service (symbolic positions from coordinates),
//! * [`Building::path_blocked`] — wall-crossing tests used as particle
//!   filter movement constraints,
//! * [`RoomGraph`] — room adjacency (via doors) with shortest-path queries.
//!
//! # Examples
//!
//! ```
//! use perpos_geo::Point2;
//! use perpos_model::demo_building;
//!
//! let building = demo_building();
//! let room = building.room_at(Point2::new(2.0, 2.0), 0).expect("inside a room");
//! assert_eq!(room.id().as_str(), "R0");
//! // Moving through the outer wall is blocked…
//! assert!(building.path_blocked(Point2::new(2.0, 2.0), Point2::new(-5.0, 2.0), 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod building;
mod graph;
mod polygon;

pub use building::{demo_building, Building, BuildingBuilder, Door, Floor, Room, RoomId};
pub use graph::RoomGraph;
pub use polygon::Polygon;
