//! Experiment §3.1 — detecting unreliable GPS readings with the
//! `NumberOfSatellites` Component Feature and the satellite filter
//! component. Sweeps the threshold and reports how filtering trades
//! coverage for reliability.
//!
//! Run with: `cargo run -p perpos-bench --bin exp_sec31_satfilter --release`

#![allow(clippy::unwrap_used)]
use perpos_bench::{frame, position_errors, ErrorStats};
use perpos_core::prelude::*;
use perpos_sensors::{
    GpsEnvironment, GpsSimulator, Interpreter, NumberOfSatellitesFeature, Parser, SatelliteFilter,
    Trajectory,
};

fn run(threshold: Option<i64>, seed: u64) -> (ErrorStats, usize, i64) {
    // Sky straddling the reliability edge: the receiver keeps producing
    // "valid" fixes at 2-3 satellites which drift badly (§3.1).
    let env = GpsEnvironment {
        mean_visible_sats: 4.2,
        sat_stddev: 1.6,
        base_noise_m: 8.0,
        dropout_prob: 0.02,
    };
    let walk = Trajectory::new(
        vec![
            perpos_geo::Point2::new(0.0, 0.0),
            perpos_geo::Point2::new(150.0, 0.0),
        ],
        1.0,
    );
    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame(), walk.clone())
            .with_seed(seed)
            .with_environment(env),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let app = mw.application_sink();
    mw.connect(gps, parser, 0).unwrap();
    mw.connect(parser, interpreter, 0).unwrap();
    mw.connect(interpreter, app, 0).unwrap();

    let mut filter_node = None;
    if let Some(t) = threshold {
        mw.attach_feature(parser, NumberOfSatellitesFeature::new())
            .unwrap();
        let f = mw.add_component(SatelliteFilter::new(t));
        mw.insert_between(f, parser, interpreter, 0).unwrap();
        filter_node = Some(f);
    }

    let provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();
    mw.run_for(SimDuration::from_secs(150), SimDuration::from_secs(1))
        .unwrap();
    let history = provider.history();
    let stats = ErrorStats::from(position_errors(&history, &walk));
    let dropped = filter_node
        .map(|f| {
            mw.invoke(f, "filteredCount", &[])
                .unwrap()
                .as_i64()
                .unwrap_or(0)
        })
        .unwrap_or(0);
    (stats, history.len(), dropped)
}

fn main() {
    println!("=== §3.1: unreliable-reading detection via NumberOfSatellites ===\n");
    println!(
        "{:<14} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "threshold", "positions", "dropped", "mean", "median", "p95", "max"
    );
    println!("{}", "-".repeat(70));
    let seeds = [5u64, 17, 29, 41, 53];
    for threshold in [None, Some(3), Some(4), Some(5), Some(6)] {
        // Median-by-mean across seeds.
        let mut runs: Vec<(ErrorStats, usize, i64)> =
            seeds.iter().map(|s| run(threshold, *s)).collect();
        runs.sort_by(|a, b| a.0.mean.total_cmp(&b.0.mean));
        let (stats, kept, dropped) = runs[runs.len() / 2];
        let label = match threshold {
            None => "unfiltered".to_string(),
            Some(t) => format!(">= {t} sats"),
        };
        println!(
            "{:<14} {:>9} {:>9} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            label, kept, dropped, stats.mean, stats.median, stats.p95, stats.max
        );
    }
    println!(
        "\n(expected shape: raising the bar drops more readings and cuts the error tail —\n p95/max shrink dramatically once sub-4-satellite fixes are gone; coverage falls)"
    );
}
