//! End-to-end test of registry-driven dynamic assembly: the full Fig. 1
//! GPS pipeline wired automatically by declared capabilities, like the
//! paper's OSGi-based composition.

#![allow(clippy::unwrap_used)]
use perpos::core::assembly::Assembler;
use perpos::prelude::*;

#[test]
fn full_pipeline_assembles_from_factories() {
    let frame = LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap());
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));

    let mut mw = Middleware::new();
    let mut asm = Assembler::new();

    // Register top-down — resolution order must not matter.
    let interp_id = asm.register_factory(
        "interpreter",
        &[kinds::POSITION_WGS84],
        &[kinds::NMEA_SENTENCE],
        || Box::new(Interpreter::new()),
    );
    let parser_id = asm.register_factory(
        "parser",
        &[kinds::NMEA_SENTENCE],
        &[kinds::RAW_STRING],
        || Box::new(Parser::new()),
    );
    assert_eq!(asm.sync(&mut mw).unwrap(), 0, "nothing resolves yet");

    let gps_id = {
        let walk = walk.clone();
        asm.register_factory("gps", &[kinds::RAW_STRING], &[], move || {
            Box::new(GpsSimulator::new("GPS", frame, walk.clone()).with_seed(3))
        })
    };
    let added = asm.sync(&mut mw).unwrap();
    assert_eq!(added, 3, "whole chain instantiates at once");

    // Wire the assembled interpreter to the application and run.
    let interp_node = asm.node_for(interp_id).unwrap();
    let app = mw.application_sink();
    mw.connect_to_sink(interp_node, app).unwrap();
    let provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();
    mw.run_for(SimDuration::from_secs(20), SimDuration::from_secs(1))
        .unwrap();
    assert!(provider.last_position().is_some());

    // Channel view reflects the assembled pipeline.
    let channels = mw.channels();
    assert_eq!(channels.len(), 1);
    assert_eq!(
        channels[0].member_names,
        vec!["GPS", "Parser", "Interpreter"]
    );

    // Tearing the sensor down unresolves and removes the whole chain.
    asm.unregister_factory(gps_id, &mut mw).unwrap();
    asm.sync(&mut mw).unwrap();
    assert!(asm.node_for(parser_id).is_none());
    assert!(asm.node_for(interp_id).is_none());
    // Engine still steps with just the sink left.
    mw.step().unwrap();
}
