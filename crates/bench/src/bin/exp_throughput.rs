//! Experiment "throughput" — sequential vs level-parallel execution.
//! The paper defers "reliability, scalability and performance" to future
//! work (§6); this sweep measures what the executor split buys: items
//! per second through W parallel pipelines of depth D under the default
//! [`Sequential`] executor and under [`LevelParallel`], which runs
//! independent components of one topological level on worker threads.
//!
//! Every component performs a fixed chunk of deterministic integer work,
//! so the sweep measures scheduling, not allocator noise. Both executors
//! produce byte-identical channel data trees (asserted by the
//! `executor_determinism` suite); this experiment only times them.
//!
//! Run with: `cargo run -p perpos-bench --bin exp_throughput --release`
//! (pass `--smoke` for the reduced CI sweep, which fails if the
//! level-parallel executor is more than 20 % slower than sequential on a
//! 1-wide pipeline — the no-parallelism-available regression guard).
//!
//! Writes the full sweep to `BENCH_throughput.json`.

#![allow(clippy::unwrap_used)]
use std::fmt::Write as _;
use std::time::Instant;

use perpos_core::prelude::*;

/// Iterations of the per-component integer kernel. Chosen so one node
/// costs a few microseconds — large enough that scheduling overhead is
/// visible as a ratio, small enough that the sweep stays fast.
const WORK: u32 = 2_000;

/// The deterministic per-item workload every processor runs.
fn burn(mut v: i64) -> i64 {
    for _ in 0..WORK {
        v = std::hint::black_box(
            v.wrapping_mul(6_364_136_223_846_793_005).rotate_left(17) ^ 0x9e37,
        );
    }
    v
}

/// W parallel pipelines of depth D, all delivering to one application
/// sink (16 ports, so W ≤ 16).
fn build(width: usize, depth: usize) -> Middleware {
    let mut mw = Middleware::new();
    let app = mw.application_sink();
    for w in 0..width {
        let mut i = 0i64;
        let src = mw.add_component(FnSource::new(
            format!("src{w}"),
            kinds::RAW_STRING,
            move |_| {
                i += 1;
                Some(Value::Int(i))
            },
        ));
        let mut prev = src;
        for d in 0..depth {
            let node = mw.add_component(FnProcessor::new(
                format!("w{w}s{d}"),
                vec![kinds::RAW_STRING],
                kinds::RAW_STRING,
                |item| item.payload.as_i64().map(|v| Value::Int(burn(v)).into()),
            ));
            mw.connect(prev, node, 0).unwrap();
            prev = node;
        }
        mw.connect_to_sink(prev, app).unwrap();
    }
    mw
}

struct Sample {
    width: usize,
    depth: usize,
    mode: ExecMode,
    nodes: usize,
    us_per_step: f64,
    items_per_sec: f64,
}

fn measure(width: usize, depth: usize, mode: ExecMode, steps: u32) -> Sample {
    let mut mw = build(width, depth);
    mw.set_executor(mode);
    for _ in 0..steps / 10 {
        mw.step().unwrap();
        mw.advance_clock(SimDuration::from_micros(1));
    }
    let start = Instant::now();
    for _ in 0..steps {
        mw.step().unwrap();
        mw.advance_clock(SimDuration::from_micros(1));
    }
    let us = start.elapsed().as_micros() as f64 / f64::from(steps);
    Sample {
        width,
        depth,
        mode,
        nodes: mw.structure().len(),
        us_per_step: us,
        // One item enters each pipeline per step.
        items_per_sec: width as f64 / (us / 1e6),
    }
}

fn render_json(cores: usize, samples: &[Sample]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"throughput\",\n");
    let _ = writeln!(out, "  \"work_iters_per_node\": {WORK},");
    let _ = writeln!(out, "  \"cores\": {cores},");
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let sep = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"width\": {}, \"depth\": {}, \"executor\": \"{}\", \"nodes\": {}, \
             \"us_per_step\": {:.1}, \"items_per_sec\": {:.0}}}{sep}",
            s.width,
            s.depth,
            s.mode.as_str(),
            s.nodes,
            s.us_per_step,
            s.items_per_sec,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let steps: u32 = if smoke { 300 } else { 2_000 };
    // The application sink has 16 input ports, capping width at 16.
    let sweep: &[(usize, usize)] = if smoke {
        &[(1, 4), (8, 2)]
    } else {
        &[(1, 4), (1, 16), (2, 4), (4, 4), (8, 2), (8, 8), (16, 4)]
    };

    println!("=== throughput: sequential vs level-parallel executor ({cores} core(s)) ===\n");
    println!(
        "{:>6} {:>6} {:>7} {:>16} {:>12} {:>14}",
        "width", "depth", "nodes", "executor", "step µs", "items/s"
    );
    println!("{}", "-".repeat(66));

    let mut samples = Vec::new();
    for &(width, depth) in sweep {
        for mode in [ExecMode::Sequential, ExecMode::LevelParallel] {
            let s = measure(width, depth, mode, steps);
            println!(
                "{:>6} {:>6} {:>7} {:>16} {:>12.1} {:>14.0}",
                s.width,
                s.depth,
                s.nodes,
                s.mode.as_str(),
                s.us_per_step,
                s.items_per_sec
            );
            samples.push(s);
        }
    }

    let json = render_json(cores, &samples);
    std::fs::write("BENCH_throughput.json", &json).unwrap();
    println!("\nwrote BENCH_throughput.json");

    // Regression guard: with no parallelism to exploit (1-wide chain),
    // the level-parallel executor must cost at most 20 % over
    // sequential — it detects the linear shape and takes the same inner
    // path, so a larger gap means the fast path broke.
    let seq = samples
        .iter()
        .find(|s| s.width == 1 && s.mode == ExecMode::Sequential)
        .unwrap();
    let par = samples
        .iter()
        .find(|s| s.width == 1 && s.mode == ExecMode::LevelParallel)
        .unwrap();
    let ratio = par.us_per_step / seq.us_per_step;
    println!("1-wide overhead: level-parallel/sequential = {ratio:.3} (limit 1.20)");
    if ratio > 1.20 {
        eprintln!("FAIL: level-parallel executor regressed on a linear pipeline");
        std::process::exit(1);
    }
    if cores >= 4 {
        if let (Some(s), Some(p)) = (
            samples
                .iter()
                .find(|s| s.width == 8 && s.mode == ExecMode::Sequential),
            samples
                .iter()
                .find(|s| s.width == 8 && s.mode == ExecMode::LevelParallel),
        ) {
            println!(
                "8-wide speed-up: {:.2}x items/s with level-parallel",
                p.items_per_sec / s.items_per_sec
            );
        }
    }
}
