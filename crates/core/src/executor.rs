//! The execution layer: scheduling policy split out of the graph.
//!
//! [`Middleware::step`](crate::Middleware::step) used to be a monolithic
//! sequential loop; this module reifies the *how* of running one step as
//! an [`Executor`] so the scheduling policy is a first-class, swappable
//! concern while the graph stays a pure structure description
//! (translucency applied to execution itself).
//!
//! Two executors ship:
//!
//! * [`Sequential`] — the explicit default: one FIFO queue, one node at a
//!   time, exactly the engine the crate always had.
//! * [`LevelParallel`] — runs mutually independent nodes of each FIFO
//!   *wave* on scoped worker threads. A wave is the longest prefix of the
//!   queue whose entries address pairwise-distinct nodes, so per-node
//!   processing order — and therefore every channel data tree — is
//!   byte-identical to [`Sequential`] for the same trace.
//!
//! A third, test-oriented executor — [`PermutedParallel`] — replays
//! [`LevelParallel`]'s waves under seeded unit-order permutations to
//! *validate* the independence assumption the contract below rests on
//! (the dynamic counterpart of the analysis crate's P017 lint).
//!
//! # Determinism contract
//!
//! Both executors produce identical channel data trees, identical
//! application-sink deliveries and identical per-node
//! [`HealthRegistry`] outcomes for the same input trace. The executors
//! share one code path for the per-node unit of work (consume features →
//! `on_input` → produce features) and for routing; [`LevelParallel`]
//! only changes *when* independent units run, never the order in which
//! any single node observes items, nor the order routed items enter the
//! queue.
//!
//! Known caveats, inherent to running units concurrently:
//!
//! * When a unit faults with [`FaultPolicy::Propagate`]
//!   (aborting the step), other units of the same wave have already
//!   executed, so their components' *internal* state may have advanced
//!   further than under [`Sequential`]. Nothing they produced is routed,
//!   so all externally observable data stays identical.
//! * A [`ChannelFeature`](crate::channel::ChannelFeature) that
//!   reflectively mutates a component while routing may observe that a
//!   same-wave component already ran. In-tree features do not do this.
//!
//! [`FaultPolicy::Propagate`]: crate::supervision::FaultPolicy::Propagate

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::channel::ChannelLayer;
use crate::component::ComponentCtx;
use crate::data::{DataItem, DataKind, Payload, PayloadArena, Value};
use crate::distribution::Deployment;
use crate::feature::{FeatureAction, FeatureHost};
use crate::graph::{Node, NodeId, ProcessingGraph};
use crate::supervision::{FaultAction, HealthRegistry};
use crate::{CoreError, SimDuration, SimTime};

/// Which execution policy a [`Middleware`](crate::Middleware) runs its
/// steps under. Surfaced in `GraphConfig` (`"executor"` field) and over
/// the reflective surface (`invoke(node, "executor", ..)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One node at a time in FIFO order — the engine's historical and
    /// default behaviour.
    #[default]
    Sequential,
    /// Independent nodes of each FIFO wave run on scoped worker threads;
    /// identical observable results, better wall-clock on wide graphs.
    LevelParallel,
}

impl ExecMode {
    /// Canonical configuration name of the mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            ExecMode::Sequential => "sequential",
            ExecMode::LevelParallel => "level-parallel",
        }
    }

    /// Parses a configuration name (`"sequential"`, `"level-parallel"`
    /// and the common spelling variants).
    pub fn from_name(name: &str) -> Option<ExecMode> {
        match name.trim().to_ascii_lowercase().as_str() {
            "sequential" | "seq" => Some(ExecMode::Sequential),
            "level-parallel" | "level_parallel" | "levelparallel" | "parallel" => {
                Some(ExecMode::LevelParallel)
            }
            _ => None,
        }
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything one engine step may touch, borrowed from the
/// [`Middleware`](crate::Middleware) for the duration of the step. The
/// middleware constructs this; executors consume it.
pub struct EngineCtx<'a> {
    pub(crate) graph: &'a mut ProcessingGraph,
    pub(crate) channels: &'a mut ChannelLayer,
    pub(crate) health: &'a mut HealthRegistry,
    pub(crate) deployment: Option<&'a mut Deployment>,
    pub(crate) now: SimTime,
    /// The shard's payload arena, when interning is enabled. Only the
    /// inline (sequential) unit paths consume it; wave workers run
    /// without it — byte-identical output either way, since an interned
    /// and a plain payload holding the same value are indistinguishable.
    pub(crate) arena: Option<&'a mut PayloadArena>,
    /// Logical time driving arena reclamation: advanced once per
    /// completed step ([`EngineCtx::end_step`]), seeded from the
    /// middleware's step counter.
    pub(crate) watermark: u64,
    /// One-entry memo for [`ProcessingGraph::kind_id`] resolution,
    /// keyed by the address and length of a `Cow::Borrowed(&'static
    /// str)` kind. Statics are never freed, so pointer identity implies
    /// string identity; owned kinds bypass the memo. `(0, 0, None)`
    /// matches nothing. Sound across the context's lifetime because the
    /// kind table cannot change while the engine mutably borrows the
    /// graph.
    kind_memo: (usize, usize, Option<u16>),
}

/// How many completed steps between arena reclamation sweeps (a power
/// of two so the stride check folds to a mask). See
/// [`EngineCtx::end_step`].
const ARENA_ADVANCE_STRIDE: u64 = 8;

/// A queue entry: deliver `item` to input `port` of node.
type Entry = (NodeId, usize, DataItem);

/// FIFO entry queue with an inline head slot. In a linear pipeline the
/// queue never holds more than one in-flight entry, so the common case
/// stays out of the ring buffer entirely: no growth check, no index
/// arithmetic, no heap allocation — one `Option` on the stack. Order is
/// exactly FIFO: the slot is filled only when it is free *and* the ring
/// is empty (so everything in `rest` is younger than `head`), and pops
/// always drain the slot first.
#[derive(Default)]
struct RunQueue {
    head: Option<Entry>,
    rest: VecDeque<Entry>,
}

impl RunQueue {
    #[inline]
    fn push_back(&mut self, entry: Entry) {
        if self.head.is_none() && self.rest.is_empty() {
            self.head = Some(entry);
        } else {
            self.rest.push_back(entry);
        }
    }

    #[inline]
    fn pop_front(&mut self) -> Option<Entry> {
        match self.head.take() {
            Some(e) => Some(e),
            None => self.rest.pop_front(),
        }
    }

    #[inline]
    fn front(&self) -> Option<&Entry> {
        self.head.as_ref().or_else(|| self.rest.front())
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.head.is_none() && self.rest.is_empty()
    }
}

/// One executed unit's outcome plus whatever it emitted.
type UnitOutcome = (Result<(), CoreError>, Vec<DataItem>);

/// A scheduling policy for one engine step.
///
/// Implementations must uphold the determinism contract described in the
/// [module documentation](self): per-node processing order and routing
/// order must match [`Sequential`].
pub trait Executor: Send {
    /// The mode this executor implements.
    fn mode(&self) -> ExecMode;

    /// Runs one engine step to quiescence: deliver due remote messages
    /// and `pending` out-of-band emissions, tick all sources, then drain
    /// the item queue.
    ///
    /// # Errors
    ///
    /// Propagates the first fault of a node whose policy is
    /// `Propagate`; faults under any other policy are contained.
    fn step(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        pending: Vec<(NodeId, DataItem)>,
    ) -> Result<(), CoreError>;

    /// Runs `steps` engine steps back to back, advancing `ctx.now` by
    /// `tick` after every completed step. Observationally identical to
    /// calling [`Executor::step`] in a loop, but executors override this
    /// to hoist per-step setup — the source list, the queue and routing
    /// scratch allocations — out of the inner loop.
    ///
    /// `pending` is delivered on the first step only, matching the
    /// loop the middleware would otherwise run.
    ///
    /// # Errors
    ///
    /// Stops at the first step error, leaving `ctx.now` at the failing
    /// step's time (so the caller can recover the completed-step count).
    fn step_batch(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        mut pending: Vec<(NodeId, DataItem)>,
        steps: u64,
        tick: SimDuration,
    ) -> Result<(), CoreError> {
        for _ in 0..steps {
            self.step(ctx, std::mem::take(&mut pending))?;
            ctx.now += tick;
        }
        Ok(())
    }

    /// Ingests a pre-lexed block of trace lines: each line runs as one
    /// engine step in which `source` emits the line (as [`Value::Text`]
    /// of `kind`) instead of being ticked — the batch entry point behind
    /// [`Middleware::ingest_batch`](crate::Middleware::ingest_batch).
    ///
    /// Injection is inherently serial (routing order is the determinism
    /// contract), so every executor shares the sequential implementation;
    /// the results are byte-identical to a source ticking out the same
    /// lines under any executor.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownNode`] when `source` is not in the graph;
    /// otherwise the same fault semantics as [`Executor::step_batch`].
    fn ingest_batch(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        pending: Vec<(NodeId, DataItem)>,
        source: NodeId,
        kind: &DataKind,
        lines: &[&str],
        tick: SimDuration,
    ) -> Result<u64, CoreError> {
        ctx.run_ingest(source, kind, lines, tick, pending)
    }
}

/// Creates the executor implementing `mode`.
pub fn executor_for(mode: ExecMode) -> Box<dyn Executor> {
    match mode {
        ExecMode::Sequential => Box::new(Sequential),
        ExecMode::LevelParallel => Box::new(LevelParallel::new()),
    }
}

// ---------------------------------------------------------------------
// Per-node units of work (shared by every executor)
// ---------------------------------------------------------------------

/// Runs the consume-direction features of a node over an incoming item.
/// Returns the (possibly replaced) item and any data the features added.
fn consume_features(
    node: &mut Node,
    item: DataItem,
    now: SimTime,
) -> Result<(Option<DataItem>, Vec<DataItem>), CoreError> {
    let component = &mut node.component;
    let features = &mut node.features;
    let mut extras = Vec::new();
    let mut current = Some(item);
    for slot in features.iter_mut() {
        let mut host = FeatureHost::new(component.as_mut(), now);
        if let Some(it) = current.take() {
            let kind_before = it.kind.clone();
            match slot.feature.on_consume(it, &mut host)? {
                FeatureAction::Continue(out) => {
                    if out.kind != kind_before {
                        return Err(CoreError::ComponentFailure {
                            component: slot.descriptor.name.clone(),
                            reason: format!(
                                "feature changed item kind {kind_before} -> {}; features cannot change the data type (paper §2.1)",
                                out.kind
                            ),
                        });
                    }
                    current = Some(out);
                }
                FeatureAction::Drop => current = None,
            }
        }
        extras.extend(host.take_emitted());
    }
    Ok((current, extras))
}

/// Runs the produce-direction features over an item the node emitted,
/// pushing the surviving item (first) plus feature-added data onto
/// `out`, in routing order. Featureless nodes — the common case — pass
/// the item straight through with no intermediate collection.
fn produce_features(
    node: &mut Node,
    item: DataItem,
    now: SimTime,
    out: &mut Vec<DataItem>,
) -> Result<(), CoreError> {
    if node.features.is_empty() {
        out.push(item);
        return Ok(());
    }
    let component = &mut node.component;
    let features = &mut node.features;
    let insert_at = out.len();
    let mut current = Some(item);
    for slot in features.iter_mut() {
        let mut host = FeatureHost::new(component.as_mut(), now);
        if let Some(it) = current.take() {
            let kind_before = it.kind.clone();
            match slot.feature.on_produce(it, &mut host)? {
                FeatureAction::Continue(next) => {
                    if next.kind != kind_before {
                        return Err(CoreError::ComponentFailure {
                            component: slot.descriptor.name.clone(),
                            reason: format!(
                                "feature changed item kind {kind_before} -> {}; features cannot change the data type (paper §2.1)",
                                next.kind
                            ),
                        });
                    }
                    current = Some(next);
                }
                FeatureAction::Drop => current = None,
            }
        }
        out.extend(host.take_emitted());
    }
    if let Some(it) = current {
        // The survivor routes before the feature-added extras.
        out.insert(insert_at, it);
    }
    Ok(())
}

/// The node-local part of a source tick: `on_tick`, then the produce
/// features over every emission. Items ready for routing are pushed to
/// `out` incrementally, so on a mid-way fault `out` holds exactly what
/// the sequential engine would already have routed.
fn tick_unit(
    node: &mut Node,
    now: SimTime,
    out: &mut Vec<DataItem>,
    emit: &mut Vec<DataItem>,
    arena: Option<&mut PayloadArena>,
) -> Result<(), CoreError> {
    // Featureless nodes — the common case — emit straight into the
    // routing buffer: no per-emission feature pass, no second move.
    if node.features.is_empty() {
        let mut ctx = ComponentCtx::with_buffer(now, std::mem::take(out), arena);
        let r = node.component.on_tick(&mut ctx);
        let mut buf = ctx.take_emitted();
        if r.is_err() {
            // A failing tick routes nothing, same as the feature path
            // where `emitted` dies with the context.
            buf.clear();
        }
        *out = buf;
        return r;
    }
    let mut ctx = ComponentCtx::with_buffer(now, std::mem::take(emit), arena);
    node.component.on_tick(&mut ctx)?;
    let mut emitted = ctx.take_emitted();
    for item in emitted.drain(..) {
        produce_features(node, item, now, out)?;
    }
    *emit = emitted;
    Ok(())
}

/// The node-local part of one item delivery: consume features,
/// `on_input`, produce features over every emission. Push order into
/// `out` (extras first, then per-emission outputs) matches the
/// sequential engine's routing order exactly.
fn input_unit(
    node: &mut Node,
    port: usize,
    item: DataItem,
    now: SimTime,
    out: &mut Vec<DataItem>,
    emit: &mut Vec<DataItem>,
    arena: Option<&mut PayloadArena>,
) -> Result<(), CoreError> {
    // Featureless fast path, mirroring `tick_unit`: deliver and emit
    // straight into the routing buffer.
    if node.features.is_empty() {
        let mut ctx = ComponentCtx::with_buffer(now, std::mem::take(out), arena);
        let r = node.component.on_input(port, item, &mut ctx);
        let mut buf = ctx.take_emitted();
        if r.is_err() {
            // A failing delivery routes nothing, matching the feature
            // path where `emitted` dies with the context.
            buf.clear();
        }
        *out = buf;
        return r;
    }
    let (passed, extras) = consume_features(node, item, now)?;
    out.extend(extras);
    let Some(item) = passed else { return Ok(()) };
    let mut ctx = ComponentCtx::with_buffer(now, std::mem::take(emit), arena);
    node.component.on_input(port, item, &mut ctx)?;
    let mut emitted = ctx.take_emitted();
    for item in emitted.drain(..) {
        produce_features(node, item, now, out)?;
    }
    *emit = emitted;
    Ok(())
}

/// Reusable per-engine buffers for the inline (non-wave) unit path.
/// `out` collects a unit's routed outputs; `emit` is loaned to
/// [`ComponentCtx`] so component emissions reuse one allocation across
/// every unit of a step — and, for batched callers, across steps.
#[derive(Default)]
struct Scratch {
    out: Vec<DataItem>,
    emit: Vec<DataItem>,
}

/// What a worker executes for one wave member.
enum Task {
    /// Tick a source.
    Tick,
    /// Deliver an item to an input port.
    Input(usize, DataItem),
}

/// One wave member: the task, the node (detached from the graph map for
/// the duration of the wave), and the unit's results.
struct Cell<'g> {
    id: NodeId,
    name: String,
    node: Option<&'g mut Node>,
    task: Option<Task>,
    out: Vec<DataItem>,
    result: Result<(), CoreError>,
}

/// Runs one cell's unit, containing panics as faults.
fn run_cell(cell: &mut Cell<'_>, now: SimTime) {
    let Some(node) = cell.node.as_deref_mut() else {
        cell.result = Err(CoreError::UnknownNode(cell.id));
        return;
    };
    let task = cell.task.take();
    let out = &mut cell.out;
    let mut emit = Vec::new();
    let caught = catch_unwind(AssertUnwindSafe(|| match task {
        Some(Task::Tick) | None => tick_unit(node, now, out, &mut emit, None),
        Some(Task::Input(port, item)) => input_unit(node, port, item, now, out, &mut emit, None),
    }));
    cell.result = match caught {
        Ok(r) => r,
        Err(payload) => Err(CoreError::ComponentFailure {
            component: cell.name.clone(),
            reason: format!("panic: {}", panic_message(payload.as_ref())),
        }),
    };
}

/// Renders a caught panic payload for fault records; panics carry a
/// `&str` or `String` message in practice.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}


// ---------------------------------------------------------------------
// EngineCtx — routing, supervision bookkeeping, shared step scaffolding
// ---------------------------------------------------------------------

impl EngineCtx<'_> {
    pub(crate) fn new<'a>(
        graph: &'a mut ProcessingGraph,
        channels: &'a mut ChannelLayer,
        health: &'a mut HealthRegistry,
        deployment: Option<&'a mut Deployment>,
        now: SimTime,
        arena: Option<&'a mut PayloadArena>,
        watermark: u64,
    ) -> EngineCtx<'a> {
        EngineCtx {
            graph,
            channels,
            health,
            deployment,
            now,
            arena,
            watermark,
            kind_memo: (0, 0, None),
        }
    }

    /// Marks one step complete: bumps the logical-time watermark and
    /// periodically lets the arena seal/retire generations against it.
    /// Executors call this after every successfully drained step.
    ///
    /// Reclamation is amortized over [`ARENA_ADVANCE_STRIDE`] steps:
    /// sealing less often only delays when slots recycle (the free list
    /// self-balances by allocating fresh slots in the meantime) — the
    /// bytes flowing through the graph are untouched either way, since
    /// the arena changes where values live, never what they are.
    fn end_step(&mut self) {
        self.watermark += 1;
        if self.watermark.is_multiple_of(ARENA_ADVANCE_STRIDE) {
            if let Some(arena) = self.arena.as_deref_mut() {
                arena.advance(self.watermark);
            }
        }
    }

    /// Best-effort display name of a node.
    fn node_name(&self, id: NodeId) -> String {
        self.graph
            .node(id)
            .map(|n| n.descriptor.name.clone())
            .unwrap_or_else(|| format!("{id:?}"))
    }

    /// Channel bookkeeping plus downstream fan-out for one finished item.
    fn route_item(
        &mut self,
        id: NodeId,
        item: DataItem,
        queue: &mut RunQueue,
    ) -> Result<(), CoreError> {
        let now = self.now;
        if let Some(tree) = self.channels.record(id, &item) {
            // Channel Features are the only user code on the routing
            // path; the panic fence sits exactly here so the pure
            // bookkeeping around it stays fence-free.
            let EngineCtx {
                graph, channels, ..
            } = self;
            let caught = catch_unwind(AssertUnwindSafe(|| {
                channels.apply_features(graph, &tree, now)
            }));
            let emitted = match caught {
                Ok(r) => r?,
                Err(payload) => {
                    return Err(CoreError::ComponentFailure {
                        component: self.node_name(id),
                        reason: format!("panic: {}", panic_message(payload.as_ref())),
                    })
                }
            };
            for (node, extra) in emitted {
                self.route_item(node, extra, queue)?;
            }
        }
        // Split the borrows so the downstream slice resolves once per
        // item while the deployment stays mutably reachable.
        let EngineCtx {
            graph,
            deployment,
            kind_memo,
            ..
        } = self;
        let downstream = graph.downstream(id);
        // Resolve the item's kind against the dense kind table once;
        // each edge check is then a `u16` comparison, not a string one.
        // Static kinds (the `kinds::*` constants, i.e. every hot path)
        // resolve by pointer identity against the memo instead of a
        // string search.
        let kind_id = match item.kind.as_static() {
            Some(s) => {
                let key = (s.as_ptr() as usize, s.len());
                if (key.0, key.1) == (kind_memo.0, kind_memo.1) {
                    kind_memo.2
                } else {
                    let resolved = graph.kind_id(&item.kind);
                    *kind_memo = (key.0, key.1, resolved);
                    resolved
                }
            }
            None => graph.kind_id(&item.kind),
        };
        // Single-edge fast path — the overwhelmingly common shape in a
        // linear pipeline: one acceptance check, item moved, no counting
        // pass.
        if let [(target, port)] = *downstream {
            if graph.accepts_by_id(target, port, kind_id) {
                match deployment.as_deref_mut() {
                    Some(d) if d.crosses_hosts(id, target) => {
                        d.send(now, id, target, port, item);
                    }
                    _ => queue.push_back((target, port, item)),
                }
            }
            return Ok(());
        }
        let mut remaining = downstream
            .iter()
            .filter(|&&(t, p)| graph.accepts_by_id(t, p, kind_id))
            .count();
        let mut item = Some(item);
        for &(target, port) in downstream {
            if !graph.accepts_by_id(target, port, kind_id) {
                continue;
            }
            remaining -= 1;
            // The last accepting edge takes the item by move; earlier
            // edges clone (cheap: payload and attrs are Arc-shared).
            let routed = if remaining == 0 {
                item.take()
                    .expect("exactly `remaining` accepting edges follow")
            } else {
                item.as_ref()
                    .expect("exactly `remaining` accepting edges follow")
                    .clone()
            };
            // Cross-host edges go through the deployment's link model.
            match deployment.as_deref_mut() {
                Some(d) if d.crosses_hosts(id, target) => {
                    d.send(now, id, target, port, routed);
                }
                _ => queue.push_back((target, port, routed)),
            }
        }
        Ok(())
    }

    /// Delivers due remote messages and routes out-of-band reflective
    /// emissions — the common step prelude.
    fn drain_prelude(
        &mut self,
        pending: Vec<(NodeId, DataItem)>,
        queue: &mut RunQueue,
    ) -> Result<(), CoreError> {
        let now = self.now;
        if let Some(dep) = self.deployment.as_deref_mut() {
            for (target, port, item) in dep.take_due(now) {
                if self.graph.contains(target) {
                    queue.push_back((target, port, item));
                }
            }
        }
        for (node, item) in pending {
            if self.graph.contains(node) {
                self.route_item(node, item, queue)?;
            }
        }
        Ok(())
    }

    /// Applies a contained fault to the node per its policy.
    fn resolve_fault(&mut self, id: NodeId, err: CoreError) -> Result<(), CoreError> {
        match self.health.on_fault(id, self.now, &err.to_string()) {
            FaultAction::Propagate => Err(err),
            FaultAction::Drop => Ok(()),
            FaultAction::Restart | FaultAction::Quarantine => {
                if let Some(node) = self.graph.node_mut(id) {
                    node.component.on_reset();
                }
                Ok(())
            }
        }
    }

    /// Routes what a unit produced and settles its supervision outcome.
    ///
    /// Routing happens even when the unit faulted mid-way: `out` holds
    /// exactly the items the sequential engine had already routed before
    /// the fault hit. Routing errors — including Channel Feature panics,
    /// fenced inside [`route_item`](Self::route_item) — are attributed
    /// to the node like any other fault. `out` is drained, not consumed,
    /// so callers can reuse one buffer across units.
    fn finish_unit(
        &mut self,
        id: NodeId,
        unit: Result<(), CoreError>,
        out: &mut Vec<DataItem>,
        queue: &mut RunQueue,
    ) -> Result<(), CoreError> {
        let mut route = Ok(());
        for item in out.drain(..) {
            route = self.route_item(id, item, queue);
            if route.is_err() {
                // The drain guard discards what's left unrouted.
                break;
            }
        }
        let err = match (route, unit) {
            (Err(e), _) => Some(e),
            (Ok(()), Err(e)) => Some(e),
            (Ok(()), Ok(())) => None,
        };
        match err {
            Some(e) => self.resolve_fault(id, e),
            None => {
                self.health.record_success(id, self.now);
                Ok(())
            }
        }
    }

    /// Ticks one source inline: unit, then routing + supervision.
    /// `scratch.out` is drained before return.
    fn run_source_inline(
        &mut self,
        id: NodeId,
        queue: &mut RunQueue,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        let unit = match self.graph.node_mut(id) {
            None => Err(CoreError::UnknownNode(id)),
            Some(node) => {
                let now = self.now;
                let arena = self.arena.as_deref_mut();
                let Scratch { out, emit } = scratch;
                let caught =
                    catch_unwind(AssertUnwindSafe(|| tick_unit(node, now, out, emit, arena)));
                match caught {
                    Ok(r) => r,
                    Err(payload) => Err(CoreError::ComponentFailure {
                        component: self.node_name(id),
                        reason: format!("panic: {}", panic_message(payload.as_ref())),
                    }),
                }
            }
        };
        self.finish_unit(id, unit, &mut scratch.out, queue)
    }

    /// Processes one queue entry inline: unit, then routing + supervision.
    /// `scratch.out` is drained before return.
    fn run_entry_inline(
        &mut self,
        id: NodeId,
        port: usize,
        item: DataItem,
        queue: &mut RunQueue,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        let unit = match self.graph.node_mut(id) {
            None => Err(CoreError::UnknownNode(id)),
            Some(node) => {
                let now = self.now;
                let arena = self.arena.as_deref_mut();
                let Scratch { out, emit } = scratch;
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    input_unit(node, port, item, now, out, emit, arena)
                }));
                match caught {
                    Ok(r) => r,
                    Err(payload) => Err(CoreError::ComponentFailure {
                        component: self.node_name(id),
                        reason: format!("panic: {}", panic_message(payload.as_ref())),
                    }),
                }
            }
        };
        self.finish_unit(id, unit, &mut scratch.out, queue)
    }

    /// The full sequential drain over a precomputed source list: tick
    /// every source, then FIFO-drain the queue one node at a time.
    /// `scratch` is the reusable per-unit output buffer. Batched callers
    /// hoist both across steps; [`run_sequential`](Self::run_sequential)
    /// wraps this for one-shot use.
    fn run_sequential_from(
        &mut self,
        sources: &[NodeId],
        queue: &mut RunQueue,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        for &src in sources {
            if self.health.is_quarantined(src, self.now) {
                continue;
            }
            self.run_source_inline(src, queue, scratch)?;
        }
        while let Some((node, port, item)) = queue.pop_front() {
            // Items addressed to a quarantined node are dropped: the
            // breaker is open, nothing may excite the component.
            if self.health.is_quarantined(node, self.now) {
                continue;
            }
            self.run_entry_inline(node, port, item, queue, scratch)?;
        }
        Ok(())
    }

    /// One-shot sequential drain. Shared by [`Sequential`] and by
    /// [`LevelParallel`]'s single-worker / linear-graph fast path.
    fn run_sequential(&mut self, queue: &mut RunQueue) -> Result<(), CoreError> {
        let sources = self.graph.sources();
        let mut scratch = Scratch::default();
        self.run_sequential_from(&sources, queue, &mut scratch)
    }

    /// Block ingest: every `lines` element becomes one engine step in
    /// which `source` emits the line as a [`Value::Text`] item of `kind`
    /// — interned straight into the arena when one is attached — instead
    /// of being ticked. Produce features, routing, channel bookkeeping,
    /// supervision and the watermark advance are exactly the per-step
    /// machinery, with the queue and routing scratch hoisted across the
    /// whole block (the same hoisting [`Executor::step_batch`] does), so
    /// the per-line path allocates nothing in steady state.
    ///
    /// Returns the number of lines ingested (= steps run). Lines offered
    /// while the source is quarantined are consumed and dropped, exactly
    /// as a quarantined source's tick is skipped.
    pub(crate) fn run_ingest(
        &mut self,
        source: NodeId,
        kind: &DataKind,
        lines: &[&str],
        tick: SimDuration,
        mut pending: Vec<(NodeId, DataItem)>,
    ) -> Result<u64, CoreError> {
        if !self.graph.contains(source) {
            return Err(CoreError::UnknownNode(source));
        }
        let mut queue = RunQueue::default();
        let mut scratch = Scratch::default();
        let mut ingested = 0u64;
        for &line in lines {
            self.drain_prelude(std::mem::take(&mut pending), &mut queue)?;
            if !self.health.is_quarantined(source, self.now) {
                // Build the item as if `source` emitted it this tick.
                let payload = match self.arena.as_deref_mut() {
                    Some(arena) => arena.intern_with(|slot| match slot {
                        // Reuse the recycled slot's String capacity.
                        Value::Text(s) => {
                            s.clear();
                            s.push_str(line);
                        }
                        other => *other = Value::Text(line.to_string()),
                    }),
                    None => Payload::new(Value::Text(line.to_string())),
                };
                let item = DataItem::new(kind.clone(), self.now, payload);
                // The unit for an injected emission is the produce-feature
                // pass alone (there is no on_tick); panics are contained
                // and attributed to the source like any tick fault. A
                // featureless source runs no user code here, so the
                // panic fence is skipped.
                let unit = match self.graph.node_mut(source) {
                    None => Err(CoreError::UnknownNode(source)),
                    Some(node) if node.features.is_empty() => {
                        scratch.out.push(item);
                        Ok(())
                    }
                    Some(node) => {
                        let now = self.now;
                        let out = &mut scratch.out;
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            produce_features(node, item, now, out)
                        }));
                        match caught {
                            Ok(r) => r,
                            Err(payload) => Err(CoreError::ComponentFailure {
                                component: self.node_name(source),
                                reason: format!("panic: {}", panic_message(payload.as_ref())),
                            }),
                        }
                    }
                };
                self.finish_unit(source, unit, &mut scratch.out, &mut queue)?;
                // One panic fence around the whole drain instead of one
                // per unit: `current` names the node whose unit is in
                // flight, so a caught unwind is attributed and settled
                // exactly as the per-unit fence in
                // [`run_entry_inline`](Self::run_entry_inline) would —
                // the unit's partial emissions still route, the fault
                // policy still applies, and the drain resumes.
                let mut current = source;
                loop {
                    let caught = {
                        let (cur, q, s) = (&mut current, &mut queue, &mut scratch);
                        catch_unwind(AssertUnwindSafe(|| -> Result<(), CoreError> {
                            while let Some((node, port, item)) = q.pop_front() {
                                if self.health.is_quarantined(node, self.now) {
                                    continue;
                                }
                                *cur = node;
                                let unit = match self.graph.node_mut(node) {
                                    None => Err(CoreError::UnknownNode(node)),
                                    Some(n) => {
                                        input_unit(n, port, item, self.now, &mut s.out, &mut s.emit, self.arena.as_deref_mut())
                                    }
                                };
                                self.finish_unit(node, unit, &mut s.out, q)?;
                            }
                            Ok(())
                        }))
                    };
                    match caught {
                        Ok(r) => {
                            r?;
                            break;
                        }
                        Err(payload) => {
                            let err = CoreError::ComponentFailure {
                                component: self.node_name(current),
                                reason: format!("panic: {}", panic_message(payload.as_ref())),
                            };
                            self.finish_unit(current, Err(err), &mut scratch.out, &mut queue)?;
                        }
                    }
                }
            }
            ingested += 1;
            self.now += tick;
            self.end_step();
        }
        Ok(ingested)
    }

    /// Runs a wave of units over pairwise-distinct nodes on `workers`
    /// scoped threads, then returns each unit's outcome in wave order.
    /// Only the node-local units run in parallel; all routing and health
    /// bookkeeping stays with the caller, in wave order.
    fn run_wave_parallel(
        &mut self,
        wave: Vec<(NodeId, Task)>,
        workers: usize,
    ) -> Vec<(NodeId, Result<(), CoreError>, Vec<DataItem>)> {
        let now = self.now;
        let ids: BTreeSet<NodeId> = wave.iter().map(|(id, _)| *id).collect();
        let mut by_id: BTreeMap<NodeId, &mut Node> = self
            .graph
            .nodes_iter_mut()
            .filter(|(id, _)| ids.contains(id))
            .map(|(id, node)| (*id, node))
            .collect();
        let mut cells: Vec<Cell<'_>> = wave
            .into_iter()
            .map(|(id, task)| {
                let node = by_id.remove(&id);
                let name = node
                    .as_ref()
                    .map(|n| n.descriptor.name.clone())
                    .unwrap_or_else(|| format!("{id:?}"));
                Cell {
                    id,
                    name,
                    node,
                    task: Some(task),
                    out: Vec::new(),
                    result: Ok(()),
                }
            })
            .collect();
        let per_worker = cells.len().div_ceil(workers.max(1));
        std::thread::scope(|scope| {
            for chunk in cells.chunks_mut(per_worker.max(1)) {
                scope.spawn(move || {
                    for cell in chunk {
                        run_cell(cell, now);
                    }
                });
            }
        });
        cells.into_iter().map(|c| (c.id, c.result, c.out)).collect()
    }
}

// ---------------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------------

/// The historical engine, made explicit: sources tick in id order, the
/// queue drains strictly FIFO, one node at a time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sequential;

impl Executor for Sequential {
    fn mode(&self) -> ExecMode {
        ExecMode::Sequential
    }

    fn step(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        pending: Vec<(NodeId, DataItem)>,
    ) -> Result<(), CoreError> {
        let mut queue = RunQueue::default();
        ctx.drain_prelude(pending, &mut queue)?;
        ctx.run_sequential(&mut queue)?;
        ctx.end_step();
        Ok(())
    }

    fn step_batch(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        mut pending: Vec<(NodeId, DataItem)>,
        steps: u64,
        tick: SimDuration,
    ) -> Result<(), CoreError> {
        // Hoisted across the whole batch: the source list (structure
        // cannot change mid-batch), the FIFO queue and the per-unit
        // routing scratch. The inner loop then allocates nothing of its
        // own — per-item cost is the unit itself plus ring pushes.
        let sources = ctx.graph.sources();
        let mut queue = RunQueue::default();
        let mut scratch = Scratch::default();
        for _ in 0..steps {
            ctx.drain_prelude(std::mem::take(&mut pending), &mut queue)?;
            ctx.run_sequential_from(&sources, &mut queue, &mut scratch)?;
            ctx.now += tick;
            ctx.end_step();
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// LevelParallel
// ---------------------------------------------------------------------

/// Runs independent nodes of each FIFO wave on scoped worker threads.
///
/// A *wave* is the longest prefix of the item queue whose entries
/// address pairwise-distinct nodes. Because graph levels never place a
/// node and its (transitive) producer in one wave prefix — an entry only
/// enters the queue after its producer routed it — wave members are
/// mutually independent and their node-local units can run concurrently.
/// All routing and all health bookkeeping happen serially in wave order,
/// so every externally observable result matches [`Sequential`].
///
/// Cheap graphs stay cheap: with one worker, a single-entry wave, or a
/// linear pipeline (topological level width 1) the executor runs the
/// plain sequential path without spawning anything — this bounds the
/// overhead on graphs that cannot benefit.
#[derive(Debug, Clone, Copy)]
pub struct LevelParallel {
    /// Worker-thread cap, resolved at construction. Probing
    /// `available_parallelism` is *not* free on Linux (it re-reads the
    /// cgroup quota files), so it must never sit on the per-step path.
    workers: usize,
}

impl Default for LevelParallel {
    fn default() -> Self {
        LevelParallel::new()
    }
}

impl LevelParallel {
    /// A level-parallel executor sized to the machine.
    pub fn new() -> Self {
        LevelParallel::with_workers(0)
    }

    /// Caps the worker-thread count (0 = all available cores).
    pub fn with_workers(workers: usize) -> Self {
        let workers = if workers > 0 {
            workers
        } else {
            machine_parallelism()
        };
        LevelParallel { workers }
    }
}

/// The machine's effective core count: `available_parallelism`, which
/// honours cgroup CPU quotas and affinity masks, falling back to 1 when
/// the probe fails. Probing is *not* free on Linux (it re-reads the
/// cgroup quota files), so callers must resolve once at construction —
/// never on a per-step or per-round path. Shared by
/// [`LevelParallel::with_workers`], the fleet's work-stealing scheduler
/// ([`crate::fleet::FleetScheduler`]) and benchmark metadata.
pub fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl LevelParallel {
    /// Drains one step's queue to quiescence: wave extraction, parallel
    /// units, serial routing. Shared by [`Executor::step`] and
    /// [`Executor::step_batch`].
    fn drain_waves(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        queue: &mut RunQueue,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        let workers = self.workers;
        // A linear process or a single worker cannot win anything from
        // scheduling — take the zero-overhead path.
        if workers <= 1 || ctx.graph.level_width() <= 1 {
            let sources = ctx.graph.sources();
            return ctx.run_sequential_from(&sources, queue, scratch);
        }

        // Source phase: quarantine-filter serially in id order, tick the
        // survivors in parallel, then route + settle in id order.
        let mut live_sources = Vec::new();
        for src in ctx.graph.sources() {
            if !ctx.health.is_quarantined(src, ctx.now) {
                live_sources.push(src);
            }
        }
        if live_sources.len() <= 1 {
            for src in live_sources {
                ctx.run_source_inline(src, queue, scratch)?;
            }
        } else {
            let wave = live_sources
                .into_iter()
                .map(|id| (id, Task::Tick))
                .collect();
            for (id, unit, mut out) in ctx.run_wave_parallel(wave, workers) {
                ctx.finish_unit(id, unit, &mut out, queue)?;
            }
        }

        // Queue phase: repeatedly take the longest distinct-node prefix
        // of the queue as a wave. Per-node delivery order and routing
        // order stay exactly FIFO.
        while !queue.is_empty() {
            let mut wave: Vec<Entry> = Vec::new();
            let mut in_wave: BTreeSet<NodeId> = BTreeSet::new();
            while let Some((node, _, _)) = queue.front() {
                if in_wave.contains(node) {
                    break;
                }
                let (node, port, item) = queue.pop_front().expect("front checked");
                // Items addressed to a quarantined node are dropped, as
                // the sequential drain does at pop time.
                if ctx.health.is_quarantined(node, ctx.now) {
                    continue;
                }
                in_wave.insert(node);
                wave.push((node, port, item));
            }
            if wave.len() <= 1 {
                if let Some((node, port, item)) = wave.pop() {
                    ctx.run_entry_inline(node, port, item, queue, scratch)?;
                }
                continue;
            }
            let tasks = wave
                .into_iter()
                .map(|(id, port, item)| (id, Task::Input(port, item)))
                .collect();
            for (id, unit, mut out) in ctx.run_wave_parallel(tasks, workers) {
                ctx.finish_unit(id, unit, &mut out, queue)?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// PermutedParallel — the schedule-permutation sanitizer
// ---------------------------------------------------------------------

/// A loom-lite *schedule-permutation* executor: forms exactly the waves
/// [`LevelParallel`] would, but runs each wave's node-local units
/// serially in a seeded pseudo-random order instead of concurrently,
/// while routing and health settlement stay in original wave order.
///
/// [`LevelParallel`]'s determinism contract rests on wave members
/// commuting — no shared state between same-wave components (what the
/// analysis layer's P017 lint checks statically). This executor turns
/// that assumption into something *testable*: for an interference-free
/// graph every seed yields byte-identical channel trees, sink
/// deliveries and health outcomes (unit order between independent nodes
/// is unobservable); a graph whose same-wave components do share state
/// diverges across seeds deterministically — no thread-timing luck
/// required, unlike racing real workers. `tests/schedule_permutation.rs`
/// runs both directions against the P017 lint.
///
/// This is a sanitizer, not a production scheduler: units run serially,
/// so it buys adversarial schedule coverage, not wall-clock.
#[derive(Debug, Clone, Copy)]
pub struct PermutedParallel {
    /// splitmix64 state driving the per-wave Fisher–Yates shuffle.
    rng: u64,
    /// Waves with ≥ 2 members seen so far — i.e. how many shuffles the
    /// run actually exercised. A permutation test asserting on a graph
    /// that never forms a multi-entry wave proves nothing; suites check
    /// this counter to keep themselves honest.
    permuted_waves: u64,
}

impl PermutedParallel {
    /// A permutation executor driven by `seed`. Equal seeds replay the
    /// exact same schedule; different seeds explore different unit
    /// orders.
    pub fn with_seed(seed: u64) -> Self {
        PermutedParallel {
            // splitmix64 tolerates any seed, including 0.
            rng: seed,
            permuted_waves: 0,
        }
    }

    /// How many multi-entry waves (actual shuffles) ran so far.
    pub fn permuted_waves(&self) -> u64 {
        self.permuted_waves
    }

    /// splitmix64 — tiny, seedable, and plenty for shuffling.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Seeded Fisher–Yates over the wave's unit indices.
    fn shuffled_order(&mut self, len: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..len).collect();
        for i in (1..len).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        order
    }

    /// Runs a wave's units serially in shuffled order, returning the
    /// outcomes in *original* wave order (the caller routes and settles
    /// in that order, exactly like [`EngineCtx::run_wave_parallel`]).
    fn run_wave_permuted(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        wave: Vec<(NodeId, Task)>,
    ) -> Vec<(NodeId, Result<(), CoreError>, Vec<DataItem>)> {
        if wave.len() > 1 {
            self.permuted_waves += 1;
        }
        let order = self.shuffled_order(wave.len());
        let mut slots: Vec<(NodeId, Option<Task>)> = wave
            .into_iter()
            .map(|(id, task)| (id, Some(task)))
            .collect();
        let mut results: Vec<Option<UnitOutcome>> = slots.iter().map(|_| None).collect();
        let now = ctx.now;
        for i in order {
            let (id, task) = (slots[i].0, slots[i].1.take());
            let name = ctx.node_name(id);
            let mut out = Vec::new();
            let unit = match ctx.graph.node_mut(id) {
                None => Err(CoreError::UnknownNode(id)),
                Some(node) => {
                    let mut emit = Vec::new();
                    let caught = catch_unwind(AssertUnwindSafe(|| match task {
                        Some(Task::Tick) | None => tick_unit(node, now, &mut out, &mut emit, None),
                        Some(Task::Input(port, item)) => {
                            input_unit(node, port, item, now, &mut out, &mut emit, None)
                        }
                    }));
                    match caught {
                        Ok(r) => r,
                        Err(payload) => Err(CoreError::ComponentFailure {
                            component: name,
                            reason: format!("panic: {}", panic_message(payload.as_ref())),
                        }),
                    }
                }
            };
            results[i] = Some((unit, out));
        }
        slots
            .into_iter()
            .zip(results)
            .map(|((id, _), r)| {
                let (unit, out) = r.expect("every wave index ran exactly once");
                (id, unit, out)
            })
            .collect()
    }

    /// Wave extraction identical to [`LevelParallel::drain_waves`], with
    /// the parallel unit phase replaced by the permuted serial one.
    fn drain_waves_permuted(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        queue: &mut RunQueue,
        scratch: &mut Scratch,
    ) -> Result<(), CoreError> {
        // Source phase: quarantine-filter serially in id order, run the
        // survivors' ticks in permuted order, route + settle in id order.
        let mut live_sources = Vec::new();
        for src in ctx.graph.sources() {
            if !ctx.health.is_quarantined(src, ctx.now) {
                live_sources.push(src);
            }
        }
        if live_sources.len() <= 1 {
            for src in live_sources {
                ctx.run_source_inline(src, queue, scratch)?;
            }
        } else {
            let wave = live_sources
                .into_iter()
                .map(|id| (id, Task::Tick))
                .collect();
            for (id, unit, mut out) in self.run_wave_permuted(ctx, wave) {
                ctx.finish_unit(id, unit, &mut out, queue)?;
            }
        }

        // Queue phase: longest distinct-node prefix waves, exactly as
        // LevelParallel forms them.
        while !queue.is_empty() {
            let mut wave: Vec<Entry> = Vec::new();
            let mut in_wave: BTreeSet<NodeId> = BTreeSet::new();
            while let Some((node, _, _)) = queue.front() {
                if in_wave.contains(node) {
                    break;
                }
                let (node, port, item) = queue.pop_front().expect("front checked");
                if ctx.health.is_quarantined(node, ctx.now) {
                    continue;
                }
                in_wave.insert(node);
                wave.push((node, port, item));
            }
            if wave.len() <= 1 {
                if let Some((node, port, item)) = wave.pop() {
                    ctx.run_entry_inline(node, port, item, queue, scratch)?;
                }
                continue;
            }
            let tasks = wave
                .into_iter()
                .map(|(id, port, item)| (id, Task::Input(port, item)))
                .collect();
            for (id, unit, mut out) in self.run_wave_permuted(ctx, tasks) {
                ctx.finish_unit(id, unit, &mut out, queue)?;
            }
        }
        Ok(())
    }
}

impl Executor for PermutedParallel {
    fn mode(&self) -> ExecMode {
        ExecMode::LevelParallel
    }

    fn step(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        pending: Vec<(NodeId, DataItem)>,
    ) -> Result<(), CoreError> {
        let mut queue = RunQueue::default();
        let mut scratch = Scratch::default();
        ctx.drain_prelude(pending, &mut queue)?;
        self.drain_waves_permuted(ctx, &mut queue, &mut scratch)?;
        ctx.end_step();
        Ok(())
    }

    fn step_batch(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        mut pending: Vec<(NodeId, DataItem)>,
        steps: u64,
        tick: SimDuration,
    ) -> Result<(), CoreError> {
        let mut queue = RunQueue::default();
        let mut scratch = Scratch::default();
        for _ in 0..steps {
            ctx.drain_prelude(std::mem::take(&mut pending), &mut queue)?;
            self.drain_waves_permuted(ctx, &mut queue, &mut scratch)?;
            ctx.now += tick;
            ctx.end_step();
        }
        Ok(())
    }
}

impl Executor for LevelParallel {
    fn mode(&self) -> ExecMode {
        ExecMode::LevelParallel
    }

    fn step(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        pending: Vec<(NodeId, DataItem)>,
    ) -> Result<(), CoreError> {
        let mut queue = RunQueue::default();
        let mut scratch = Scratch::default();
        ctx.drain_prelude(pending, &mut queue)?;
        self.drain_waves(ctx, &mut queue, &mut scratch)?;
        ctx.end_step();
        Ok(())
    }

    fn step_batch(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        mut pending: Vec<(NodeId, DataItem)>,
        steps: u64,
        tick: SimDuration,
    ) -> Result<(), CoreError> {
        let mut queue = RunQueue::default();
        let mut scratch = Scratch::default();
        for _ in 0..steps {
            ctx.drain_prelude(std::mem::take(&mut pending), &mut queue)?;
            self.drain_waves(ctx, &mut queue, &mut scratch)?;
            ctx.now += tick;
            ctx.end_step();
        }
        Ok(())
    }
}
