//! `perpos-lint` — lint a PerPos graph configuration from the command
//! line.
//!
//! ```text
//! perpos-lint <config.json> [--catalog <catalog.json>] [--format human|json]
//! perpos-lint <config.json> [--catalog <catalog.json>] --facts json
//! perpos-lint synth --catalog <catalog.json> [criteria...]
//! perpos-lint --explain PNNN
//! ```
//!
//! Exit status: `0` when no error-severity findings were reported
//! (warnings allowed; for `synth`: a satisfying pipeline exists), `1`
//! when the configuration has errors (for `synth`: the goal is
//! infeasible), `2` on usage or I/O problems.

use std::process::ExitCode;

use perpos_analysis::dataflow::FlowGraph;
use perpos_analysis::{
    analyze_config, facts_json, infer_facts, synthesize, Code, SynthesisGoal, TypeCatalog,
};
use perpos_core::assembly::GraphConfig;

enum Format {
    Human,
    Json,
}

struct Args {
    config_path: String,
    catalog_path: Option<String>,
    format: Format,
    facts: bool,
}

const USAGE: &str =
    "usage: perpos-lint <config.json> [--catalog <catalog.json>] [--format human|json]
       perpos-lint <config.json> [--catalog <catalog.json>] --facts json
       perpos-lint synth --catalog <catalog.json> [criteria] [--emit doc|config]
       perpos-lint --explain <PNNN|all>

Lints a PerPos GraphConfig JSON file with the perpos-analysis passes
(P001-P019). Without --catalog only the built-in \"application\" type is
known; pass a catalog (see perpos_analysis::TypeCatalog) describing the
component types the configuration references.

--facts json  print the inferred dataflow facts (coordinate frames,
              accuracy and rate intervals, privacy taint) per node and
              per edge instead of the diagnostic report; the exit status
              still reflects the analysis
--explain     print the long-form description, an example trigger and
              the suggested fix for a diagnostic code (or all of them)

synth         synthesize pipelines from the catalog that satisfy the
              given criteria; every emitted pipeline passes the full
              lint pass with zero findings. Criteria:
                --output-kind <kind>        default position.wgs84
                --accuracy-m <metres>       required best accuracy
                --max-rate-hz <hz>          sink delivery rate bound
                --power-mw <milliwatts>     total power budget
                --frame <frame>             required coordinate frame
                --no-identifiable-at-sink   privacy constraint (taint)
                --max-components <n>        search depth, default 8
                --candidates <n>            ranked results, default 3
              Output: --emit doc (default) prints the versioned
              synthesis document; --emit config prints the top-ranked
              GraphConfig only, ready to pipe back into perpos-lint.
              --format human prints a readable ranking instead.
              When the goal is infeasible, prints the binding
              constraint (P015) and exits 1.

exit status: 0 = no errors / goal feasible, 1 = errors found / goal
infeasible, 2 = usage or I/O error";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut config_path = None;
    let mut catalog_path = None;
    let mut format = Format::Human;
    let mut facts = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--catalog" => {
                catalog_path = Some(it.next().ok_or("--catalog needs a file argument")?.clone());
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    Some(other) => return Err(format!("unknown format {other:?}")),
                    None => return Err("--format needs human|json".to_string()),
                };
            }
            "--facts" => match it.next().map(String::as_str) {
                Some("json") => facts = true,
                Some(other) => return Err(format!("unknown facts format {other:?}")),
                None => return Err("--facts needs json".to_string()),
            },
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}"));
            }
            other => {
                if config_path.replace(other.to_string()).is_some() {
                    return Err("more than one config file given".to_string());
                }
            }
        }
    }
    Ok(Args {
        config_path: config_path.ok_or("missing config file argument")?,
        catalog_path,
        format,
        facts,
    })
}

fn explain_one(code: Code) -> String {
    let e = code.explain();
    format!(
        "{code}: {}\n\n  {}\n\n  example: {}\n  fix:     {}\n",
        code.summary(),
        e.detail,
        e.example,
        e.fix
    )
}

fn run_explain(argument: Option<&String>) -> Result<(), String> {
    let argument = argument.ok_or("--explain needs a code (PNNN) or \"all\"")?;
    if argument == "all" {
        let rendered: Vec<String> = Code::ALL.iter().map(|c| explain_one(*c)).collect();
        print!("{}", rendered.join("\n"));
        return Ok(());
    }
    let code = Code::parse(argument).ok_or_else(|| {
        format!(
            "unknown diagnostic code {argument:?}; known codes: {}",
            Code::ALL.map(|c| c.as_str()).join(", ")
        )
    })?;
    print!("{}", explain_one(code));
    Ok(())
}

enum SynthEmit {
    Doc,
    Config,
}

struct SynthArgs {
    catalog_path: String,
    goal: SynthesisGoal,
    emit: SynthEmit,
    format: Format,
}

fn parse_f64(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<f64, String> {
    let raw = it.next().ok_or_else(|| format!("{flag} needs a number"))?;
    raw.parse::<f64>()
        .map_err(|_| format!("{flag} needs a number, got {raw:?}"))
}

fn parse_u64(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<u64, String> {
    let raw = it.next().ok_or_else(|| format!("{flag} needs a count"))?;
    raw.parse::<u64>()
        .map_err(|_| format!("{flag} needs a count, got {raw:?}"))
}

fn parse_synth_args(argv: &[String]) -> Result<SynthArgs, String> {
    let mut catalog_path = None;
    let mut goal = SynthesisGoal::new();
    let mut emit = SynthEmit::Doc;
    let mut format = Format::Json;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--catalog" => {
                catalog_path = Some(it.next().ok_or("--catalog needs a file argument")?.clone());
            }
            "--output-kind" => {
                goal.output_kind = Some(it.next().ok_or("--output-kind needs a kind")?.clone());
            }
            "--accuracy-m" => goal.accuracy_m = Some(parse_f64(&mut it, "--accuracy-m")?),
            "--max-rate-hz" => goal.max_rate_hz = Some(parse_f64(&mut it, "--max-rate-hz")?),
            "--power-mw" => goal.power_budget_mw = Some(parse_f64(&mut it, "--power-mw")?),
            "--frame" => {
                goal.frame = Some(it.next().ok_or("--frame needs a frame name")?.clone());
            }
            "--no-identifiable-at-sink" => goal.no_identifiable_at_sink = true,
            "--max-components" => {
                goal.max_components = Some(parse_u64(&mut it, "--max-components")?);
            }
            "--candidates" => goal.candidates = Some(parse_u64(&mut it, "--candidates")?),
            "--emit" => {
                emit = match it.next().map(String::as_str) {
                    Some("doc") => SynthEmit::Doc,
                    Some("config") => SynthEmit::Config,
                    Some(other) => return Err(format!("unknown emit mode {other:?}")),
                    None => return Err("--emit needs doc|config".to_string()),
                };
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    Some(other) => return Err(format!("unknown format {other:?}")),
                    None => return Err("--format needs human|json".to_string()),
                };
            }
            other => return Err(format!("unknown synth argument {other:?}")),
        }
    }
    Ok(SynthArgs {
        catalog_path: catalog_path.ok_or("synth needs --catalog <catalog.json>")?,
        goal,
        emit,
        format,
    })
}

/// Runs the `synth` subcommand; `Ok(true)` means the goal is feasible.
fn run_synth(args: &SynthArgs) -> Result<bool, String> {
    let text = std::fs::read_to_string(&args.catalog_path)
        .map_err(|e| format!("cannot read {:?}: {e}", args.catalog_path))?;
    let catalog = serde_json::from_str::<TypeCatalog>(&text)
        .map_err(|e| format!("{:?} is not a TypeCatalog: {e}", args.catalog_path))?;

    let result = synthesize(&args.goal, &catalog);
    match args.emit {
        SynthEmit::Config => {
            let Some(best) = result.candidates.first() else {
                eprint!("{}", result.report().render_human());
                return Ok(false);
            };
            let json = serde_json::to_string_pretty(&best.config)
                .map_err(|e| format!("cannot render config: {e}"))?;
            println!("{json}");
        }
        SynthEmit::Doc => match args.format {
            Format::Json => println!("{}", result.doc_json()),
            Format::Human => {
                println!("goal: {}", args.goal.summary());
                if result.feasible {
                    let fmt = |v: Option<f64>| v.map_or("?".to_string(), |x| x.to_string());
                    for c in &result.candidates {
                        let chain: Vec<&str> = c
                            .config
                            .components
                            .iter()
                            .map(|comp| comp.name.as_str())
                            .collect();
                        println!(
                            "#{} {} (accuracy {}..{} m, rate {} Hz, power {} mW)",
                            c.rank,
                            chain.join(" -> "),
                            fmt(c.accuracy_best_m),
                            fmt(c.accuracy_worst_m),
                            fmt(c.rate_hz),
                            fmt(c.power_mw),
                        );
                    }
                } else {
                    print!("{}", result.report().render_human());
                }
            }
        },
    }
    Ok(result.feasible)
}

fn run(args: &Args) -> Result<bool, String> {
    let config_text = std::fs::read_to_string(&args.config_path)
        .map_err(|e| format!("cannot read {:?}: {e}", args.config_path))?;
    let config: GraphConfig = serde_json::from_str(&config_text)
        .map_err(|e| format!("{:?} is not a GraphConfig: {e}", args.config_path))?;

    let catalog = match &args.catalog_path {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
            serde_json::from_str::<TypeCatalog>(&text)
                .map_err(|e| format!("{path:?} is not a TypeCatalog: {e}"))?
        }
        None => TypeCatalog::new(),
    };

    let report = analyze_config(&config, &catalog);
    if args.facts {
        let flow = FlowGraph::from_config(&config, &catalog);
        let facts = infer_facts(&flow);
        println!("{}", facts_json(&flow, &facts));
    } else {
        match args.format {
            Format::Human => print!("{}", report.render_human()),
            Format::Json => println!("{}", report.render_json()),
        }
    }
    Ok(report.has_errors())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // --explain is a standalone subcommand: no config file involved.
    if argv.first().map(String::as_str) == Some("--explain") {
        return match run_explain(argv.get(1)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}\n{USAGE}");
                ExitCode::from(2)
            }
        };
    }
    // synth is a standalone subcommand: it takes a catalog, not a config.
    if argv.first().map(String::as_str) == Some("synth") {
        let args = match parse_synth_args(&argv[1..]) {
            Ok(args) => args,
            Err(msg) => {
                if msg.is_empty() {
                    println!("{USAGE}");
                    return ExitCode::SUCCESS;
                }
                eprintln!("error: {msg}\n{USAGE}");
                return ExitCode::from(2);
            }
        };
        return match run_synth(&args) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(1),
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::from(2)
            }
        };
    }
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::from(1),
        Ok(false) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
