//! The fleet pool: builds the shards, drives them, and aggregates their
//! supervision counters behind a reflective surface.

use std::collections::BTreeMap;

use crate::data::Value;
use crate::fleet::shard::{InstanceFactory, Shard, ShardStats};
use crate::fleet::watchdog::Watchdog;
use crate::{CoreError, Middleware, SimDuration};

/// Sizing and supervision knobs of a [`FleetPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of shards the instances are partitioned into.
    pub shards: usize,
    /// Total middleware instances across all shards.
    pub instances: usize,
    /// Checkpoint cadence in shard rounds: every instance refreshes its
    /// [`Snapshot`](crate::fleet::Snapshot) at this interval, bounding
    /// how far a restart can rewind.
    pub checkpoint_every: u64,
    /// Instance faults within [`FleetConfig::shard_fault_window`] rounds
    /// that quarantine the whole shard.
    pub shard_fault_threshold: u32,
    /// Window, in shard rounds, over which faults count towards the
    /// threshold.
    pub shard_fault_window: u64,
    /// Base quarantine pause in shard rounds; consecutive trips double
    /// it (with seeded jitter) until a clean round resets the ladder.
    pub shard_backoff: u64,
    /// Seed feeding each shard watchdog's backoff jitter.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            instances: 64,
            checkpoint_every: 8,
            shard_fault_threshold: 16,
            shard_fault_window: 16,
            shard_backoff: 4,
            seed: 0xf1ee7,
        }
    }
}

/// Aggregated supervision counters of a whole fleet, with the per-shard
/// breakdown preserved.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Per-shard counters, in shard order.
    pub shards: Vec<ShardStats>,
}

impl FleetStats {
    /// Total instances across shards.
    pub fn instances(&self) -> u64 {
        self.shards.iter().map(|s| s.instances).sum()
    }

    /// Total instance-steps completed.
    pub fn live_steps(&self) -> u64 {
        self.shards.iter().map(|s| s.live_steps).sum()
    }

    /// Total instance-steps lost to faults or quarantine.
    pub fn missed_steps(&self) -> u64 {
        self.shards.iter().map(|s| s.missed_steps).sum()
    }

    /// Total instance faults that escaped in-instance containment.
    pub fn instance_faults(&self) -> u64 {
        self.shards.iter().map(|s| s.instance_faults).sum()
    }

    /// Total restarts (checkpoint-recovered plus cold).
    pub fn restarts(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.restarts + s.cold_restarts)
            .sum()
    }

    /// Total shard quarantines.
    pub fn quarantines(&self) -> u64 {
        self.shards.iter().map(|s| s.quarantines).sum()
    }

    /// Fraction of attempted instance-steps that completed, across the
    /// whole fleet (`1.0` for an idle fleet).
    pub fn availability(&self) -> f64 {
        let live = self.live_steps();
        let attempted = live + self.missed_steps();
        if attempted == 0 {
            1.0
        } else {
            live as f64 / attempted as f64
        }
    }

    /// Mean steps-to-healthy over all recoveries (`0.0` without any).
    pub fn mean_recovery_steps(&self) -> f64 {
        let restarts = self.restarts();
        if restarts == 0 {
            0.0
        } else {
            let total: u64 = self.shards.iter().map(|s| s.recovery_steps).sum();
            total as f64 / restarts as f64
        }
    }

    /// Renders fleet totals plus the per-shard breakdown as a
    /// reflective [`Value`] map — the shape `invoke("fleet_stats")`
    /// serves.
    pub fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("instances".into(), Value::Int(self.instances() as i64));
        map.insert("live_steps".into(), Value::Int(self.live_steps() as i64));
        map.insert(
            "missed_steps".into(),
            Value::Int(self.missed_steps() as i64),
        );
        map.insert(
            "instance_faults".into(),
            Value::Int(self.instance_faults() as i64),
        );
        map.insert("restarts".into(), Value::Int(self.restarts() as i64));
        map.insert("quarantines".into(), Value::Int(self.quarantines() as i64));
        map.insert("availability".into(), Value::Float(self.availability()));
        map.insert(
            "mean_recovery_steps".into(),
            Value::Float(self.mean_recovery_steps()),
        );
        map.insert(
            "shards".into(),
            Value::List(self.shards.iter().map(|s| s.to_value()).collect()),
        );
        Value::Map(map)
    }
}

/// A supervised multi-instance engine: owns [`FleetConfig::shards`]
/// shards of factory-built [`Middleware`](crate::Middleware) instances
/// and steps them under the escalation ladder described in the
/// [module docs](crate::fleet).
pub struct FleetPool {
    config: FleetConfig,
    factory: InstanceFactory,
    shards: Vec<Shard>,
}

impl FleetPool {
    /// Builds the fleet: `config.instances` instances partitioned
    /// contiguously over `config.shards` shards, each instance built by
    /// `factory` from its fleet-wide index and checkpointed immediately.
    pub fn new(config: FleetConfig, factory: impl Fn(usize) -> Middleware + 'static) -> Self {
        let factory: InstanceFactory = Box::new(factory);
        let shard_count = config.shards.max(1);
        let per = config.instances / shard_count;
        let extra = config.instances % shard_count;
        let mut shards = Vec::with_capacity(shard_count);
        let mut next = 0usize;
        for s in 0..shard_count {
            let count = per + usize::from(s < extra);
            let watchdog = Watchdog::new(
                config.shard_fault_threshold,
                config.shard_fault_window,
                config.shard_backoff,
                config.seed.wrapping_add(s as u64),
            );
            shards.push(Shard::new(
                s,
                next..next + count,
                &factory,
                config.checkpoint_every,
                watchdog,
            ));
            next += count;
        }
        FleetPool {
            config,
            factory,
            shards,
        }
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The shards, in order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Mutable access to one shard (instance reflection, soak drivers).
    pub fn shard_mut(&mut self, s: usize) -> Option<&mut Shard> {
        self.shards.get_mut(s)
    }

    /// Total live instances.
    pub fn instances(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Steps every shard `rounds` times with `tick` clock advance per
    /// step (shards are independent; they step in order).
    pub fn run(&mut self, rounds: u64, tick: SimDuration) {
        for shard in &mut self.shards {
            shard.run(&self.factory, rounds, tick);
        }
    }

    /// Aggregated supervision counters with per-shard breakdown.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            shards: self.shards.iter().map(|s| s.stats()).collect(),
        }
    }

    /// Fleet-wide availability so far.
    pub fn availability(&self) -> f64 {
        self.stats().availability()
    }

    /// The fleet's reflective surface, mirroring
    /// [`Middleware::invoke`](crate::Middleware::invoke):
    /// `"fleet_stats"` answers with [`FleetStats::to_value`],
    /// `"availability"` with the fleet-wide fraction.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSuchMethod`] for anything else.
    pub fn invoke(&mut self, method: &str, _args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "fleet_stats" => Ok(self.stats().to_value()),
            "availability" => Ok(Value::Float(self.availability())),
            m => Err(CoreError::NoSuchMethod {
                target: "fleet".into(),
                method: m.into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{ComponentCtx, FnSource};
    use crate::data::{kinds, DataItem};
    use crate::prelude::{Component, Criteria};
    use crate::supervision::FaultPolicy;

    /// Fails (uncontained) whenever `tick % period == phase`.
    struct PeriodicFault {
        counter: u64,
        period: u64,
        phase: u64,
    }
    impl Component for PeriodicFault {
        fn descriptor(&self) -> crate::component::ComponentDescriptor {
            crate::component::ComponentDescriptor::source("flaky", vec![kinds::RAW_STRING])
        }
        fn on_input(
            &mut self,
            _p: usize,
            _i: DataItem,
            _c: &mut ComponentCtx<'_>,
        ) -> Result<(), CoreError> {
            Ok(())
        }
        fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
            self.counter += 1;
            if self.period > 0 && self.counter % self.period == self.phase {
                return Err(CoreError::ComponentFailure {
                    component: "flaky".into(),
                    reason: "periodic fault".into(),
                });
            }
            ctx.emit_value(kinds::RAW_STRING, Value::Int(self.counter as i64));
            Ok(())
        }
        fn snapshot_state(&self) -> Option<Value> {
            Some(Value::Int(self.counter as i64))
        }
        fn restore_state(&mut self, state: &Value) {
            if let Some(v) = state.as_i64() {
                self.counter = v as u64;
            }
        }
    }

    /// Faults randomly at `rate` per tick. The RNG is *environmental*:
    /// it is not part of the snapshot, and every incarnation gets a
    /// fresh seed, so a restored instance does not replay the crash —
    /// the shape real chaos has.
    struct RandomFault {
        counter: u64,
        rng: rand::rngs::StdRng,
        rate: f64,
    }
    impl Component for RandomFault {
        fn descriptor(&self) -> crate::component::ComponentDescriptor {
            crate::component::ComponentDescriptor::source("chaotic", vec![kinds::RAW_STRING])
        }
        fn on_input(
            &mut self,
            _p: usize,
            _i: DataItem,
            _c: &mut ComponentCtx<'_>,
        ) -> Result<(), CoreError> {
            Ok(())
        }
        fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
            use rand::Rng;
            self.counter += 1;
            if self.rng.gen::<f64>() < self.rate {
                return Err(CoreError::ComponentFailure {
                    component: "chaotic".into(),
                    reason: "random fault".into(),
                });
            }
            ctx.emit_value(kinds::RAW_STRING, Value::Int(self.counter as i64));
            Ok(())
        }
        fn snapshot_state(&self) -> Option<Value> {
            Some(Value::Int(self.counter as i64))
        }
        fn restore_state(&mut self, state: &Value) {
            if let Some(v) = state.as_i64() {
                self.counter = v as u64;
            }
        }
    }

    fn flaky_factory(rate: f64, seed: u64) -> impl Fn(usize) -> Middleware {
        use rand::SeedableRng;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let incarnations = Arc::new(AtomicU64::new(0));
        move |index| {
            let n = incarnations.fetch_add(1, Ordering::Relaxed);
            let mut mw = Middleware::new();
            let src = mw.add_boxed_component(Box::new(RandomFault {
                counter: 0,
                rng: rand::rngs::StdRng::seed_from_u64(
                    seed ^ (index as u64).wrapping_mul(0x9E37) ^ n.wrapping_mul(0xC0FFEE),
                ),
                rate,
            }));
            let app = mw.application_sink();
            mw.connect(src, app, 0).unwrap();
            mw
        }
    }

    fn healthy_factory() -> impl Fn(usize) -> Middleware {
        |_| {
            let mut mw = Middleware::new();
            let src = mw.add_component(FnSource::new("src", kinds::RAW_STRING, |_| {
                Some(Value::Int(1))
            }));
            let app = mw.application_sink();
            mw.connect(src, app, 0).unwrap();
            mw
        }
    }

    #[test]
    fn healthy_fleet_has_full_availability() {
        let mut pool = FleetPool::new(
            FleetConfig {
                shards: 2,
                instances: 10,
                ..FleetConfig::default()
            },
            healthy_factory(),
        );
        pool.run(20, SimDuration::from_millis(10));
        let stats = pool.stats();
        assert_eq!(pool.instances(), 10);
        assert_eq!(stats.live_steps(), 200);
        assert_eq!(stats.missed_steps(), 0);
        assert_eq!(stats.availability(), 1.0);
        assert_eq!(stats.instance_faults(), 0);
        // Every instance actually delivered every step.
        let p = pool.shards()[0]
            .instance(0)
            .unwrap()
            .location_provider(Criteria::new())
            .unwrap();
        assert_eq!(p.delivered_count(), 20);
    }

    #[test]
    fn faulted_instances_restart_from_checkpoints() {
        let mut pool = FleetPool::new(
            FleetConfig {
                shards: 1,
                instances: 4,
                checkpoint_every: 4,
                shard_fault_threshold: 100, // never quarantine here
                ..FleetConfig::default()
            },
            flaky_factory(0.05, 21),
        );
        pool.run(40, SimDuration::from_millis(10));
        let stats = pool.stats();
        assert!(stats.instance_faults() > 0, "faults were injected");
        assert_eq!(
            stats.restarts(),
            stats.instance_faults(),
            "every fault recovered by a restart"
        );
        assert_eq!(stats.shards[0].cold_restarts, 0, "checkpoints all valid");
        assert!(stats.availability() > 0.7, "most steps still completed");
        assert!(stats.availability() < 1.0, "but faults cost steps");
        assert!(stats.mean_recovery_steps() >= 1.0);
    }

    #[test]
    fn storming_shard_gets_quarantined_and_recovers() {
        // Every instance faults every 4th tick with the same phase: a
        // coordinated storm that must trip the shard watchdog.
        let mut pool = FleetPool::new(
            FleetConfig {
                shards: 1,
                instances: 8,
                checkpoint_every: 2,
                shard_fault_threshold: 8,
                shard_fault_window: 4,
                shard_backoff: 4,
                seed: 11,
            },
            move |_| {
                let mut mw = Middleware::new();
                let src = mw.add_boxed_component(Box::new(PeriodicFault {
                    counter: 0,
                    period: 4,
                    phase: 0,
                }));
                let app = mw.application_sink();
                mw.connect(src, app, 0).unwrap();
                mw
            },
        );
        pool.run(64, SimDuration::from_millis(10));
        let stats = pool.stats();
        assert!(stats.quarantines() > 0, "storm tripped the watchdog");
        assert!(
            stats.missed_steps() > stats.instance_faults(),
            "quarantine skipped whole rounds beyond the faults themselves"
        );
        // The shard is running again at the end (backoffs are finite).
        assert!(stats.live_steps() > 0);
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let build = || {
            FleetPool::new(
                FleetConfig {
                    shards: 3,
                    instances: 12,
                    checkpoint_every: 4,
                    shard_fault_threshold: 4,
                    shard_fault_window: 8,
                    shard_backoff: 4,
                    seed: 99,
                },
                flaky_factory(0.1, 7),
            )
        };
        let mut a = build();
        let mut b = build();
        a.run(50, SimDuration::from_millis(10));
        b.run(50, SimDuration::from_millis(10));
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn fleet_stats_are_reflective() {
        let mut pool = FleetPool::new(
            FleetConfig {
                shards: 2,
                instances: 4,
                ..FleetConfig::default()
            },
            healthy_factory(),
        );
        pool.run(5, SimDuration::from_millis(10));
        let Value::Map(m) = pool.invoke("fleet_stats", &[]).unwrap() else {
            panic!("fleet_stats must be a map");
        };
        assert_eq!(m["instances"], Value::Int(4));
        assert_eq!(m["availability"], Value::Float(1.0));
        let Value::List(shards) = &m["shards"] else {
            panic!("per-shard breakdown present");
        };
        assert_eq!(shards.len(), 2);
        assert!(matches!(
            pool.invoke("nope", &[]),
            Err(CoreError::NoSuchMethod { .. })
        ));
    }

    #[test]
    fn fault_policies_contain_faults_below_the_fleet() {
        // The same flaky component under a DropItem policy never faults
        // the instance, so the fleet sees full availability.
        let mut pool = FleetPool::new(
            FleetConfig {
                shards: 1,
                instances: 4,
                ..FleetConfig::default()
            },
            move |index| {
                let mut mw = Middleware::new();
                let src = mw.add_boxed_component(Box::new(PeriodicFault {
                    counter: 0,
                    period: 5,
                    phase: (index as u64) % 5,
                }));
                let app = mw.application_sink();
                mw.connect(src, app, 0).unwrap();
                mw.set_fault_policy(src, FaultPolicy::DropItem).unwrap();
                mw
            },
        );
        pool.run(30, SimDuration::from_millis(10));
        let stats = pool.stats();
        assert_eq!(stats.instance_faults(), 0);
        assert_eq!(stats.availability(), 1.0);
    }
}
