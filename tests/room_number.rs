//! End-to-end test of the Room Number Application scenario (paper Fig. 1):
//! GPS + WiFi pipelines into one application, with symbolic resolution.

#![allow(clippy::unwrap_used)]
use std::sync::Arc;

use perpos::prelude::*;

fn build_app(
    walk: Trajectory,
) -> (
    Middleware,
    Arc<perpos::model::Building>,
    LocationProvider,
    LocationProvider,
) {
    let building = Arc::new(demo_building());
    let frame = *building.frame();
    let mut mw = Middleware::new();

    let inside = {
        let b = Arc::clone(&building);
        move |p: Point2, _| {
            if b.inside(p, 0) {
                GpsEnvironment::indoor()
            } else {
                GpsEnvironment::open_sky()
            }
        }
    };
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame, walk.clone())
            .with_seed(3)
            .with_environment_fn(inside),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let env = Arc::new(WifiEnvironment::with_ap_per_room(Arc::clone(&building), 0));
    let map = Arc::new(perpos::sensors::RadioMap::build(&env, 1.0));
    let wifi = mw.add_component(WifiScanner::new("WiFi", env, walk).with_seed(5));
    let wifi_pos = mw.add_component(WifiPositioning::new(map, Arc::clone(&building)));
    let resolver = mw.add_component(Resolver::new(Arc::clone(&building)));
    let app = mw.application_sink();
    mw.connect(gps, parser, 0).unwrap();
    mw.connect(parser, interpreter, 0).unwrap();
    mw.connect_to_sink(interpreter, app).unwrap();
    mw.connect(wifi, wifi_pos, 0).unwrap();
    mw.connect(wifi_pos, resolver, 0).unwrap();
    mw.connect_to_sink(resolver, app).unwrap();

    let gps_provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84).source("gps"))
        .unwrap();
    let room_provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_ROOM))
        .unwrap();
    (mw, building, gps_provider, room_provider)
}

#[test]
fn indoor_walk_resolves_to_correct_rooms() {
    // Stand in room R1 (centre 7.5, 2.0).
    let (mut mw, _b, _gps, rooms) = build_app(Trajectory::stationary(Point2::new(7.5, 2.0)));
    mw.run_for(SimDuration::from_secs(30), SimDuration::from_secs(1))
        .unwrap();
    let history = rooms.history();
    assert!(!history.is_empty(), "rooms resolved");
    // The dominant resolved room must be R1.
    let r1 = history
        .iter()
        .filter(|i| i.payload.as_text() == Some("R1"))
        .count();
    assert!(
        r1 * 2 > history.len(),
        "R1 seen {}/{} times",
        r1,
        history.len()
    );
}

#[test]
fn outdoor_positions_track_the_street() {
    let (mut mw, building, gps, _rooms) = build_app(Trajectory::new(
        vec![Point2::new(-60.0, 5.0), Point2::new(-10.0, 5.0)],
        1.4,
    ));
    mw.run_for(SimDuration::from_secs(30), SimDuration::from_secs(1))
        .unwrap();
    let p = gps.last_position().expect("GPS works outdoors");
    let local = building.frame().to_local(p.coord());
    let truth = Point2::new(-60.0 + 30.0 * 1.4, 5.0);
    assert!(local.distance(&truth) < 40.0, "{local} vs truth {truth}");
}

#[test]
fn both_channels_visible_at_pcl() {
    let (mw, ..) = build_app(Trajectory::stationary(Point2::new(7.5, 2.0)));
    let channels = mw.channels();
    assert_eq!(channels.len(), 2);
    let names: Vec<String> = channels.iter().map(|c| c.member_names.join("->")).collect();
    assert!(names.iter().any(|n| n.contains("GPS")), "{names:?}");
    assert!(names.iter().any(|n| n.contains("WiFi")), "{names:?}");
    // Both end at the same application sink.
    let endpoints: Vec<_> = channels.iter().filter_map(|c| c.endpoint).collect();
    assert_eq!(endpoints.len(), 2);
    assert_eq!(endpoints[0].0, endpoints[1].0);
}

#[test]
fn wifi_only_indoors_still_positions() {
    // Deep inside, GPS dies; WiFi keeps the application supplied.
    let (mut mw, _b, _gps, rooms) = build_app(Trajectory::stationary(Point2::new(12.5, 8.5)));
    mw.run_for(SimDuration::from_secs(40), SimDuration::from_secs(1))
        .unwrap();
    assert!(
        rooms.history().len() > 20,
        "WiFi pipeline delivers continuously indoors"
    );
}
