//! Criteria-driven pipeline synthesis, end to end (paper §2.3: the
//! application states criteria, the middleware adapts the positioning
//! process).
//!
//! Instead of hand-wiring a pipeline, this example:
//! 1. probes a [`TypeCatalog`] from the component factories — the same
//!    declarations the graph validates at connect time feed the search,
//! 2. asks the synthesizer for a pipeline meeting *criteria* (accuracy
//!    ≤ 5 m, no identifiable sensor data at the application),
//! 3. instantiates the top-ranked candidate through the re-checked
//!    `instantiate_synthesized` gate, and
//! 4. runs it for 100 logical ticks and reads positions.
//!
//! It also shows the other half of the contract: an impossible goal is
//! answered with the *binding constraint*, not an empty list.
//!
//! Run with: `cargo run --example synthesized_pipeline`

use std::collections::BTreeMap;
use std::sync::Arc;

use perpos::analysis::{gate, synthesize, SynthesisGoal, TypeCatalog};
use perpos::core::assembly::ComponentFactory;
use perpos::prelude::*;
use perpos::sensors::RadioMap;

fn factories() -> BTreeMap<String, ComponentFactory> {
    let building = Arc::new(demo_building());
    let frame = *building.frame();
    let walk = Trajectory::stationary(Point2::new(10.0, 5.25));
    let env = Arc::new(WifiEnvironment::with_ap_per_room(Arc::clone(&building), 0));
    let map = Arc::new(RadioMap::build(&env, 1.0));

    let mut f: BTreeMap<String, ComponentFactory> = BTreeMap::new();
    {
        let walk = walk.clone();
        f.insert(
            "gps".into(),
            Box::new(move || Box::new(GpsSimulator::new("GPS", frame, walk.clone()).with_seed(11))),
        );
    }
    f.insert("parser".into(), Box::new(|| Box::new(Parser::new())));
    f.insert(
        "interpreter".into(),
        Box::new(|| Box::new(Interpreter::new())),
    );
    {
        let env = Arc::clone(&env);
        let walk = walk.clone();
        f.insert(
            "wifi".into(),
            Box::new(move || {
                Box::new(WifiScanner::new("WiFi", Arc::clone(&env), walk.clone()).with_seed(5))
            }),
        );
    }
    f.insert(
        "wifipositioning".into(),
        Box::new(move || {
            Box::new(WifiPositioning::new(
                Arc::clone(&map),
                Arc::clone(&building),
            ))
        }),
    );
    f
}

fn main() -> Result<(), CoreError> {
    let factories = factories();
    // Translucency applied to synthesis: the catalog is probed from the
    // very factories the pipeline will be built from.
    let catalog = TypeCatalog::probe(&factories);

    let goal = SynthesisGoal {
        accuracy_m: Some(5.0),
        no_identifiable_at_sink: true,
        ..SynthesisGoal::default()
    };
    println!("goal: {}", goal.summary());

    let result = synthesize(&goal, &catalog);
    for c in &result.candidates {
        let chain: Vec<&str> = c
            .config
            .components
            .iter()
            .map(|comp| comp.name.as_str())
            .collect();
        let fmt = |v: Option<f64>| v.map_or("?".to_string(), |x| x.to_string());
        println!(
            "  candidate #{}: {}  (accuracy {}..{} m)",
            c.rank,
            chain.join(" -> "),
            fmt(c.accuracy_best_m),
            fmt(c.accuracy_worst_m)
        );
    }
    let best = result
        .candidates
        .first()
        .expect("the probed catalog satisfies the goal");
    let synthesized = best.clone().into_synthesized(&goal);

    // Instantiate through the gate: the middleware re-runs the full lint
    // pass on the synthesized configuration before building anything.
    let mut mw = Middleware::new();
    let check = gate::config_gate(catalog);
    let nodes = mw.instantiate_synthesized(&synthesized, &factories, &check)?;
    println!(
        "instantiated {} nodes from rank-{} pipeline (goal: {})",
        nodes.len(),
        synthesized.rank,
        synthesized.goal
    );

    let provider = mw.location_provider(Criteria::new().kind(kinds::POSITION_WGS84))?;
    mw.step_batch(100, SimDuration::from_millis(500))?;
    println!("steps run       : {}", mw.steps_run());
    match provider.last_position() {
        Some(p) => println!("latest position : {p}"),
        None => println!("latest position : (none yet)"),
    }

    // The impossible version of the same request: the answer names the
    // binding constraint instead of silently returning nothing.
    let impossible = SynthesisGoal {
        accuracy_m: Some(0.1),
        ..SynthesisGoal::default()
    };
    let infeasible = synthesize(&impossible, &TypeCatalog::probe(&factories));
    if let Some(inf) = &infeasible.infeasibility {
        println!("\ninfeasible goal : {}", impossible.summary());
        println!("binding         : {} ({})", inf.constraint, inf.detail);
    }
    Ok(())
}
