//! Deterministic fault injection for supervision experiments.
//!
//! The paper argues that a translucent middleware must keep the
//! positioning process observable and controllable even when individual
//! components misbehave. [`FaultInjector`] is a Component Feature that
//! manufactures that misbehaviour on demand: attached to any producing
//! node, it perturbs the host's output stream with a seeded RNG so that
//! every run of an experiment sees the identical fault schedule.
//!
//! Four fault classes are supported, each with an independent rate:
//!
//! * **errors** — the item is replaced by a `ComponentFailure`, which the
//!   engine routes through the host node's fault policy,
//! * **panics** — the feature panics; under supervision the engine
//!   contains the unwind and treats it as a fault,
//! * **stalls** — the item is silently swallowed ([`FeatureAction::Drop`]),
//!   modelling a sensor that stops reporting,
//! * **garbage** — the payload is replaced with a junk value while the
//!   kind and timestamp survive, modelling corrupt readings,
//! * **stuck** — the item is replaced by the last value the injector
//!   emitted, stale timestamp included, modelling a frozen sensor that
//!   keeps reporting its final reading (silent while nothing has been
//!   emitted yet).
//!
//! Rates are cumulative slices of a single uniform roll per item, so the
//! draw sequence (and therefore the schedule) is independent of which
//! classes are enabled.

use std::any::Any;
use std::sync::Arc;

use parking_lot::Mutex;
use perpos_core::component::MethodSpec;
use perpos_core::feature::{ComponentFeature, FeatureAction, FeatureDescriptor, FeatureHost};
use perpos_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Counts of what the injector has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Items replaced by a component error.
    pub errors: u64,
    /// Panics raised.
    pub panics: u64,
    /// Items silently swallowed.
    pub stalls: u64,
    /// Items with their payload corrupted.
    pub garbage: u64,
    /// Items replaced by the last emitted value (frozen sensor).
    pub stuck: u64,
    /// Items passed through untouched.
    pub passed: u64,
}

impl FaultCounts {
    /// Total faults injected (everything except `passed`).
    pub fn injected(&self) -> u64 {
        self.errors + self.panics + self.stalls + self.garbage + self.stuck
    }
}

/// A Component Feature that injects deterministic, seeded faults into
/// its host's output stream.
///
/// ```
/// use perpos_sensors::FaultInjector;
///
/// let injector = FaultInjector::with_seed(7)
///     .with_error_rate(0.10)
///     .with_garbage_rate(0.05);
/// let handle = injector.handle();
/// // ... attach to a source, run the scenario ...
/// assert_eq!(handle.counts().injected(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: Arc<Mutex<StdRng>>,
    counts: Arc<Mutex<FaultCounts>>,
    /// The most recent item the injector let through (possibly
    /// corrupted), repeated verbatim by the stuck mode.
    last: Arc<Mutex<Option<DataItem>>>,
    error_rate: f64,
    panic_rate: f64,
    stall_rate: f64,
    garbage_rate: f64,
    stuck_rate: f64,
}

impl FaultInjector {
    /// The feature name.
    pub const NAME: &'static str = "FaultInjector";

    /// Creates an injector with the default seed and all rates zero.
    pub fn new() -> Self {
        FaultInjector::with_seed(0xfa17)
    }

    /// Creates an injector seeded with `seed`; all rates start at zero.
    pub fn with_seed(seed: u64) -> Self {
        FaultInjector {
            rng: Arc::new(Mutex::new(StdRng::seed_from_u64(seed))),
            counts: Arc::new(Mutex::new(FaultCounts::default())),
            last: Arc::new(Mutex::new(None)),
            error_rate: 0.0,
            panic_rate: 0.0,
            stall_rate: 0.0,
            garbage_rate: 0.0,
            stuck_rate: 0.0,
        }
    }

    /// Fraction of items replaced by a component error.
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fraction of items on which the feature panics.
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fraction of items silently swallowed.
    pub fn with_stall_rate(mut self, rate: f64) -> Self {
        self.stall_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fraction of items whose payload is replaced with junk.
    pub fn with_garbage_rate(mut self, rate: f64) -> Self {
        self.garbage_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fraction of items replaced by the last emitted value — a frozen
    /// sensor repeating its final reading, stale timestamp and all.
    /// While nothing has been emitted yet the frozen sensor is silent
    /// (the item is dropped); either way the event counts as `stuck`.
    pub fn with_stuck_rate(mut self, rate: f64) -> Self {
        self.stuck_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// A handle sharing this injector's counters; survives attachment.
    pub fn handle(&self) -> FaultInjector {
        self.clone()
    }

    /// The counts so far.
    pub fn counts(&self) -> FaultCounts {
        *self.counts.lock()
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::new()
    }
}

impl ComponentFeature for FaultInjector {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(Self::NAME)
            .method(MethodSpec::new("injectedCount", "() -> int"))
            .method(MethodSpec::new("passedCount", "() -> int"))
    }

    fn on_produce(
        &mut self,
        mut item: DataItem,
        _host: &mut FeatureHost<'_>,
    ) -> Result<FeatureAction, CoreError> {
        // One roll per item; the rates carve up [0, 1) in a fixed order
        // so enabling a class never shifts the others' schedule.
        let roll: f64 = self.rng.lock().gen();
        let mut edge = self.panic_rate;
        if roll < edge {
            self.counts.lock().panics += 1;
            panic!("injected panic ({})", Self::NAME);
        }
        edge += self.error_rate;
        if roll < edge {
            self.counts.lock().errors += 1;
            return Err(CoreError::ComponentFailure {
                component: Self::NAME.into(),
                reason: "injected fault".into(),
            });
        }
        edge += self.stall_rate;
        if roll < edge {
            self.counts.lock().stalls += 1;
            return Ok(FeatureAction::Drop);
        }
        edge += self.garbage_rate;
        if roll < edge {
            self.counts.lock().garbage += 1;
            item.payload = Value::from("\u{fffd}garbage").into();
            *self.last.lock() = Some(item.clone());
            return Ok(FeatureAction::Continue(item));
        }
        edge += self.stuck_rate;
        if roll < edge {
            self.counts.lock().stuck += 1;
            // Frozen sensor: repeat the previous reading verbatim
            // (stale timestamp included); silent before the first one.
            return match self.last.lock().clone() {
                Some(prev) => Ok(FeatureAction::Continue(prev)),
                None => Ok(FeatureAction::Drop),
            };
        }
        self.counts.lock().passed += 1;
        *self.last.lock() = Some(item.clone());
        Ok(FeatureAction::Continue(item))
    }

    fn invoke(
        &mut self,
        method: &str,
        _args: &[Value],
        _host: &mut FeatureHost<'_>,
    ) -> Result<Value, CoreError> {
        match method {
            "injectedCount" => Ok(Value::Int(self.counts().injected() as i64)),
            "passedCount" => Ok(Value::Int(self.counts().passed as i64)),
            other => Err(CoreError::NoSuchMethod {
                target: Self::NAME.into(),
                method: other.into(),
            }),
        }
    }

    fn snapshot_state(&self) -> Option<Value> {
        let mut map = std::collections::BTreeMap::new();
        map.insert(
            "rng".to_string(),
            Value::List(
                self.rng
                    .lock()
                    .state()
                    .iter()
                    .map(|w| Value::Int(*w as i64))
                    .collect(),
            ),
        );
        let c = self.counts();
        map.insert(
            "counts".to_string(),
            Value::List(
                [c.errors, c.panics, c.stalls, c.garbage, c.stuck, c.passed]
                    .iter()
                    .map(|n| Value::Int(*n as i64))
                    .collect(),
            ),
        );
        if let Some(last) = self.last.lock().as_ref() {
            let mut lm = std::collections::BTreeMap::new();
            lm.insert("kind".to_string(), Value::from(last.kind.as_str()));
            lm.insert(
                "ts_us".to_string(),
                Value::Int(last.timestamp.since(SimTime::ZERO).as_micros() as i64),
            );
            lm.insert("payload".to_string(), (*last.payload).clone());
            lm.insert("attrs".to_string(), Value::Map(last.attrs.to_map()));
            map.insert("last".to_string(), Value::Map(lm));
        }
        Some(Value::Map(map))
    }

    fn restore_state(&mut self, state: &Value) {
        let Value::Map(map) = state else { return };
        if let Some(Value::List(words)) = map.get("rng") {
            if words.len() == 4 {
                let mut s = [0u64; 4];
                for (i, w) in words.iter().enumerate() {
                    s[i] = w.as_i64().unwrap_or(0) as u64;
                }
                *self.rng.lock() = StdRng::from_state(s);
            }
        }
        if let Some(Value::List(c)) = map.get("counts") {
            let n = |i: usize| c.get(i).and_then(|v| v.as_i64()).unwrap_or(0) as u64;
            *self.counts.lock() = FaultCounts {
                errors: n(0),
                panics: n(1),
                stalls: n(2),
                garbage: n(3),
                stuck: n(4),
                passed: n(5),
            };
        }
        *self.last.lock() = match map.get("last") {
            Some(Value::Map(lm)) => {
                let kind = lm
                    .get("kind")
                    .and_then(|v| v.as_text())
                    .map(DataKind::new)
                    .unwrap_or(kinds::RAW_STRING);
                let ts = lm.get("ts_us").and_then(|v| v.as_i64()).unwrap_or(0);
                let payload = lm.get("payload").cloned().unwrap_or(Value::Null);
                let mut item = DataItem::new(
                    kind,
                    SimTime::ZERO + SimDuration::from_micros(ts as u64),
                    payload,
                );
                if let Some(Value::Map(am)) = lm.get("attrs") {
                    for (k, v) in am {
                        item.attrs.insert(k.clone(), v.clone());
                    }
                }
                Some(item)
            }
            _ => None,
        };
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_core::component::FnSource;

    fn run(injector: FaultInjector, steps: u32) -> (Middleware, NodeId, LocationProvider) {
        let mut mw = Middleware::new();
        let mut n = 0;
        let src = mw.add_component(FnSource::new("s", kinds::RAW_STRING, move |_| {
            n += 1;
            Some(Value::Int(n))
        }));
        mw.attach_feature(src, injector).unwrap();
        mw.set_fault_policy(src, FaultPolicy::DropItem).unwrap();
        let app = mw.application_sink();
        mw.connect(src, app, 0).unwrap();
        for _ in 0..steps {
            mw.step().unwrap();
            mw.advance_clock(SimDuration::from_millis(100));
        }
        let p = mw.location_provider(Criteria::new()).unwrap();
        (mw, src, p)
    }

    #[test]
    fn zero_rates_pass_everything() {
        let injector = FaultInjector::with_seed(1);
        let handle = injector.handle();
        let (_mw, _src, p) = run(injector, 50);
        assert_eq!(p.delivered_count(), 50);
        assert_eq!(handle.counts().injected(), 0);
        assert_eq!(handle.counts().passed, 50);
    }

    #[test]
    fn error_rate_drops_items_under_supervision() {
        let injector = FaultInjector::with_seed(42).with_error_rate(0.3);
        let handle = injector.handle();
        let (mw, src, p) = run(injector, 100);
        let c = handle.counts();
        assert!(c.errors > 10 && c.errors < 60, "errors = {}", c.errors);
        assert_eq!(p.delivered_count(), c.passed);
        // The host's health reflects every injected error as a fault.
        assert_eq!(mw.node_health(src).faults, c.errors);
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = FaultInjector::with_seed(7).with_error_rate(0.2);
        let ha = a.handle();
        let b = FaultInjector::with_seed(7).with_error_rate(0.2);
        let hb = b.handle();
        run(a, 80);
        run(b, 80);
        assert_eq!(ha.counts(), hb.counts());
        let c = FaultInjector::with_seed(8).with_error_rate(0.2);
        let hc = c.handle();
        run(c, 80);
        assert_ne!(ha.counts(), hc.counts());
    }

    #[test]
    fn stall_and_garbage_shape_the_stream() {
        let injector = FaultInjector::with_seed(3)
            .with_stall_rate(0.25)
            .with_garbage_rate(0.25);
        let handle = injector.handle();
        let (_mw, _src, p) = run(injector, 100);
        let c = handle.counts();
        assert!(c.stalls > 5 && c.garbage > 5);
        // Stalled items vanish; garbage ones arrive with a junk payload.
        assert_eq!(p.delivered_count(), c.passed + c.garbage);
        let junk = p
            .history()
            .iter()
            .filter(|i| matches!(&*i.payload, Value::Text(t) if t.contains("garbage")))
            .count() as u64;
        assert_eq!(junk, c.garbage);
    }

    #[test]
    fn panic_rate_is_contained_by_supervision() {
        let injector = FaultInjector::with_seed(11).with_panic_rate(0.2);
        let handle = injector.handle();
        let (mw, src, _p) = run(injector, 60);
        let c = handle.counts();
        assert!(c.panics > 3, "panics = {}", c.panics);
        let h = mw.node_health(src);
        assert_eq!(h.faults, c.panics);
        assert!(h.last_error.as_deref().unwrap_or("").contains("panic"));
    }

    #[test]
    fn stuck_mode_repeats_the_last_reading() {
        let injector = FaultInjector::with_seed(13).with_stuck_rate(0.3);
        let handle = injector.handle();
        let (_mw, _src, p) = run(injector, 100);
        let c = handle.counts();
        assert!(c.stuck > 10, "stuck = {}", c.stuck);
        assert_eq!(c.injected(), c.stuck, "only the stuck mode is enabled");
        let history = p.history();
        // Every stuck event after the first emission repeats the
        // previous delivery verbatim — same payload AND timestamp.
        let repeats = history
            .windows(2)
            .filter(|w| w[0].payload == w[1].payload && w[0].timestamp == w[1].timestamp)
            .count() as u64;
        assert!(repeats > 0, "frozen repeats visible in the stream");
        // Nothing is lost outright once a reading exists: deliveries =
        // passes + repeats (stuck before the first pass stays silent).
        assert_eq!(p.delivered_count(), c.passed + repeats);
    }

    /// A counting source whose counter participates in checkpoints —
    /// unlike `FnSource`, whose closure state is opaque to snapshots.
    struct CountingSource(i64);
    impl perpos_core::component::Component for CountingSource {
        fn descriptor(&self) -> perpos_core::component::ComponentDescriptor {
            perpos_core::component::ComponentDescriptor::source("counter", vec![kinds::RAW_STRING])
        }
        fn on_input(
            &mut self,
            _p: usize,
            _i: DataItem,
            _c: &mut perpos_core::component::ComponentCtx<'_>,
        ) -> Result<(), CoreError> {
            Ok(())
        }
        fn on_tick(
            &mut self,
            ctx: &mut perpos_core::component::ComponentCtx<'_>,
        ) -> Result<(), CoreError> {
            self.0 += 1;
            ctx.emit_value(kinds::RAW_STRING, Value::Int(self.0));
            Ok(())
        }
        fn snapshot_state(&self) -> Option<Value> {
            Some(Value::Int(self.0))
        }
        fn restore_state(&mut self, state: &Value) {
            if let Some(v) = state.as_i64() {
                self.0 = v;
            }
        }
    }

    #[test]
    fn injector_state_survives_snapshot_restore() {
        // Two identical pipelines with seeded injectors; snapshot one
        // mid-run, restore into a freshly built copy, and both must
        // produce the identical remaining schedule.
        let build = || {
            let injector = FaultInjector::with_seed(29)
                .with_error_rate(0.2)
                .with_stuck_rate(0.2);
            let handle = injector.handle();
            let mut mw = Middleware::new();
            let src = mw.add_boxed_component(Box::new(CountingSource(0)));
            mw.attach_feature(src, injector).unwrap();
            mw.set_fault_policy(src, FaultPolicy::DropItem).unwrap();
            let app = mw.application_sink();
            mw.connect(src, app, 0).unwrap();
            (mw, handle)
        };
        let step = |mw: &mut Middleware, n: u32| {
            for _ in 0..n {
                mw.step().unwrap();
                mw.advance_clock(SimDuration::from_millis(100));
            }
        };
        let (mut reference, ref_handle) = build();
        step(&mut reference, 60);

        let (mut original, _) = build();
        step(&mut original, 25);
        let snap = original.snapshot();
        let (mut restored, restored_handle) = build();
        restored.restore(&snap).unwrap();
        step(&mut restored, 35);

        assert_eq!(ref_handle.counts(), restored_handle.counts());
        // The positioning layer is an application-side observer and is
        // not checkpointed: the restored sink only saw the post-restore
        // deliveries, which must match the uninterrupted run's tail.
        let ah = reference
            .location_provider(Criteria::new())
            .unwrap()
            .history();
        let bh = restored
            .location_provider(Criteria::new())
            .unwrap()
            .history();
        assert!(!bh.is_empty(), "post-restore steps delivered");
        assert_eq!(ah[ah.len() - bh.len()..], bh[..], "streams byte-identical");
    }

    #[test]
    fn counters_are_reflective() {
        let injector = FaultInjector::with_seed(5).with_error_rate(0.5);
        let mut mw = Middleware::new();
        let mut n = 0;
        let src = mw.add_component(FnSource::new("s", kinds::RAW_STRING, move |_| {
            n += 1;
            Some(Value::Int(n))
        }));
        mw.attach_feature(src, injector).unwrap();
        mw.set_fault_policy(src, FaultPolicy::DropItem).unwrap();
        let app = mw.application_sink();
        mw.connect(src, app, 0).unwrap();
        for _ in 0..40 {
            mw.step().unwrap();
            mw.advance_clock(SimDuration::from_millis(100));
        }
        let injected = mw
            .invoke_feature(src, FaultInjector::NAME, "injectedCount", &[])
            .unwrap();
        let passed = mw
            .invoke_feature(src, FaultInjector::NAME, "passedCount", &[])
            .unwrap();
        match (injected, passed) {
            (Value::Int(i), Value::Int(p)) => assert_eq!(i + p, 40),
            other => panic!("unexpected reflection result {other:?}"),
        }
    }
}
