//! Channel-layer equivalence suite: [`TreePolicy::Lazy`] must be a pure
//! performance knob. Because the lazy path still runs every piece of
//! logical-time bookkeeping (it only skips tree assembly and history
//! pushes while nothing demands them), attaching a Channel Feature or a
//! history subscription *mid-run* must yield byte-identical trees to a
//! process that ran eagerly from the start — under both executors and
//! with injected faults in flight. The suite also pins the companion
//! contracts of this layer: batched stepping equals the manual step
//! loop, drop counters surface through reflection, and the policy
//! round-trips through configuration.

#![allow(clippy::unwrap_used)]
use std::any::Any;
use std::collections::BTreeMap;

use perpos::core::assembly::GraphConfig;
use perpos::core::channel::{
    ChannelFeature, ChannelHost, ChannelId, DataTree, TreePolicy, LEVEL_BUFFER_CAP,
};
use perpos::core::executor::LevelParallel;
use perpos::prelude::*;

/// Records the rendered form of every tree it observes — the byte-level
/// observable the laziness contract is stated over.
#[derive(Default)]
struct TreeLog {
    rendered: Vec<String>,
}

impl TreeLog {
    const NAME: &'static str = "TreeLog";
}

impl ChannelFeature for TreeLog {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(Self::NAME)
    }
    fn apply(&mut self, tree: &DataTree, _host: &mut ChannelHost<'_>) -> Result<(), CoreError> {
        self.rendered.push(tree.render());
        Ok(())
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn source(name: &str, stride: i64) -> impl Component {
    let mut i = 0i64;
    FnSource::new(name.to_string(), kinds::RAW_STRING, move |_| {
        i += stride;
        Some(Value::Int(i))
    })
}

fn stage(name: &str, mut f: impl FnMut(i64) -> i64 + Send + 'static) -> impl Component {
    FnProcessor::new(
        name.to_string(),
        vec![kinds::RAW_STRING],
        kinds::RAW_STRING,
        move |item| item.payload.as_i64().map(|v| Value::Int(f(v)).into()),
    )
}

/// Everything the laziness contract quantifies over. Materialization
/// counters are deliberately absent: lazy and eager *must* differ there
/// (that difference is the point); outputs, drops, trees, history and
/// health must not.
#[derive(Debug, PartialEq)]
struct Observed {
    trees: Vec<Vec<String>>,
    history: Vec<String>,
    outputs: u64,
    dropped: u64,
    health: Vec<String>,
    steps: u64,
}

/// Runs the shared two-branch scenario in two phases: 100 undemanded
/// steps, then a mid-run [`TreeLog`] attach plus a history subscription,
/// then 100 demanded steps. Under `TreePolicy::Lazy` phase one skips
/// materialization entirely; everything observed in phase two must be
/// byte-identical to an eager run of the same trace.
fn run_scenario(policy: TreePolicy, parallel: bool, faulty: bool) -> Observed {
    run_scenario_with_arena(policy, parallel, faulty, true)
}

fn run_scenario_with_arena(
    policy: TreePolicy,
    parallel: bool,
    faulty: bool,
    arena: bool,
) -> Observed {
    let tick = SimDuration::from_millis(100);
    let mut mw = Middleware::new();
    mw.set_tree_policy(policy);
    mw.set_arena_enabled(arena);
    if parallel {
        // Explicit worker count: the auto default degrades to the
        // sequential path on a single-core machine.
        mw.install_executor(Box::new(LevelParallel::with_workers(4)));
    }
    let src_a = mw.add_component(source("src-a", 1));
    let pa1 = mw.add_component(stage("pa1", |v| v * 2));
    let pa2 = mw.add_component(stage("pa2", |v| v + 3));
    let src_b = mw.add_component(source("src-b", 10));
    let pb1 = mw.add_component(stage("pb1", |v| v - 1));
    let app = mw.application_sink();
    mw.connect(src_a, pa1, 0).unwrap();
    mw.connect(pa1, pa2, 0).unwrap();
    mw.connect_to_sink(pa2, app).unwrap();
    mw.connect(src_b, pb1, 0).unwrap();
    mw.connect_to_sink(pb1, app).unwrap();

    if faulty {
        mw.attach_feature(
            pa1,
            FaultInjector::with_seed(42)
                .with_panic_rate(0.15)
                .with_error_rate(0.15),
        )
        .unwrap();
        mw.set_fault_policy(pa1, FaultPolicy::DropItem).unwrap();
        mw.attach_feature(pb1, FaultInjector::with_seed(7).with_panic_rate(0.3))
            .unwrap();
        mw.set_fault_policy(pb1, FaultPolicy::quarantine_default())
            .unwrap();
    }

    // Phase 1: no features, no subscriptions — nothing demands trees.
    mw.step_batch(100, tick).unwrap();

    // Phase 2: demand flips mid-run.
    let channels: Vec<ChannelId> = mw.channels().iter().map(|c| c.id).collect();
    for &ch in &channels {
        mw.attach_channel_feature(ch, TreeLog::default()).unwrap();
    }
    mw.subscribe_channel_history(channels[0], 16).unwrap();
    mw.step_batch(100, tick).unwrap();

    let trees = channels
        .iter()
        .map(|&ch| {
            mw.with_channel_feature_mut(ch, TreeLog::NAME, |log: &mut TreeLog| log.rendered.clone())
                .unwrap()
        })
        .collect();
    let history = mw
        .channel_history(channels[0])
        .unwrap()
        .iter()
        .map(DataTree::render)
        .collect();
    let (mut outputs, mut dropped) = (0, 0);
    for &ch in &channels {
        let stats = mw.channel_stats(ch).unwrap();
        outputs += stats.outputs;
        dropped += stats.dropped;
    }
    let health = mw
        .structure()
        .iter()
        .map(|n| format!("{}: {:?}", n.descriptor.name, mw.node_health(n.id)))
        .collect();
    Observed {
        trees,
        history,
        outputs,
        dropped,
        health,
        steps: mw.steps_run(),
    }
}

#[test]
fn mid_run_attach_yields_identical_trees_lazy_vs_eager() {
    let eager = run_scenario(TreePolicy::Eager, false, false);
    let lazy = run_scenario(TreePolicy::Lazy, false, false);
    assert!(
        eager.trees.iter().all(|t| !t.is_empty()),
        "every channel must derive phase-two trees: {eager:?}"
    );
    assert!(!eager.history.is_empty());
    assert_eq!(eager, lazy);
}

#[test]
fn mid_run_attach_equivalence_holds_in_parallel_executor() {
    let eager = run_scenario(TreePolicy::Eager, true, false);
    let lazy = run_scenario(TreePolicy::Lazy, true, false);
    assert_eq!(eager, lazy);
    // And cross-executor: the parallel eager run matches sequential.
    assert_eq!(eager, run_scenario(TreePolicy::Eager, false, false));
}

#[test]
fn mid_run_attach_equivalence_holds_under_injected_faults() {
    let eager = run_scenario(TreePolicy::Eager, false, true);
    let lazy = run_scenario(TreePolicy::Lazy, false, true);
    let faults = eager.health.iter().filter(|h| !h.contains("faults: 0"));
    assert!(
        faults.count() >= 2,
        "both injectors must have fired: {:?}",
        eager.health
    );
    assert_eq!(eager, lazy);
    assert_eq!(
        run_scenario(TreePolicy::Eager, true, true),
        run_scenario(TreePolicy::Lazy, true, true)
    );
}

#[test]
fn arena_interning_is_observationally_invisible() {
    // The payload arena is a pure allocation strategy: with interning
    // disabled every emission allocates fresh behind a plain `Arc`, and
    // every observable — trees, history, stats, health — must come out
    // byte-identical, under both policies, both executors, and with
    // faults in flight.
    for policy in [TreePolicy::Eager, TreePolicy::Lazy] {
        for parallel in [false, true] {
            for faulty in [false, true] {
                let arena = run_scenario_with_arena(policy, parallel, faulty, true);
                let plain = run_scenario_with_arena(policy, parallel, faulty, false);
                assert_eq!(
                    arena, plain,
                    "arena/plain divergence at {policy:?} parallel={parallel} faulty={faulty}"
                );
            }
        }
    }
}

#[test]
fn step_batch_equals_manual_step_loop() {
    let observe = |batched: bool| {
        let tick = SimDuration::from_millis(100);
        let mut mw = Middleware::new();
        mw.set_tree_policy(TreePolicy::Eager);
        let src = mw.add_component(source("src", 1));
        let p = mw.add_component(stage("p", |v| v * 3));
        let app = mw.application_sink();
        mw.connect(src, p, 0).unwrap();
        mw.connect_to_sink(p, app).unwrap();
        let ch = mw.channel_into(app, 0).unwrap();
        mw.attach_channel_feature(ch, TreeLog::default()).unwrap();
        if batched {
            mw.step_batch(50, tick).unwrap();
        } else {
            for _ in 0..50 {
                mw.step().unwrap();
                mw.advance_clock(tick);
            }
        }
        let trees = mw
            .with_channel_feature_mut(ch, TreeLog::NAME, |log: &mut TreeLog| log.rendered.clone())
            .unwrap();
        (trees, mw.steps_run(), mw.now())
    };
    let batched = observe(true);
    let looped = observe(false);
    assert_eq!(batched.0.len(), 50);
    assert_eq!(batched, looped);
}

#[test]
fn dropped_entries_surface_through_member_reflection() {
    // A stage that swallows everything: the channel endpoint never
    // produces, so upstream levels buffer unclaimed entries until the
    // ring cap bounds them and the overflow is counted as dropped.
    let mut mw = Middleware::new();
    let src = mw.add_component(source("src", 1));
    let filt = mw.add_component(FnProcessor::new(
        "swallow",
        vec![kinds::RAW_STRING],
        kinds::RAW_STRING,
        |_| None,
    ));
    let app = mw.application_sink();
    mw.connect(src, filt, 0).unwrap();
    mw.connect_to_sink(filt, app).unwrap();
    let steps = LEVEL_BUFFER_CAP as u64 + 500;
    mw.step_batch(steps, SimDuration::from_micros(1)).unwrap();

    let Value::Map(stats) = mw.invoke(src, "channel_stats", &[]).unwrap() else {
        panic!("channel_stats must return a map");
    };
    assert_eq!(stats["buffered"], Value::Int(LEVEL_BUFFER_CAP as i64));
    assert_eq!(stats["dropped"], Value::Int(500));
    assert!(stats.contains_key("channel"));
    // The same numbers via the typed API.
    let ch = mw.channel_into(app, 0).unwrap();
    let typed = mw.channel_stats(ch).unwrap();
    assert_eq!(typed.dropped, 500);
    assert_eq!(typed.buffered, LEVEL_BUFFER_CAP as u64);
}

#[test]
fn history_subscription_creates_demand_under_lazy() {
    let mut mw = Middleware::new();
    let src = mw.add_component(source("src", 1));
    let p = mw.add_component(stage("p", |v| v + 1));
    let app = mw.application_sink();
    mw.connect(src, p, 0).unwrap();
    mw.connect_to_sink(p, app).unwrap();
    let ch = mw.channel_into(app, 0).unwrap();
    let tick = SimDuration::from_millis(10);

    // Undemanded: outputs complete but nothing materializes.
    mw.step_batch(20, tick).unwrap();
    let stats = mw.channel_stats(ch).unwrap();
    assert_eq!(stats.materialized, 0);
    assert!(stats.skipped > 0);

    // A history subscription alone is demand.
    mw.subscribe_channel_history(ch, 8).unwrap();
    mw.step_batch(20, tick).unwrap();
    let stats = mw.channel_stats(ch).unwrap();
    assert!(stats.materialized > 0);
    let history = mw.channel_history(ch).unwrap();
    assert_eq!(history.len(), 8, "capacity bounds the retained window");

    // Unsubscribing removes the demand again.
    mw.unsubscribe_channel_history(ch).unwrap();
    let materialized_before = mw.channel_stats(ch).unwrap().materialized;
    mw.step_batch(20, tick).unwrap();
    let stats = mw.channel_stats(ch).unwrap();
    assert_eq!(stats.materialized, materialized_before);
    assert!(mw.channel_history(ch).unwrap().is_empty());
}

#[test]
fn tree_policy_round_trips_through_config_and_reflection() {
    // Reflection: read and flip the policy through any node.
    let mut mw = Middleware::new();
    let src = mw.add_component(source("src", 1));
    assert_eq!(mw.tree_policy(), TreePolicy::Lazy);
    assert_eq!(
        mw.invoke(src, "tree_policy", &[]).unwrap(),
        Value::from("lazy")
    );
    mw.invoke(src, "set_tree_policy", &[Value::from("eager")])
        .unwrap();
    assert_eq!(mw.tree_policy(), TreePolicy::Eager);
    assert!(mw
        .invoke(src, "set_tree_policy", &[Value::from("nope")])
        .is_err());

    // Configuration: the declarative form applies the policy.
    let json = r#"{
      "components": [
        { "name": "s", "kind": "counter" },
        { "name": "app", "kind": "application" }
      ],
      "connections": [{ "from": "s", "to": "app", "port": 0 }],
      "tree_policy": "eager"
    }"#;
    let config: GraphConfig = serde_json::from_str(json).unwrap();
    type Factory = Box<dyn Fn() -> Box<dyn Component> + Send + Sync>;
    let mut factories: BTreeMap<String, Factory> = BTreeMap::new();
    factories.insert("counter".into(), Box::new(|| Box::new(source("s", 1))));
    let mut mw = Middleware::new();
    config.instantiate(&mut mw, &factories).unwrap();
    assert_eq!(mw.tree_policy(), TreePolicy::Eager);
    // And the configured policy survives a JSON round trip.
    let back: GraphConfig =
        serde_json::from_str(&serde_json::to_string_pretty(&config).unwrap()).unwrap();
    assert_eq!(back, config);
}
