//! Scalability experiment — the paper defers "reliability, scalability
//! and performance" to future work (§6). This sweep measures how engine
//! step time and channel derivation scale with the size of the
//! positioning process: P parallel pipelines of depth D, all delivering
//! to one application.
//!
//! Run with: `cargo run -p perpos-bench --bin exp_scalability --release`

#![allow(clippy::unwrap_used)]
use std::time::Instant;

use perpos_core::prelude::*;

fn build(pipelines: usize, depth: usize) -> Middleware {
    let mut mw = Middleware::new();
    let app = mw.application_sink();
    for p in 0..pipelines {
        let mut i = 0i64;
        let src = mw.add_component(FnSource::new(
            format!("src{p}"),
            kinds::RAW_STRING,
            move |_| {
                i += 1;
                Some(Value::Int(i))
            },
        ));
        let mut prev = src;
        for d in 0..depth {
            let node = mw.add_component(FnProcessor::new(
                format!("p{p}s{d}"),
                vec![kinds::RAW_STRING],
                kinds::RAW_STRING,
                |item| Some(item.payload.clone()),
            ));
            mw.connect(prev, node, 0).unwrap();
            prev = node;
        }
        mw.connect_to_sink(prev, app).unwrap();
    }
    mw
}

fn main() {
    println!("=== scalability: engine step time vs process size ===\n");
    println!(
        "{:>10} {:>6} {:>7} {:>9} {:>12} {:>14}",
        "pipelines", "depth", "nodes", "channels", "step µs", "items/s (est)"
    );
    println!("{}", "-".repeat(64));
    // The default application sink has 16 ports; larger fan-ins use
    // several sinks in practice, so we cap pipelines at 16 here.
    for (pipelines, depth) in [
        (1usize, 2usize),
        (1, 8),
        (1, 32),
        (4, 4),
        (8, 4),
        (16, 4),
        (16, 16),
    ] {
        let mut mw = build(pipelines, depth);
        // Warm-up.
        for _ in 0..50 {
            mw.step().unwrap();
            mw.advance_clock(SimDuration::from_micros(1));
        }
        let iters = 2_000u32;
        let start = Instant::now();
        for _ in 0..iters {
            mw.step().unwrap();
            mw.advance_clock(SimDuration::from_micros(1));
        }
        let us = start.elapsed().as_micros() as f64 / f64::from(iters);
        let items_per_step = pipelines; // one emission per pipeline per step
        let throughput = items_per_step as f64 / (us / 1e6);
        println!(
            "{:>10} {:>6} {:>7} {:>9} {:>12.1} {:>14.0}",
            pipelines,
            depth,
            mw.structure().len(),
            mw.channels().len(),
            us,
            throughput
        );
    }
    println!(
        "\n(expected shape: step time grows linearly in total node count — pipelines × depth —\n so a building-sized deployment of tens of sensors stays far below real-time rates)"
    );
}
