//! A multi-target "buddy finder": several tracked targets, k-nearest
//! queries and proximity notifications — the Positioning Layer services
//! the paper lists ("definition of tracked targets, which may have
//! several sensors attached to them", "the k-nearest targets",
//! "notifications, e.g., based on proximity to a point or target", §2).
//!
//! Run with: `cargo run --example buddy_finder`

use perpos::prelude::*;

fn main() -> Result<(), CoreError> {
    let frame = LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).expect("valid"));
    let mut mw = Middleware::new();

    // Three people walking different paths across a plaza.
    let people: Vec<(&str, Trajectory)> = vec![
        (
            "alice",
            Trajectory::new(vec![Point2::new(0.0, 0.0), Point2::new(120.0, 0.0)], 1.4),
        ),
        (
            "bob",
            Trajectory::new(vec![Point2::new(120.0, 6.0), Point2::new(0.0, 6.0)], 1.2),
        ),
        ("carol", Trajectory::stationary(Point2::new(60.0, 40.0))),
    ];

    let mut targets = Vec::new();
    for (i, (name, walk)) in people.iter().enumerate() {
        let target = mw.add_target(*name);
        let gps = mw.add_component(
            GpsSimulator::new(format!("gps-{name}"), frame, walk.clone()).with_seed(100 + i as u64),
        );
        let parser = mw.add_component(Parser::new());
        let interpreter = mw.add_component(Interpreter::new());
        mw.connect(gps, parser, 0)?;
        mw.connect(parser, interpreter, 0)?;
        mw.connect(interpreter, target.node(), 0)?;
        targets.push(target);
    }

    // Alert when anyone reaches the plaza fountain.
    let fountain = frame.from_local(&Point2::new(60.0, 0.0));
    let alerts: Vec<_> = targets
        .iter()
        .map(|t| {
            (
                t.name().to_string(),
                t.provider(Criteria::new()).proximity_alert(fountain, 8.0),
            )
        })
        .collect();

    println!("t(s)  alice->nearest buddy            fountain events");
    println!("----  ------------------------------  ---------------");
    for tick in 0..90 {
        mw.step()?;
        if tick % 15 == 14 {
            let alice_pos = targets[0]
                .provider(Criteria::new())
                .last_position()
                .map(|p| *p.coord());
            let line = match alice_pos {
                Some(p) => {
                    let nearest: Vec<String> = mw
                        .k_nearest_targets(&p, 2)
                        .into_iter()
                        .filter(|(name, _, _)| name != "alice")
                        .map(|(name, _, d)| format!("{name} ({d:.0} m)"))
                        .collect();
                    nearest.join(", ")
                }
                None => "no fix yet".to_string(),
            };
            let mut events = String::new();
            for (name, rx) in &alerts {
                for e in rx.try_iter() {
                    events.push_str(&format!(
                        "{name} {} fountain; ",
                        if e.entered { "reached" } else { "left" }
                    ));
                }
            }
            println!("{:>4}  {line:<30}  {events}", tick + 1);
        }
        mw.advance_clock(SimDuration::from_secs(1));
    }

    println!(
        "\ntargets registered: {:?}",
        mw.targets().iter().map(|t| t.name()).collect::<Vec<_>>()
    );
    Ok(())
}
