//! Criteria-driven pipeline synthesis (paper §2.3: applications state
//! JSR-179-style criteria; the middleware adapts the positioning
//! process).
//!
//! [`synthesize`] takes a [`SynthesisGoal`] — target accuracy, maximum
//! rate, power budget, coordinate frame, privacy constraint, output
//! kind — plus a [`TypeCatalog`], and searches the catalog's
//! requirements/capabilities space for [`GraphConfig`]s satisfying every
//! criterion. The search ([`search`] module) is static-analysis-directed:
//! partial pipelines are scored and pruned by the same abstract domains
//! `perpos-lint` checks with (frames P010, accuracy P011, taint P012,
//! rates P013/P014), and a candidate is only emitted when the *full*
//! config pass comes back completely clean — the lint is the acceptance
//! gate, not a post-hoc check.
//!
//! When the goal is unsatisfiable the result carries a machine-readable
//! [`Infeasibility`] naming the binding constraint (found by re-running
//! the search with one criterion relaxed at a time) instead of a bare
//! empty list, and [`Synthesis::report`] renders it as diagnostic P015.
//!
//! Surfaces: this library API, the `perpos-lint synth` subcommand, and
//! `Middleware::instantiate_synthesized` (re-gated instantiation of a
//! [`perpos_core::assembly::SynthesizedConfig`]).

pub mod explain;
mod search;

pub use explain::Infeasibility;

use perpos_core::assembly::{GraphConfig, SynthesizedConfig};
use serde::{Deserialize, Serialize};

use crate::catalog::TypeCatalog;
use crate::diagnostic::{Code, Diagnostic, Report, Severity, JSON_SCHEMA_VERSION};

/// Output kind assumed when the goal does not name one.
pub const DEFAULT_OUTPUT_KIND: &str = "position.wgs84";

/// Default bound on pipeline components (excluding the sink).
pub const DEFAULT_MAX_COMPONENTS: u64 = 8;

/// Default number of ranked candidates returned.
pub const DEFAULT_CANDIDATES: u64 = 3;

/// The criteria a synthesized pipeline must satisfy. Every field is
/// optional; an empty goal asks for *any* clean pipeline delivering
/// [`DEFAULT_OUTPUT_KIND`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SynthesisGoal {
    /// Data kind the pipeline must deliver to the application sink;
    /// absent means [`DEFAULT_OUTPUT_KIND`].
    pub output_kind: Option<String>,
    /// Required achievable accuracy at the sink, metres: the inferred
    /// best bound (accuracy domain, P011 semantics) must be ≤ this.
    pub accuracy_m: Option<f64>,
    /// Maximum sustained delivery rate at the sink, items/second: the
    /// inferred upper rate bound must be finite and ≤ this.
    pub max_rate_hz: Option<f64>,
    /// Total power budget over all components, milliwatts (sum of
    /// declared `power_mw`; undeclared components count as free).
    pub power_budget_mw: Option<f64>,
    /// Required coordinate frame at the sink (frame domain): the sink
    /// must observe exactly this frame.
    pub frame: Option<String>,
    /// Whether identifiable sensor data must not reach the sink (taint
    /// domain). The full-pass gate already rejects P012 violations; the
    /// flag records the requirement explicitly in the goal.
    pub no_identifiable_at_sink: bool,
    /// Bound on pipeline components excluding the sink; absent means
    /// [`DEFAULT_MAX_COMPONENTS`].
    pub max_components: Option<u64>,
    /// Ranked candidates to return; absent means [`DEFAULT_CANDIDATES`].
    pub candidates: Option<u64>,
}

impl SynthesisGoal {
    /// A goal with every criterion open.
    pub fn new() -> Self {
        SynthesisGoal::default()
    }

    /// The output kind, defaulted.
    pub fn effective_output_kind(&self) -> &str {
        self.output_kind.as_deref().unwrap_or(DEFAULT_OUTPUT_KIND)
    }

    /// The component bound, defaulted and clamped to at least 1.
    pub fn effective_max_components(&self) -> usize {
        self.max_components.unwrap_or(DEFAULT_MAX_COMPONENTS).max(1) as usize
    }

    /// The candidate count, defaulted and clamped to at least 1.
    pub fn effective_candidates(&self) -> usize {
        self.candidates.unwrap_or(DEFAULT_CANDIDATES).max(1) as usize
    }

    /// One-line human summary, e.g.
    /// `"kind=position.wgs84, accuracy<=5m, no-identifiable-at-sink"`.
    pub fn summary(&self) -> String {
        let mut parts = vec![format!("kind={}", self.effective_output_kind())];
        if let Some(a) = self.accuracy_m {
            parts.push(format!("accuracy<={a}m"));
        }
        if let Some(r) = self.max_rate_hz {
            parts.push(format!("rate<={r}Hz"));
        }
        if let Some(p) = self.power_budget_mw {
            parts.push(format!("power<={p}mW"));
        }
        if let Some(f) = &self.frame {
            parts.push(format!("frame={f}"));
        }
        if self.no_identifiable_at_sink {
            parts.push("no-identifiable-at-sink".into());
        }
        parts.join(", ")
    }
}

/// One synthesized pipeline, ranked against its siblings.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RankedPipeline {
    /// Rank among the returned candidates (0 = best).
    pub rank: u64,
    /// Component instances in the configuration, sink included.
    pub components: u64,
    /// Inferred best achievable accuracy at the sink, metres.
    pub accuracy_best_m: Option<f64>,
    /// Inferred worst accuracy bound at the sink, metres.
    pub accuracy_worst_m: Option<f64>,
    /// Inferred sustained delivery rate upper bound at the sink, Hz
    /// (absent when unknown or unbounded).
    pub rate_hz: Option<f64>,
    /// Sum of declared component power draws, milliwatts.
    pub power_mw: Option<f64>,
    /// Coordinate frames observed at the sink.
    pub frames: Vec<String>,
    /// The pipeline itself, ready for `instantiate_checked` /
    /// `instantiate_synthesized`.
    pub config: GraphConfig,
}

impl RankedPipeline {
    /// Wraps the pipeline as a core [`SynthesizedConfig`] carrying the
    /// goal summary, for `Middleware::instantiate_synthesized`.
    pub fn into_synthesized(self, goal: &SynthesisGoal) -> SynthesizedConfig {
        SynthesizedConfig {
            config: self.config,
            goal: goal.summary(),
            rank: self.rank,
        }
    }
}

/// The result of a synthesis run: ranked candidates, or a
/// machine-readable explanation of why there are none.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Synthesis {
    /// The goal as interpreted (caller's fields, not defaulted).
    pub goal: SynthesisGoal,
    /// Whether at least one candidate satisfies every criterion.
    pub feasible: bool,
    /// Ranked candidates, best first; empty when infeasible.
    pub candidates: Vec<RankedPipeline>,
    /// Present exactly when infeasible: the binding constraint.
    pub infeasibility: Option<Infeasibility>,
}

impl Synthesis {
    /// The findings of the run as a standard [`Report`]: empty when
    /// feasible, one P015 error naming the binding constraint otherwise.
    pub fn report(&self) -> Report {
        let mut report = Report::new();
        if let Some(inf) = &self.infeasibility {
            report.push(
                Diagnostic::new(Code::P015, Severity::Error, inf.detail.clone(), Vec::new())
                    .with_hint(inf.hint()),
            );
        }
        report
    }

    /// The versioned machine-readable document served by
    /// `perpos-lint synth --format json`: the synthesis block under the
    /// facts-document schema version.
    pub fn doc_json(&self) -> String {
        #[derive(Serialize)]
        struct Doc {
            schema_version: u64,
            synthesis: Synthesis,
        }
        serde_json::to_string_pretty(&Doc {
            schema_version: u64::from(JSON_SCHEMA_VERSION),
            synthesis: self.clone(),
        })
        .expect("synthesis document is plain data and always serializes")
    }
}

/// Searches `catalog` for pipelines satisfying `goal`.
///
/// Every returned candidate passes the full `perpos-lint` pass (P001–
/// P014) with zero findings *and* the goal checks against the solved
/// sink facts; ranking is deterministic (accuracy, then power, then
/// size, then canonical JSON). When no candidate exists the result
/// carries an [`Infeasibility`] naming the binding constraint.
pub fn synthesize(goal: &SynthesisGoal, catalog: &TypeCatalog) -> Synthesis {
    let found = search::enumerate(goal, catalog);
    if found.is_empty() {
        return Synthesis {
            goal: goal.clone(),
            feasible: false,
            candidates: Vec::new(),
            infeasibility: Some(explain::diagnose(goal, catalog)),
        };
    }
    let candidates = found
        .into_iter()
        .take(goal.effective_candidates())
        .enumerate()
        .map(|(rank, c)| RankedPipeline {
            rank: rank as u64,
            components: c.config.components.len() as u64,
            accuracy_best_m: c.accuracy.map(|(best, _)| best),
            accuracy_worst_m: c.accuracy.map(|(_, worst)| worst),
            rate_hz: c.rate.and_then(|(_, hi)| hi.is_finite().then_some(hi)),
            power_mw: c.power,
            frames: c.frames,
            config: c.config,
        })
        .collect();
    Synthesis {
        goal: goal.clone(),
        feasible: true,
        candidates,
        infeasibility: None,
    }
}
