//! The Process Channel Layer: source-to-merge pipelines abstracted as
//! Channels, with logical-time data trees and Channel Features
//! (paper §2.2, Fig. 4).
//!
//! A *Channel* is the maximal linear run of Processing Components from a
//! data source (or merge component) towards the next merge component or
//! application sink. For every data element a channel delivers, the layer
//! groups *all intermediate data elements that logically contributed to
//! it* into a [`DataTree`], using per-level logical time exactly as the
//! paper's Fig. 4 describes: each level carries a monotonically increasing
//! counter, and each produced element records the contiguous range of the
//! previous level's counters it consumed.
//!
//! [`ChannelFeature`]s receive each tree through
//! [`ChannelFeature::apply`] — the `apply(dataTree)` method of the paper —
//! and may expose derived state (e.g. a likelihood estimate from HDOP
//! values, Fig. 5) through reflective methods or typed handles.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;

use crate::component::ComponentRole;
use crate::data::{DataItem, DataKind, Value};
use crate::feature::FeatureDescriptor;
use crate::graph::{NodeId, ProcessingGraph};
use crate::{CoreError, SimTime};

/// Identifier of a channel. Channels are identified by their head node
/// (the source or merge component they start at), so the id is stable
/// across graph mutations that do not remove the head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub(crate) NodeId);

impl ChannelId {
    /// The id of the channel headed at `node`. Useful when constructing
    /// [`DataTree`]s manually in tests and tools.
    pub fn of_head(node: NodeId) -> Self {
        ChannelId(node)
    }

    /// The head node this channel starts at.
    pub fn head(&self) -> NodeId {
        self.0
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel@{}", self.0)
    }
}

/// Read-only description of a channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelInfo {
    /// The channel id (head node).
    pub id: ChannelId,
    /// Member nodes from head to last in-channel component.
    pub members: Vec<NodeId>,
    /// Component names of the members, head first.
    pub member_names: Vec<String>,
    /// Where the channel delivers: the consuming merge/sink node and its
    /// input port, when connected.
    pub endpoint: Option<(NodeId, usize)>,
    /// Names of attached Channel Features.
    pub features: Vec<String>,
    /// Worst member health (filled in by the middleware facade; a bare
    /// [`ChannelLayer`] reports every channel healthy).
    pub health: crate::supervision::HealthStatus,
}

/// One node of a [`DataTree`]: a data item plus the logical-time
/// bookkeeping that located it in the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DataNode {
    /// The graph node that produced the item.
    pub component: NodeId,
    /// Name of that component (for diagnostics / rendering).
    pub component_name: String,
    /// The produced item.
    pub item: DataItem,
    /// The item's logical time at its level (1-based, per level).
    pub logical: u64,
    /// The contiguous range of previous-level logical times consumed to
    /// produce this item; `None` at the leaf level.
    pub range: Option<(u64, u64)>,
    /// The contributing items from the previous level.
    pub children: Vec<DataNode>,
}

impl DataNode {
    fn render(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        match self.range {
            Some((lo, hi)) => out.push_str(&format!(
                "{}: {} (logical {}, consumed {}-{})\n",
                self.component_name, self.item, self.logical, lo, hi
            )),
            None => out.push_str(&format!(
                "{}: {} (logical {})\n",
                self.component_name, self.item, self.logical
            )),
        }
        for c in &self.children {
            c.render(depth + 1, out);
        }
    }
}

/// The hierarchical grouping of all intermediate data that contributed to
/// one channel output (paper Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct DataTree {
    /// The channel that produced the output.
    pub channel: ChannelId,
    /// The output element and, transitively, its contributors.
    pub root: DataNode,
}

impl DataTree {
    /// Depth-first iteration over all nodes (root first).
    pub fn iter(&self) -> impl Iterator<Item = &DataNode> {
        // A tree is small; collect into a Vec for a simple iterator type.
        let mut stack = vec![&self.root];
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(n.children.iter());
        }
        out.into_iter()
    }

    /// All nodes whose item has the given kind. This is the paper's
    /// `dataTree.getData(NMEASentence.class)` (Fig. 5): a Channel Feature
    /// does not know how many layers or elements of each kind exist, so it
    /// queries by kind.
    pub fn items_of_kind(&self, kind: &DataKind) -> Vec<&DataNode> {
        self.iter().filter(|n| &n.item.kind == kind).collect()
    }

    /// Total number of data elements in the tree.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// Whether the tree consists of the root only.
    pub fn is_empty(&self) -> bool {
        self.root.children.is_empty()
    }

    /// Number of levels in the tree (1 = root only).
    pub fn depth(&self) -> usize {
        fn go(n: &DataNode) -> usize {
            1 + n.children.iter().map(go).max().unwrap_or(0)
        }
        go(&self.root)
    }

    /// Renders the tree as indented text (the Fig. 4 visualization).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render(0, &mut out);
        out
    }
}

/// The view a running Channel Feature has of its channel.
///
/// Grants reflective access to the channel's member components and their
/// Component Features — the paper's `component.getFeature(HDOP.class)`
/// idiom (Fig. 5) — without exposing the whole graph.
pub struct ChannelHost<'a> {
    graph: &'a mut ProcessingGraph,
    members: &'a [NodeId],
    now: SimTime,
    emitted: Vec<(NodeId, DataItem)>,
}

impl<'a> ChannelHost<'a> {
    /// Builds a host over an explicit member list — for unit tests of
    /// Channel Features outside an engine. Time is fixed at zero.
    pub fn for_test(graph: &'a mut ProcessingGraph, members: &'a [NodeId]) -> Self {
        ChannelHost {
            graph,
            members,
            now: SimTime::ZERO,
            emitted: Vec::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The channel's member nodes, head first.
    pub fn members(&self) -> &[NodeId] {
        self.members
    }

    /// Reflectively invokes a method on a member component (dispatching
    /// to its features when the component does not know the method).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] for non-members and propagates
    /// reflective errors.
    pub fn invoke_member(
        &mut self,
        node: NodeId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CoreError> {
        if !self.members.contains(&node) {
            return Err(CoreError::UnknownNode(node));
        }
        self.invoke_node(node, method, args)
    }

    /// Reflectively invokes a method on a named Component Feature of a
    /// member.
    ///
    /// # Errors
    ///
    /// Same contract as [`ChannelHost::invoke_member`].
    pub fn invoke_member_feature(
        &mut self,
        node: NodeId,
        feature: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CoreError> {
        if !self.members.contains(&node) {
            return Err(CoreError::UnknownNode(node));
        }
        self.invoke_node_feature(node, feature, method, args)
    }

    /// Reflectively invokes a method on *any* node of the processing
    /// graph — the paper's "combining the ability to traverse the nodes
    /// of the processing tree with … state manipulation features"
    /// (§2.1). The EnTracked Channel Feature uses this to control the GPS
    /// power strategy from the motion channel (§3.3).
    ///
    /// # Errors
    ///
    /// Propagates reflective errors.
    pub fn invoke_node(
        &mut self,
        node: NodeId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CoreError> {
        let (value, emitted) = self.graph.invoke(node, method, args, self.now)?;
        self.emitted.extend(emitted.into_iter().map(|i| (node, i)));
        Ok(value)
    }

    /// Reflectively invokes a method on a named Component Feature of any
    /// node (see [`ChannelHost::invoke_node`]).
    ///
    /// # Errors
    ///
    /// Propagates reflective errors.
    pub fn invoke_node_feature(
        &mut self,
        node: NodeId,
        feature: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CoreError> {
        let (value, emitted) = self
            .graph
            .invoke_feature(node, feature, method, args, self.now)?;
        self.emitted.extend(emitted.into_iter().map(|i| (node, i)));
        Ok(value)
    }
}

impl fmt::Debug for ChannelHost<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelHost")
            .field("members", &self.members)
            .finish()
    }
}

/// A Channel Feature (paper §2.2, Fig. 3b): functionality that depends on
/// data produced at several stages of the positioning process.
///
/// The middleware calls [`ChannelFeature::apply`] every time the channel
/// delivers a data element, passing the data tree that produced it.
pub trait ChannelFeature: Send {
    /// The feature's static declaration (see
    /// [`FeatureDescriptor::requiring`] for dependency declarations).
    fn descriptor(&self) -> FeatureDescriptor;

    /// Processes the data tree behind one channel output and updates the
    /// feature's internal state.
    ///
    /// # Errors
    ///
    /// Implementations report failures as [`CoreError::ComponentFailure`];
    /// the engine aborts the running step.
    fn apply(&mut self, tree: &DataTree, host: &mut ChannelHost<'_>) -> Result<(), CoreError>;

    /// Reflectively invokes one of the feature's methods — how
    /// applications at the Positioning Layer interact with middleware
    /// adaptations.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSuchMethod`] for unknown methods.
    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        let _ = args;
        Err(CoreError::NoSuchMethod {
            target: self.descriptor().name,
            method: method.to_string(),
        })
    }

    /// Typed escape hatch (the paper's `inputChannel.getFeature(...)`).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Cap on unclaimed buffered entries per channel level; prevents unbounded
/// growth when a downstream component consumes nothing for a long time.
const LEVEL_BUFFER_CAP: usize = 4096;

#[derive(Debug, Default)]
struct LevelState {
    counter: u64,
    /// Highest logical time of this level already claimed by the next.
    claimed_upto: u64,
    pending: Vec<PendingEntry>,
}

#[derive(Debug, Clone)]
struct PendingEntry {
    item: DataItem,
    logical: u64,
    range: Option<(u64, u64)>,
}

struct ChannelRuntime {
    id: ChannelId,
    members: Vec<NodeId>,
    member_names: Vec<String>,
    endpoint: Option<(NodeId, usize)>,
    levels: Vec<LevelState>,
    features: Vec<FeatureEntry>,
}

struct FeatureEntry {
    descriptor: FeatureDescriptor,
    feature: Box<dyn ChannelFeature>,
}

/// The channel layer runtime: derives channels from the graph, performs
/// logical-time bookkeeping and hosts Channel Features.
#[derive(Default)]
pub(crate) struct ChannelLayer {
    channels: BTreeMap<ChannelId, ChannelRuntime>,
    /// node -> (channel, level)
    index: BTreeMap<NodeId, (ChannelId, usize)>,
}

impl fmt::Debug for ChannelLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelLayer")
            .field("channels", &self.channels.len())
            .finish()
    }
}

impl ChannelLayer {
    /// Re-derives channels after a graph change, preserving the features
    /// and buffers of channels whose head survived.
    pub(crate) fn recompute(&mut self, graph: &ProcessingGraph) {
        let mut old = std::mem::take(&mut self.channels);
        self.index.clear();
        for head in channel_heads(graph) {
            let (members, endpoint) = walk_channel(graph, head);
            let id = ChannelId(head);
            let member_names = members
                .iter()
                .map(|m| {
                    graph
                        .info(*m)
                        .map(|i| i.descriptor.name)
                        .unwrap_or_default()
                })
                .collect();
            let mut runtime = ChannelRuntime {
                id,
                member_names,
                endpoint,
                levels: members.iter().map(|_| LevelState::default()).collect(),
                members: members.clone(),
                features: Vec::new(),
            };
            if let Some(mut prior) = old.remove(&id) {
                runtime.features = std::mem::take(&mut prior.features);
                if prior.members == runtime.members {
                    // Unchanged shape: keep logical time and buffers.
                    runtime.levels = prior.levels;
                }
            }
            for (level, m) in members.iter().enumerate() {
                self.index.insert(*m, (id, level));
            }
            self.channels.insert(id, runtime);
        }
    }

    /// Records an emission from `node`. Returns the completed data tree
    /// when the node is the channel's last member (a channel output).
    pub(crate) fn record(&mut self, node: NodeId, item: &DataItem) -> Option<DataTree> {
        let (cid, level) = *self.index.get(&node)?;
        let rt = self.channels.get_mut(&cid)?;
        let is_last = level + 1 == rt.levels.len();

        let range = if level == 0 {
            None
        } else {
            let prev = &mut rt.levels[level - 1];
            let lo = prev.claimed_upto + 1;
            let hi = prev.counter;
            prev.claimed_upto = hi.max(prev.claimed_upto);
            if hi >= lo {
                Some((lo, hi))
            } else {
                // The producer emitted without fresh upstream data (e.g. a
                // timer-driven component): no contributors this time.
                None
            }
        };

        let state = &mut rt.levels[level];
        state.counter += 1;
        let entry = PendingEntry {
            item: item.clone(),
            logical: state.counter,
            range,
        };

        if is_last {
            let root = build_node(&rt.levels, &rt.members, &rt.member_names, level, &entry);
            prune_claimed(&mut rt.levels, level, &entry);
            Some(DataTree { channel: cid, root })
        } else {
            state.pending.push(entry);
            if state.pending.len() > LEVEL_BUFFER_CAP {
                let excess = state.pending.len() - LEVEL_BUFFER_CAP;
                state.pending.drain(..excess);
            }
            None
        }
    }

    /// Runs every attached Channel Feature on a completed tree.
    pub(crate) fn apply_features(
        &mut self,
        graph: &mut ProcessingGraph,
        tree: &DataTree,
        now: SimTime,
    ) -> Result<Vec<(NodeId, DataItem)>, CoreError> {
        let Some(rt) = self.channels.get_mut(&tree.channel) else {
            return Ok(Vec::new());
        };
        let mut host = ChannelHost {
            graph,
            members: &rt.members,
            now,
            emitted: Vec::new(),
        };
        for entry in &mut rt.features {
            entry.feature.apply(tree, &mut host)?;
        }
        Ok(host.emitted)
    }

    /// Attaches a Channel Feature, validating its declared dependencies
    /// against member component names, attached Component Features and
    /// already attached Channel Features.
    pub(crate) fn attach_feature(
        &mut self,
        graph: &ProcessingGraph,
        id: ChannelId,
        feature: Box<dyn ChannelFeature>,
    ) -> Result<(), CoreError> {
        let rt = self
            .channels
            .get_mut(&id)
            .ok_or(CoreError::UnknownChannel(id))?;
        let descriptor = feature.descriptor();
        for dep in &descriptor.requires {
            let mut found = rt.member_names.iter().any(|n| n == dep)
                || rt.features.iter().any(|f| &f.descriptor.name == dep);
            if !found {
                for m in &rt.members {
                    if let Ok(info) = graph.info(*m) {
                        if info.features.iter().any(|f| &f.name == dep) {
                            found = true;
                            break;
                        }
                    }
                }
            }
            if !found {
                return Err(CoreError::MissingFeature {
                    node: id.0,
                    feature: dep.clone(),
                });
            }
        }
        rt.features.push(FeatureEntry {
            descriptor,
            feature,
        });
        Ok(())
    }

    /// Detaches a Channel Feature by name.
    pub(crate) fn detach_feature(
        &mut self,
        id: ChannelId,
        name: &str,
    ) -> Result<Box<dyn ChannelFeature>, CoreError> {
        let rt = self
            .channels
            .get_mut(&id)
            .ok_or(CoreError::UnknownChannel(id))?;
        let idx = rt
            .features
            .iter()
            .position(|f| f.descriptor.name == name)
            .ok_or_else(|| CoreError::UnknownFeatureName {
                target: id.to_string(),
                feature: name.to_string(),
            })?;
        Ok(rt.features.remove(idx).feature)
    }

    /// Reflectively invokes a method on an attached Channel Feature.
    pub(crate) fn invoke_feature(
        &mut self,
        id: ChannelId,
        name: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CoreError> {
        let rt = self
            .channels
            .get_mut(&id)
            .ok_or(CoreError::UnknownChannel(id))?;
        let entry = rt
            .features
            .iter_mut()
            .find(|f| f.descriptor.name == name)
            .ok_or_else(|| CoreError::UnknownFeatureName {
                target: id.to_string(),
                feature: name.to_string(),
            })?;
        entry.feature.invoke(method, args)
    }

    /// Typed access to an attached Channel Feature.
    pub(crate) fn with_feature_mut<T: 'static, R>(
        &mut self,
        id: ChannelId,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, CoreError> {
        let rt = self
            .channels
            .get_mut(&id)
            .ok_or(CoreError::UnknownChannel(id))?;
        let entry = rt
            .features
            .iter_mut()
            .find(|e| e.descriptor.name == name)
            .ok_or_else(|| CoreError::UnknownFeatureName {
                target: id.to_string(),
                feature: name.to_string(),
            })?;
        let typed = entry
            .feature
            .as_any_mut()
            .downcast_mut::<T>()
            .ok_or_else(|| CoreError::UnknownFeatureName {
                target: id.to_string(),
                feature: name.to_string(),
            })?;
        Ok(f(typed))
    }

    /// Read-only channel descriptions.
    pub(crate) fn infos(&self) -> Vec<ChannelInfo> {
        self.channels
            .values()
            .map(|rt| ChannelInfo {
                id: rt.id,
                members: rt.members.clone(),
                member_names: rt.member_names.clone(),
                endpoint: rt.endpoint,
                features: rt
                    .features
                    .iter()
                    .map(|f| f.descriptor.name.clone())
                    .collect(),
                health: crate::supervision::HealthStatus::Healthy,
            })
            .collect()
    }

    /// The channel that delivers into `(node, port)`, if any.
    pub(crate) fn channel_into(&self, node: NodeId, port: usize) -> Option<ChannelId> {
        self.channels
            .values()
            .find(|rt| rt.endpoint == Some((node, port)))
            .map(|rt| rt.id)
    }
}

/// A channel head is a source or a merge component (paper §2.2: nodes of
/// the PCL are data sources or merging components).
fn channel_heads(graph: &ProcessingGraph) -> Vec<NodeId> {
    graph
        .node_ids()
        .filter(|id| {
            graph
                .info(*id)
                .map(|i| {
                    matches!(
                        i.descriptor.role,
                        ComponentRole::Source | ComponentRole::Merge
                    )
                })
                .unwrap_or(false)
        })
        .collect()
}

/// Walks the linear run from `head` to the next merge, sink or fan-out.
fn walk_channel(graph: &ProcessingGraph, head: NodeId) -> (Vec<NodeId>, Option<(NodeId, usize)>) {
    let mut members = vec![head];
    let mut cur = head;
    loop {
        let outs = graph.downstream(cur);
        if outs.len() != 1 {
            return (members, None);
        }
        let (next, port) = outs[0];
        let Ok(info) = graph.info(next) else {
            return (members, None);
        };
        match info.descriptor.role {
            ComponentRole::Merge | ComponentRole::Sink => {
                return (members, Some((next, port)));
            }
            ComponentRole::Processor => {
                members.push(next);
                cur = next;
            }
            ComponentRole::Source => {
                // A source cannot consume; the graph prevents this, but
                // terminate defensively.
                return (members, None);
            }
        }
    }
}

fn build_node(
    levels: &[LevelState],
    members: &[NodeId],
    names: &[String],
    level: usize,
    entry: &PendingEntry,
) -> DataNode {
    let children = match (level, entry.range) {
        (0, _) | (_, None) => Vec::new(),
        (_, Some((lo, hi))) => levels[level - 1]
            .pending
            .iter()
            .filter(|e| e.logical >= lo && e.logical <= hi)
            .map(|e| build_node(levels, members, names, level - 1, e))
            .collect(),
    };
    DataNode {
        component: members[level],
        component_name: names.get(level).cloned().unwrap_or_default(),
        item: entry.item.clone(),
        logical: entry.logical,
        range: entry.range,
        children,
    }
}

/// Removes every buffered entry that the completed output claimed.
fn prune_claimed(levels: &mut [LevelState], out_level: usize, out_entry: &PendingEntry) {
    let mut range = out_entry.range;
    for level in (0..out_level).rev() {
        let Some((_, hi)) = range else { break };
        let state = &mut levels[level];
        // Determine the deepest range claimed transitively.
        let next_range = state
            .pending
            .iter()
            .filter(|e| e.logical <= hi)
            .filter_map(|e| e.range)
            .fold(None, |acc: Option<(u64, u64)>, r| match acc {
                None => Some(r),
                Some((lo0, hi0)) => Some((lo0.min(r.0), hi0.max(r.1))),
            });
        state.pending.retain(|e| e.logical > hi);
        range = next_range;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::kinds;

    fn item(kind: DataKind, v: i64) -> DataItem {
        DataItem::new(kind, SimTime::ZERO, Value::Int(v))
    }

    /// Builds the Fig. 1 GPS pipeline graph: gps -> parser -> interpreter
    /// -> app, and returns (graph, layer, gps, parser, interpreter).
    fn gps_pipeline() -> (
        ProcessingGraph,
        ChannelLayer,
        NodeId,
        NodeId,
        NodeId,
        NodeId,
    ) {
        use crate::component::{
            ComponentCtx, ComponentDescriptor, FnProcessor, FnSource, InputSpec,
        };

        struct App;
        impl crate::component::Component for App {
            fn descriptor(&self) -> ComponentDescriptor {
                ComponentDescriptor::sink("app", InputSpec::new("in", vec![]))
            }
            fn on_input(
                &mut self,
                _p: usize,
                _i: DataItem,
                _c: &mut ComponentCtx,
            ) -> Result<(), CoreError> {
                Ok(())
            }
        }

        let mut g = ProcessingGraph::new();
        let gps = g.add(Box::new(FnSource::new("GPS", kinds::RAW_STRING, |_| None)));
        let parser = g.add(Box::new(FnProcessor::new(
            "Parser",
            vec![kinds::RAW_STRING],
            kinds::NMEA_SENTENCE,
            |_| None,
        )));
        let interp = g.add(Box::new(FnProcessor::new(
            "Interpreter",
            vec![kinds::NMEA_SENTENCE],
            kinds::POSITION_WGS84,
            |_| None,
        )));
        let app = g.add(Box::new(App));
        g.connect(gps, parser, 0).unwrap();
        g.connect(parser, interp, 0).unwrap();
        g.connect(interp, app, 0).unwrap();
        let mut layer = ChannelLayer::default();
        layer.recompute(&g);
        (g, layer, gps, parser, interp, app)
    }

    #[test]
    fn derives_single_channel() {
        let (_g, layer, gps, parser, interp, app) = gps_pipeline();
        let infos = layer.infos();
        assert_eq!(infos.len(), 1);
        let info = &infos[0];
        assert_eq!(info.members, vec![gps, parser, interp]);
        assert_eq!(info.endpoint, Some((app, 0)));
        assert_eq!(info.member_names, vec!["GPS", "Parser", "Interpreter"]);
        assert_eq!(layer.channel_into(app, 0), Some(info.id));
    }

    /// Reproduces the exact data tree of the paper's Fig. 4:
    /// five GPS strings, two NMEA sentences (consuming strings 1-2 and
    /// 3-5), one WGS-84 position consuming NMEA 1-2.
    #[test]
    fn figure_4_data_tree() {
        let (_g, mut layer, gps, parser, interp, _app) = gps_pipeline();

        // Strings 1-2 -> NMEA1.
        assert!(layer.record(gps, &item(kinds::RAW_STRING, 1)).is_none());
        assert!(layer.record(gps, &item(kinds::RAW_STRING, 2)).is_none());
        assert!(layer
            .record(parser, &item(kinds::NMEA_SENTENCE, 1))
            .is_none());
        // Strings 3-5 -> NMEA2.
        for v in 3..=5 {
            assert!(layer.record(gps, &item(kinds::RAW_STRING, v)).is_none());
        }
        assert!(layer
            .record(parser, &item(kinds::NMEA_SENTENCE, 2))
            .is_none());
        // Interpreter consumes NMEA 1-2 -> WGS84_1 (channel output).
        let tree = layer
            .record(interp, &item(kinds::POSITION_WGS84, 1))
            .expect("channel output completes the tree");

        assert_eq!(tree.root.logical, 1);
        assert_eq!(tree.root.range, Some((1, 2)));
        assert_eq!(tree.root.children.len(), 2);
        let nmea1 = &tree.root.children[0];
        let nmea2 = &tree.root.children[1];
        assert_eq!(nmea1.range, Some((1, 2)));
        assert_eq!(nmea2.range, Some((3, 5)));
        assert_eq!(nmea1.children.len(), 2);
        assert_eq!(nmea2.children.len(), 3);
        assert_eq!(tree.len(), 1 + 2 + 5);
        assert_eq!(tree.depth(), 3);
        assert_eq!(tree.items_of_kind(&kinds::NMEA_SENTENCE).len(), 2);
        assert_eq!(tree.items_of_kind(&kinds::RAW_STRING).len(), 5);
        let rendered = tree.render();
        assert!(rendered.contains("consumed 3-5"), "{rendered}");
    }

    #[test]
    fn buffers_pruned_after_output() {
        let (_g, mut layer, gps, parser, interp, _app) = gps_pipeline();
        layer.record(gps, &item(kinds::RAW_STRING, 1));
        layer.record(parser, &item(kinds::NMEA_SENTENCE, 1));
        let t1 = layer
            .record(interp, &item(kinds::POSITION_WGS84, 1))
            .unwrap();
        assert_eq!(t1.len(), 3);
        // Next round starts fresh: new string + sentence only.
        layer.record(gps, &item(kinds::RAW_STRING, 2));
        layer.record(parser, &item(kinds::NMEA_SENTENCE, 2));
        let t2 = layer
            .record(interp, &item(kinds::POSITION_WGS84, 2))
            .unwrap();
        assert_eq!(t2.len(), 3, "old entries must not leak into new trees");
        assert_eq!(t2.root.range, Some((2, 2)));
    }

    #[test]
    fn output_without_fresh_input_has_no_children() {
        let (_g, mut layer, _gps, _parser, interp, _app) = gps_pipeline();
        let tree = layer
            .record(interp, &item(kinds::POSITION_WGS84, 1))
            .unwrap();
        assert_eq!(tree.root.range, None);
        assert!(tree.is_empty());
    }

    #[test]
    fn recompute_preserves_features_by_head() {
        struct Probe {
            applied: usize,
        }
        impl ChannelFeature for Probe {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("Probe")
            }
            fn apply(&mut self, _t: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
                self.applied += 1;
                Ok(())
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let (g, mut layer, gps, _parser, _interp, _app) = gps_pipeline();
        let id = ChannelId(gps);
        layer
            .attach_feature(&g, id, Box::new(Probe { applied: 0 }))
            .unwrap();
        layer.recompute(&g);
        assert_eq!(layer.infos()[0].features, vec!["Probe".to_string()]);
        let n = layer
            .with_feature_mut::<Probe, usize>(id, "Probe", |p| p.applied)
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn attach_validates_dependencies() {
        struct Dependent;
        impl ChannelFeature for Dependent {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("Dependent").requiring("HDOP")
            }
            fn apply(&mut self, _t: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
                Ok(())
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let (mut g, mut layer, gps, parser, _interp, _app) = gps_pipeline();
        let id = ChannelId(gps);
        assert!(matches!(
            layer.attach_feature(&g, id, Box::new(Dependent)),
            Err(CoreError::MissingFeature { .. })
        ));
        // Attach the required Component Feature to a member, then retry.
        g.attach_feature(
            parser,
            Box::new(crate::feature::TagFeature::new(
                "HDOP",
                "hdop",
                Value::Float(1.0),
            )),
        )
        .unwrap();
        layer.attach_feature(&g, id, Box::new(Dependent)).unwrap();
        // Dependency on a member component name also works.
        struct OnParser;
        impl ChannelFeature for OnParser {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("OnParser").requiring("Parser")
            }
            fn apply(&mut self, _t: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
                Ok(())
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        layer.attach_feature(&g, id, Box::new(OnParser)).unwrap();
        // And on a previously attached channel feature.
        struct OnDependent;
        impl ChannelFeature for OnDependent {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("OnDependent").requiring("Dependent")
            }
            fn apply(&mut self, _t: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
                Ok(())
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        layer.attach_feature(&g, id, Box::new(OnDependent)).unwrap();
        assert_eq!(layer.infos()[0].features.len(), 3);
        // Detach works and unknown names error.
        layer.detach_feature(id, "OnDependent").unwrap();
        assert!(layer.detach_feature(id, "OnDependent").is_err());
    }

    #[test]
    fn features_applied_on_output() {
        struct Collect {
            kinds_seen: Vec<String>,
        }
        impl ChannelFeature for Collect {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("Collect")
            }
            fn apply(
                &mut self,
                tree: &DataTree,
                _h: &mut ChannelHost<'_>,
            ) -> Result<(), CoreError> {
                for n in tree.iter() {
                    self.kinds_seen.push(n.item.kind.to_string());
                }
                Ok(())
            }
            fn invoke(&mut self, method: &str, _args: &[Value]) -> Result<Value, CoreError> {
                if method == "count" {
                    Ok(Value::Int(self.kinds_seen.len() as i64))
                } else {
                    Err(CoreError::NoSuchMethod {
                        target: "Collect".into(),
                        method: method.into(),
                    })
                }
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let (mut g, mut layer, gps, parser, interp, _app) = gps_pipeline();
        let id = ChannelId(gps);
        layer
            .attach_feature(&g, id, Box::new(Collect { kinds_seen: vec![] }))
            .unwrap();
        layer.record(gps, &item(kinds::RAW_STRING, 1));
        layer.record(parser, &item(kinds::NMEA_SENTENCE, 1));
        let tree = layer
            .record(interp, &item(kinds::POSITION_WGS84, 1))
            .unwrap();
        layer.apply_features(&mut g, &tree, SimTime::ZERO).unwrap();
        assert_eq!(
            layer.invoke_feature(id, "Collect", "count", &[]).unwrap(),
            Value::Int(3)
        );
        assert!(layer.invoke_feature(id, "Collect", "nope", &[]).is_err());
        assert!(layer.invoke_feature(id, "Nope", "count", &[]).is_err());
    }

    #[test]
    fn level_buffer_cap_bounds_memory() {
        let (_g, mut layer, gps, _parser, _interp, _app) = gps_pipeline();
        for v in 0..(LEVEL_BUFFER_CAP as i64 + 100) {
            layer.record(gps, &item(kinds::RAW_STRING, v));
        }
        let rt = layer.channels.values().next().unwrap();
        assert_eq!(rt.levels[0].pending.len(), LEVEL_BUFFER_CAP);
    }
}
