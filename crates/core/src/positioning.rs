//! The Positioning Layer: the traditional, JSR-179-like top API of PerPos
//! (paper §2.3).
//!
//! Applications request a [`LocationProvider`] matching a set of
//! [`Criteria`]; position data is then available technology-independently
//! with both **pull** ([`LocationProvider::last_position`]) and **push**
//! ([`LocationProvider::subscribe`]) semantics, plus location-related
//! notifications ([`LocationProvider::proximity_alert`]). Tracked targets
//! with several attached sensors are modelled as named application sinks
//! (see [`crate::Middleware::add_target`]).

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use perpos_geo::Wgs84;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use crate::component::{Component, ComponentCtx, ComponentDescriptor, InputSpec};
use crate::data::{DataItem, DataKind, Position, Value};
use crate::{CoreError, SimDuration, SimTime};

/// How many delivered items a sink retains for pull-style access.
const SINK_HISTORY_CAP: usize = 1024;

/// Selection criteria for a location provider (paper §2: "applications
/// can request a location provider which matches a set of criteria").
///
/// ```
/// use perpos_core::prelude::*;
///
/// let precise_gps = Criteria::new()
///     .kind(kinds::POSITION_WGS84)
///     .source("gps")
///     .max_accuracy_m(10.0);
/// let mw = Middleware::new();
/// // No GPS in the graph yet: the request is rejected, not silently empty.
/// assert!(mw.location_provider(precise_gps).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Criteria {
    kinds: Vec<DataKind>,
    max_accuracy_m: Option<f64>,
    source: Option<String>,
    required_attrs: Vec<String>,
}

impl Criteria {
    /// Creates criteria matching any position-bearing item.
    pub fn new() -> Self {
        Criteria::default()
    }

    /// Restricts to items of the given kind (may be called repeatedly; an
    /// item matching any listed kind passes).
    pub fn kind(mut self, kind: DataKind) -> Self {
        self.kinds.push(kind);
        self
    }

    /// Requires a horizontal accuracy of at most `meters`. Items without
    /// an accuracy estimate are excluded.
    pub fn max_accuracy_m(mut self, meters: f64) -> Self {
        self.max_accuracy_m = Some(meters);
        self
    }

    /// Requires the item's `source` attribute to equal `source` — the
    /// technology selector (e.g. `"gps"`, `"wifi"`).
    pub fn source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Requires the presence of an attribute, whatever its value.
    pub fn with_attr(mut self, attr: impl Into<String>) -> Self {
        self.required_attrs.push(attr.into());
        self
    }

    /// The kinds this criteria selects (empty = any).
    pub fn kinds(&self) -> &[DataKind] {
        &self.kinds
    }

    /// The required source technology, if any (see [`Criteria::source`]).
    pub fn source_name(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// Whether `item` satisfies the criteria.
    pub fn matches(&self, item: &DataItem) -> bool {
        if !self.kinds.is_empty() && !self.kinds.contains(&item.kind) {
            return false;
        }
        if let Some(max) = self.max_accuracy_m {
            match item.payload.as_position().and_then(|p| p.accuracy_m()) {
                Some(acc) if acc <= max => {}
                _ => return false,
            }
        }
        if let Some(src) = &self.source {
            if item.attr("source").and_then(Value::as_text) != Some(src.as_str()) {
                return false;
            }
        }
        self.required_attrs.iter().all(|a| item.attr(a).is_some())
    }
}

impl fmt::Display for Criteria {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kinds={:?} max_acc={:?} source={:?}",
            self.kinds
                .iter()
                .map(|k| k.as_str().to_string())
                .collect::<Vec<_>>(),
            self.max_accuracy_m,
            self.source
        )
    }
}

/// A proximity notification (paper §2: "location related notifications,
/// e.g., based on proximity to a point").
#[derive(Debug, Clone, PartialEq)]
pub struct ProximityEvent {
    /// Whether the target entered (`true`) or left (`false`) the zone.
    pub entered: bool,
    /// The position that triggered the transition.
    pub position: Position,
    /// Distance from the zone centre in metres.
    pub distance_m: f64,
    /// Simulated time of the triggering item.
    pub at: SimTime,
}

struct ProximityWatch {
    center: Wgs84,
    radius_m: f64,
    inside: bool,
    criteria: Criteria,
    tx: Sender<ProximityEvent>,
}

struct Subscription {
    criteria: Criteria,
    tx: Sender<DataItem>,
}

#[derive(Default)]
struct SinkInner {
    history: VecDeque<DataItem>,
    subscriptions: Vec<Subscription>,
    proximity: Vec<ProximityWatch>,
    delivered: u64,
}

/// State shared between an application sink node in the graph and the
/// [`LocationProvider`] handles created from it.
#[derive(Default)]
pub(crate) struct SinkShared {
    inner: Mutex<SinkInner>,
}

impl SinkShared {
    pub(crate) fn deliver(&self, item: &DataItem) {
        let mut inner = self.inner.lock();
        inner.delivered += 1;
        inner
            .subscriptions
            .retain(|s| !s.criteria.matches(item) || s.tx.send(item.clone()).is_ok());
        if let Some(pos) = item.payload.as_position().copied() {
            for w in inner.proximity.iter_mut() {
                if !w.criteria.matches(item) {
                    continue;
                }
                let d = pos.coord().distance_m(&w.center);
                let now_inside = d <= w.radius_m;
                if now_inside != w.inside {
                    w.inside = now_inside;
                    let _ = w.tx.send(ProximityEvent {
                        entered: now_inside,
                        position: pos,
                        distance_m: d,
                        at: item.timestamp,
                    });
                }
            }
        }
        inner.history.push_back(item.clone());
        if inner.history.len() > SINK_HISTORY_CAP {
            inner.history.pop_front();
        }
    }
}

/// The application end-point component: the root of the process tree.
///
/// Instances are created by [`crate::Middleware`]; they record every item
/// they receive and fan it out to providers, subscribers and proximity
/// watches.
pub(crate) struct ApplicationSink {
    name: String,
    shared: Arc<SinkShared>,
}

impl ApplicationSink {
    pub(crate) fn new(name: impl Into<String>) -> (Self, Arc<SinkShared>) {
        let shared = Arc::new(SinkShared::default());
        (
            ApplicationSink {
                name: name.into(),
                shared: Arc::clone(&shared),
            },
            shared,
        )
    }
}

/// Number of input ports an application sink offers; each connected
/// pipeline occupies one (the process-tree root has one branch per
/// channel, paper Fig. 2).
pub(crate) const SINK_PORTS: usize = 16;

impl Component for ApplicationSink {
    fn descriptor(&self) -> ComponentDescriptor {
        let mut d = ComponentDescriptor::sink(self.name.clone(), InputSpec::new("in0", vec![]));
        for i in 1..SINK_PORTS {
            d.inputs.push(InputSpec::new(format!("in{i}"), vec![]));
        }
        d
    }

    fn on_input(
        &mut self,
        _port: usize,
        item: DataItem,
        _ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        self.shared.deliver(&item);
        Ok(())
    }
}

/// A handle for retrieving position data that matches fixed criteria —
/// the technology-transparent access point of the Positioning Layer.
///
/// Cheap to clone; all clones observe the same sink.
#[derive(Clone)]
pub struct LocationProvider {
    shared: Arc<SinkShared>,
    criteria: Criteria,
}

impl fmt::Debug for LocationProvider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocationProvider")
            .field("criteria", &self.criteria)
            .finish()
    }
}

impl LocationProvider {
    pub(crate) fn new(shared: Arc<SinkShared>, criteria: Criteria) -> Self {
        LocationProvider { shared, criteria }
    }

    /// The criteria this provider filters by.
    pub fn criteria(&self) -> &Criteria {
        &self.criteria
    }

    /// Pull semantics: the most recent matching item, if any.
    pub fn last_item(&self) -> Option<DataItem> {
        let inner = self.shared.inner.lock();
        inner
            .history
            .iter()
            .rev()
            .find(|i| self.criteria.matches(i))
            .cloned()
    }

    /// Pull semantics: the most recent matching *position*.
    pub fn last_position(&self) -> Option<Position> {
        let inner = self.shared.inner.lock();
        inner
            .history
            .iter()
            .rev()
            .filter(|i| self.criteria.matches(i))
            .find_map(|i| i.payload.as_position().copied())
    }

    /// All currently retained matching items, oldest first.
    pub fn history(&self) -> Vec<DataItem> {
        let inner = self.shared.inner.lock();
        inner
            .history
            .iter()
            .filter(|i| self.criteria.matches(i))
            .cloned()
            .collect()
    }

    /// Push semantics: a channel receiving every future matching item.
    pub fn subscribe(&self) -> Receiver<DataItem> {
        let (tx, rx) = unbounded();
        self.shared.inner.lock().subscriptions.push(Subscription {
            criteria: self.criteria.clone(),
            tx,
        });
        rx
    }

    /// Registers a proximity alert around `center`: an event fires each
    /// time a matching position crosses the `radius_m` boundary.
    pub fn proximity_alert(&self, center: Wgs84, radius_m: f64) -> Receiver<ProximityEvent> {
        let (tx, rx) = unbounded();
        self.shared.inner.lock().proximity.push(ProximityWatch {
            center,
            radius_m,
            inside: false,
            criteria: self.criteria.clone(),
            tx,
        });
        rx
    }

    /// Pull semantics with a freshness bound: the most recent matching
    /// position no older than `max_age` relative to `now` (JSR-179-style
    /// freshness criteria).
    pub fn last_position_within(&self, max_age: SimDuration, now: SimTime) -> Option<Position> {
        let inner = self.shared.inner.lock();
        inner
            .history
            .iter()
            .rev()
            .filter(|i| self.criteria.matches(i) && now.since(i.timestamp) <= max_age)
            .find_map(|i| i.payload.as_position().copied())
    }

    /// Total number of items the underlying sink has delivered (matching
    /// or not) — a cheap liveness probe.
    pub fn delivered_count(&self) -> u64 {
        self.shared.inner.lock().delivered
    }
}

// ---------------------------------------------------------------------
// Provider failover (supervision at the Positioning Layer)
// ---------------------------------------------------------------------

/// A failover notification from a [`FailoverProvider`]: the set of
/// healthy pipelines changed and the provider re-resolved its criteria.
///
/// Preferences are identified by their index in the preference list the
/// provider was created with (0 = most preferred).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProviderEvent {
    /// The active preference lost its last healthy pipeline; the
    /// provider fell back to `to` (`None` = no healthy pipeline at all).
    Degraded {
        /// Index of the preference that became unavailable.
        from: usize,
        /// Index of the fallback now active, if any.
        to: Option<usize>,
        /// Simulated time of the transition.
        at: SimTime,
    },
    /// A higher-ranked preference became available again and the
    /// provider switched (back) to it.
    Recovered {
        /// Index previously active, if any.
        from: Option<usize>,
        /// Index of the preference now active.
        to: usize,
        /// Simulated time of the transition.
        at: SimTime,
    },
}

pub(crate) struct FailoverInner {
    pub(crate) active: Option<usize>,
    pub(crate) available: Vec<bool>,
    pub(crate) events: Vec<Sender<ProviderEvent>>,
}

/// State shared between the middleware engine (which re-resolves after
/// every step) and the [`FailoverProvider`] handles observing it.
pub(crate) struct FailoverShared {
    pub(crate) prefs: Vec<Criteria>,
    pub(crate) inner: Mutex<FailoverInner>,
}

/// A location provider with criteria re-resolution over pipeline health:
/// an ordered list of [`Criteria`] preferences, of which the highest
/// ranked one whose feeding channels are not quarantined is *active*.
///
/// Reads ([`FailoverProvider::last_item`] and friends) filter by the
/// active criteria, so when the engine quarantines every component of
/// the preferred pipeline the provider transparently answers from the
/// next-best healthy one — the JSR-179-style surface degrades gracefully
/// instead of erroring (paper §6 reliability direction). Transitions are
/// observable through [`FailoverProvider::events`].
///
/// Created by [`crate::Middleware::failover_provider`]; cheap to clone.
#[derive(Clone)]
pub struct FailoverProvider {
    sink: Arc<SinkShared>,
    shared: Arc<FailoverShared>,
}

impl fmt::Debug for FailoverProvider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FailoverProvider")
            .field("prefs", &self.shared.prefs.len())
            .field("active", &self.active())
            .finish()
    }
}

impl FailoverProvider {
    pub(crate) fn new(sink: Arc<SinkShared>, shared: Arc<FailoverShared>) -> Self {
        FailoverProvider { sink, shared }
    }

    /// The ordered preference list (0 = most preferred).
    pub fn preferences(&self) -> &[Criteria] {
        &self.shared.prefs
    }

    /// Index of the currently active preference, if any is available.
    pub fn active(&self) -> Option<usize> {
        self.shared.inner.lock().active
    }

    /// The criteria currently answering reads, if any.
    pub fn active_criteria(&self) -> Option<Criteria> {
        let idx = self.shared.inner.lock().active?;
        self.shared.prefs.get(idx).cloned()
    }

    /// Whether the provider is running on anything but its first
    /// preference (including running on nothing).
    pub fn is_degraded(&self) -> bool {
        self.active() != Some(0)
    }

    /// Per-preference availability, index-aligned with
    /// [`FailoverProvider::preferences`].
    pub fn availability(&self) -> Vec<bool> {
        self.shared.inner.lock().available.clone()
    }

    /// Push semantics for failover transitions: a channel receiving
    /// every future [`ProviderEvent`].
    pub fn events(&self) -> Receiver<ProviderEvent> {
        let (tx, rx) = unbounded();
        self.shared.inner.lock().events.push(tx);
        rx
    }

    /// The most recent item matching the active criteria, if any.
    pub fn last_item(&self) -> Option<DataItem> {
        let criteria = self.active_criteria()?;
        LocationProvider::new(Arc::clone(&self.sink), criteria).last_item()
    }

    /// The most recent position matching the active criteria, if any.
    pub fn last_position(&self) -> Option<Position> {
        let criteria = self.active_criteria()?;
        LocationProvider::new(Arc::clone(&self.sink), criteria).last_position()
    }

    /// Freshness-bounded pull through the active criteria (see
    /// [`LocationProvider::last_position_within`]).
    pub fn last_position_within(&self, max_age: SimDuration, now: SimTime) -> Option<Position> {
        let criteria = self.active_criteria()?;
        LocationProvider::new(Arc::clone(&self.sink), criteria).last_position_within(max_age, now)
    }
}

impl FailoverShared {
    /// Applies a freshly computed availability vector, updating the
    /// active preference and notifying subscribers of transitions.
    pub(crate) fn apply_availability(&self, available: Vec<bool>, now: SimTime) {
        let mut inner = self.inner.lock();
        let new_active = available.iter().position(|a| *a);
        let old_active = inner.active;
        inner.available = available;
        if new_active == old_active {
            return;
        }
        inner.active = new_active;
        let event = match (old_active, new_active) {
            (Some(from), None) => ProviderEvent::Degraded {
                from,
                to: None,
                at: now,
            },
            (Some(from), Some(to)) if to > from => ProviderEvent::Degraded {
                from,
                to: Some(to),
                at: now,
            },
            (from, Some(to)) => ProviderEvent::Recovered { from, to, at: now },
            (None, None) => return,
        };
        inner.events.retain(|tx| tx.send(event.clone()).is_ok());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::kinds;

    fn wgs(lat: f64, lon: f64) -> Wgs84 {
        Wgs84::new(lat, lon, 0.0).unwrap()
    }

    fn pos_item(lat: f64, lon: f64, acc: Option<f64>, t: u64) -> DataItem {
        DataItem::new(
            kinds::POSITION_WGS84,
            SimTime::from_micros(t),
            Value::from(Position::new(wgs(lat, lon), acc)),
        )
    }

    #[test]
    fn criteria_matching() {
        let item = pos_item(56.0, 10.0, Some(8.0), 0).with_attr("source", Value::from("gps"));
        assert!(Criteria::new().matches(&item));
        assert!(Criteria::new().kind(kinds::POSITION_WGS84).matches(&item));
        assert!(!Criteria::new().kind(kinds::POSITION_ROOM).matches(&item));
        assert!(Criteria::new().max_accuracy_m(10.0).matches(&item));
        assert!(!Criteria::new().max_accuracy_m(5.0).matches(&item));
        assert!(Criteria::new().source("gps").matches(&item));
        assert!(!Criteria::new().source("wifi").matches(&item));
        assert!(Criteria::new().with_attr("source").matches(&item));
        assert!(!Criteria::new().with_attr("hdop").matches(&item));
        // No accuracy estimate fails accuracy-bounded criteria.
        let bare = pos_item(56.0, 10.0, None, 0);
        assert!(!Criteria::new().max_accuracy_m(100.0).matches(&bare));
    }

    #[test]
    fn pull_returns_most_recent_match() {
        let shared = Arc::new(SinkShared::default());
        shared.deliver(&pos_item(1.0, 1.0, Some(5.0), 1));
        shared.deliver(&pos_item(2.0, 2.0, Some(50.0), 2));
        let any = LocationProvider::new(Arc::clone(&shared), Criteria::new());
        assert_eq!(any.last_position().unwrap().coord().lat_deg(), 2.0);
        let precise =
            LocationProvider::new(Arc::clone(&shared), Criteria::new().max_accuracy_m(10.0));
        assert_eq!(precise.last_position().unwrap().coord().lat_deg(), 1.0);
        assert_eq!(any.history().len(), 2);
        assert_eq!(precise.history().len(), 1);
        assert_eq!(any.delivered_count(), 2);
    }

    #[test]
    fn push_delivers_only_matches() {
        let shared = Arc::new(SinkShared::default());
        let provider = LocationProvider::new(
            Arc::clone(&shared),
            Criteria::new().kind(kinds::POSITION_WGS84),
        );
        let rx = provider.subscribe();
        shared.deliver(&pos_item(1.0, 1.0, None, 1));
        shared.deliver(&DataItem::new(
            kinds::RAW_STRING,
            SimTime::ZERO,
            Value::from("noise"),
        ));
        let got: Vec<DataItem> = rx.try_iter().collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].kind, kinds::POSITION_WGS84);
    }

    #[test]
    fn dropped_subscriber_is_pruned() {
        let shared = Arc::new(SinkShared::default());
        let provider = LocationProvider::new(Arc::clone(&shared), Criteria::new());
        let rx = provider.subscribe();
        drop(rx);
        shared.deliver(&pos_item(1.0, 1.0, None, 1));
        assert_eq!(shared.inner.lock().subscriptions.len(), 0);
    }

    #[test]
    fn proximity_fires_on_boundary_crossings() {
        let shared = Arc::new(SinkShared::default());
        let provider = LocationProvider::new(Arc::clone(&shared), Criteria::new());
        let center = wgs(56.0, 10.0);
        let rx = provider.proximity_alert(center, 200.0);

        // Far away: no event.
        shared.deliver(&pos_item(56.1, 10.0, None, 1));
        assert!(rx.try_recv().is_err());
        // Enter the zone.
        shared.deliver(&pos_item(56.0005, 10.0, None, 2));
        let e = rx.try_recv().unwrap();
        assert!(e.entered);
        assert!(e.distance_m < 200.0);
        // Still inside: no duplicate event.
        shared.deliver(&pos_item(56.0002, 10.0, None, 3));
        assert!(rx.try_recv().is_err());
        // Leave.
        shared.deliver(&pos_item(56.2, 10.0, None, 4));
        let e = rx.try_recv().unwrap();
        assert!(!e.entered);
    }

    #[test]
    fn freshness_bound_filters_stale_positions() {
        let shared = Arc::new(SinkShared::default());
        shared.deliver(&pos_item(1.0, 1.0, None, 1_000_000)); // t = 1 s
        let p = LocationProvider::new(Arc::clone(&shared), Criteria::new());
        let now = SimTime::from_secs_f64(10.0);
        assert!(p
            .last_position_within(SimDuration::from_secs(5), now)
            .is_none());
        assert!(p
            .last_position_within(SimDuration::from_secs(20), now)
            .is_some());
    }

    #[test]
    fn history_is_bounded() {
        let shared = Arc::new(SinkShared::default());
        for i in 0..(SINK_HISTORY_CAP as u64 + 10) {
            shared.deliver(&pos_item(1.0, 1.0, None, i));
        }
        assert_eq!(shared.inner.lock().history.len(), SINK_HISTORY_CAP);
    }

    #[test]
    fn application_sink_records() {
        let (mut sink, shared) = ApplicationSink::new("app");
        let mut ctx = ComponentCtx::new(SimTime::ZERO);
        sink.on_input(0, pos_item(1.0, 2.0, None, 5), &mut ctx)
            .unwrap();
        let provider = LocationProvider::new(shared, Criteria::new());
        assert!(provider.last_position().is_some());
    }
}
