//! The [`Middleware`] facade: one object owning the processing graph, the
//! channel layer, the positioning layer and the simulation clock, and the
//! execution engine that moves data from sensors to applications.
//!
//! Execution model: the engine is deterministic and synchronous. Each
//! [`Middleware::step`] ticks every source component; emitted items run
//! through the producing node's Component Features (produce direction),
//! are recorded by the channel layer (completing a channel output fires
//! the attached Channel Features), and are then delivered to downstream
//! ports whose declared kinds accept them, where the consuming node's
//! features (consume direction) and the component itself process them.
//! Graph manipulation between steps keeps the channel views causally
//! connected — they are recomputed from the live graph on every change
//! (paper §2: "maintaining a causal connection between the positioning
//! system and the tree").

use std::fmt;
use std::sync::Arc;

use crate::channel::{
    ChannelFeature, ChannelId, ChannelInfo, ChannelLayer, ChannelStats, DataTree, TreePolicy,
};
use crate::component::{Component, MethodSpec};
use crate::data::{ArenaStats, DataItem, DataKind, PayloadArena, Value};
use crate::distribution::Deployment;
use crate::executor::{executor_for, EngineCtx, ExecMode, Executor};
use crate::feature::ComponentFeature;
use crate::fleet::snapshot::{structure_signature, Snapshot, SNAPSHOT_VERSION};
use crate::graph::{NodeId, NodeInfo, ProcessingGraph};
use crate::positioning::{
    ApplicationSink, Criteria, FailoverInner, FailoverProvider, FailoverShared, LocationProvider,
    SinkShared,
};
use crate::supervision::{FaultPolicy, HealthRegistry, HealthStatus, NodeHealth};
use crate::{CoreError, SimClock, SimDuration, SimTime};

/// A named tracked target: an application end-point of its own, to which
/// several sensor pipelines may be connected (paper §2.3: "definition of
/// tracked targets, which may have several sensors attached to them").
#[derive(Clone)]
pub struct Target {
    name: String,
    node: NodeId,
    shared: Arc<SinkShared>,
}

impl Target {
    /// The target's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sink node representing this target in the graph.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// A location provider filtered by `criteria` over this target's data.
    pub fn provider(&self, criteria: Criteria) -> LocationProvider {
        LocationProvider::new(Arc::clone(&self.shared), criteria)
    }
}

impl fmt::Debug for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Target")
            .field("name", &self.name)
            .field("node", &self.node)
            .finish()
    }
}

/// The PerPos middleware instance.
///
/// See the crate-level documentation for an end-to-end example.
pub struct Middleware {
    graph: ProcessingGraph,
    channels: ChannelLayer,
    clock: SimClock,
    app_sink: NodeId,
    app_shared: Arc<SinkShared>,
    targets: Vec<Target>,
    steps_run: u64,
    /// Items emitted by features during out-of-band reflective calls,
    /// routed at the start of the next step.
    pending: Vec<(NodeId, DataItem)>,
    deployment: Option<Deployment>,
    /// Per-node fault policies and health (supervision subsystem).
    health: HealthRegistry,
    /// Failover providers re-resolved against pipeline health after
    /// every step.
    failovers: Vec<Arc<FailoverShared>>,
    /// The scheduling policy running each step (paper translucency
    /// applied to execution: inspectable and swappable at runtime).
    executor: Box<dyn Executor>,
    /// Per-shard slab of recycled payload slots, keyed by step count.
    /// Sequential/batched unit paths intern owned-value emissions here;
    /// retired generations recycle their slots instead of freeing them.
    arena: PayloadArena,
    /// Whether the engine hands the arena to steps. Off, every emission
    /// allocates fresh (the plain-`Arc` representation); output is
    /// byte-identical either way — the toggle exists so the equivalence
    /// suite can run both representations over one trace.
    arena_enabled: bool,
}

impl fmt::Debug for Middleware {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Middleware")
            .field("graph", &self.graph)
            .field("steps_run", &self.steps_run)
            .finish()
    }
}

impl Default for Middleware {
    fn default() -> Self {
        Middleware::new()
    }
}

impl Middleware {
    /// Creates a middleware instance with one application sink.
    pub fn new() -> Self {
        let mut graph = ProcessingGraph::new();
        let (sink, shared) = ApplicationSink::new("application");
        let app_sink = graph.add(Box::new(sink));
        let mut channels = ChannelLayer::default();
        channels.recompute(&graph);
        Middleware {
            graph,
            channels,
            clock: SimClock::new(),
            app_sink,
            app_shared: shared,
            targets: Vec::new(),
            steps_run: 0,
            pending: Vec::new(),
            deployment: None,
            health: HealthRegistry::default(),
            failovers: Vec::new(),
            executor: executor_for(ExecMode::Sequential),
            arena: PayloadArena::new(),
            arena_enabled: true,
        }
    }

    // ------------------------------------------------------------------
    // Clock
    // ------------------------------------------------------------------

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Number of engine steps executed so far.
    pub fn steps_run(&self) -> u64 {
        self.steps_run
    }

    /// Advances the simulation clock by `d` without running a step —
    /// for experiment loops that interleave stepping with measurements.
    pub fn advance_clock(&mut self, d: SimDuration) -> SimTime {
        self.clock.advance(d)
    }

    // ------------------------------------------------------------------
    // Process Structure Layer (PSL) — paper §2.1
    // ------------------------------------------------------------------

    /// Adds a component to the processing graph.
    pub fn add_component(&mut self, component: impl Component + 'static) -> NodeId {
        let id = self.graph.add(Box::new(component));
        self.channels.recompute(&self.graph);
        id
    }

    /// Adds an already boxed component.
    pub fn add_boxed_component(&mut self, component: Box<dyn Component>) -> NodeId {
        let id = self.graph.add(component);
        self.channels.recompute(&self.graph);
        id
    }

    /// Removes a component, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] for unknown nodes.
    pub fn remove_component(&mut self, id: NodeId) -> Result<Box<dyn Component>, CoreError> {
        let c = self.graph.remove(id)?;
        self.health.forget(id);
        self.channels.recompute(&self.graph);
        Ok(c)
    }

    /// Connects `from`'s output to `(to, port)` with full validation (see
    /// [`ProcessingGraph::connect`]).
    ///
    /// # Errors
    ///
    /// Propagates the graph's validation errors.
    pub fn connect(&mut self, from: NodeId, to: NodeId, port: usize) -> Result<(), CoreError> {
        self.graph.connect(from, to, port)?;
        self.channels.recompute(&self.graph);
        Ok(())
    }

    /// Disconnects input `port` of `to`.
    ///
    /// # Errors
    ///
    /// Propagates the graph's validation errors.
    pub fn disconnect(&mut self, to: NodeId, port: usize) -> Result<Option<NodeId>, CoreError> {
        let r = self.graph.disconnect(to, port)?;
        self.channels.recompute(&self.graph);
        Ok(r)
    }

    /// Connects `from` to the first free input port of `sink` (an
    /// application sink or target node). Returns the chosen port.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PortOccupied`] when every port is taken, or
    /// the usual connection validation errors.
    pub fn connect_to_sink(&mut self, from: NodeId, sink: NodeId) -> Result<usize, CoreError> {
        let info = self.graph.info(sink)?;
        let port = info
            .inputs
            .iter()
            .position(|p| p.is_none())
            .ok_or(CoreError::PortOccupied {
                node: sink,
                port: info.inputs.len(),
            })?;
        self.connect(from, sink, port)?;
        Ok(port)
    }

    /// Inserts `new` into the existing edge `from -> (to, port)` (the
    /// §3.1 "insert a filter after the Parser" operation).
    ///
    /// # Errors
    ///
    /// Propagates the graph's validation errors.
    pub fn insert_between(
        &mut self,
        new: NodeId,
        from: NodeId,
        to: NodeId,
        port: usize,
    ) -> Result<(), CoreError> {
        self.graph.insert_between(new, from, to, port)?;
        self.channels.recompute(&self.graph);
        Ok(())
    }

    /// Attaches a Component Feature to a node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] for unknown nodes.
    pub fn attach_feature(
        &mut self,
        id: NodeId,
        feature: impl ComponentFeature + 'static,
    ) -> Result<(), CoreError> {
        self.graph.attach_feature(id, Box::new(feature))?;
        self.channels.recompute(&self.graph);
        Ok(())
    }

    /// Detaches a Component Feature by name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownFeatureName`] when absent.
    pub fn detach_feature(
        &mut self,
        id: NodeId,
        name: &str,
    ) -> Result<Box<dyn ComponentFeature>, CoreError> {
        let f = self.graph.detach_feature(id, name)?;
        self.channels.recompute(&self.graph);
        Ok(f)
    }

    /// Inspection of the full process structure (PSL view).
    pub fn structure(&self) -> Vec<NodeInfo> {
        self.graph
            .node_ids()
            .filter_map(|id| self.graph.info(id).ok())
            .collect()
    }

    /// Inspection record for one node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] for unknown nodes.
    pub fn node_info(&self, id: NodeId) -> Result<NodeInfo, CoreError> {
        self.graph.info(id)
    }

    /// Renders the process tree as indented text.
    pub fn render_process_tree(&self) -> String {
        self.graph.render_tree()
    }

    /// Reflectively invokes a method on a node (component first, then its
    /// features). The supervisor answers `"health"` for every node with
    /// the node's [`NodeHealth`] as a map — fault handling is translucent
    /// through the same reflection surface as everything else.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSuchMethod`] when nothing handles it.
    pub fn invoke(&mut self, id: NodeId, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        if method == "health" {
            if !self.graph.contains(id) {
                return Err(CoreError::UnknownNode(id));
            }
            return Ok(self.health.health(id).to_value());
        }
        if method == "executor" {
            if !self.graph.contains(id) {
                return Err(CoreError::UnknownNode(id));
            }
            return Ok(Value::from(self.executor.mode().as_str()));
        }
        if method == "set_executor" {
            if !self.graph.contains(id) {
                return Err(CoreError::UnknownNode(id));
            }
            let name =
                args.first()
                    .and_then(|v| v.as_text())
                    .ok_or_else(|| CoreError::BadArguments {
                        method: "set_executor".into(),
                        reason: "expected one text argument naming the mode".into(),
                    })?;
            let mode = ExecMode::from_name(name).ok_or_else(|| CoreError::BadArguments {
                method: "set_executor".into(),
                reason: format!("unknown executor mode {name:?}"),
            })?;
            self.set_executor(mode);
            return Ok(Value::Null);
        }
        if method == "channel_stats" {
            if !self.graph.contains(id) {
                return Err(CoreError::UnknownNode(id));
            }
            let (cid, stats) =
                self.channels
                    .stats_for_member(id)
                    .ok_or_else(|| CoreError::BadArguments {
                        method: "channel_stats".into(),
                        reason: format!("node {id} is not a member of any channel"),
                    })?;
            let Value::Map(mut map) = stats.to_value() else {
                unreachable!("ChannelStats::to_value returns a map")
            };
            map.insert("channel".to_string(), Value::from(cid.to_string()));
            return Ok(Value::Map(map));
        }
        if method == "dist_stats" {
            if !self.graph.contains(id) {
                return Err(CoreError::UnknownNode(id));
            }
            let dep = self
                .deployment
                .as_ref()
                .ok_or_else(|| CoreError::BadArguments {
                    method: "dist_stats".into(),
                    reason: "the graph is not distributed (no deployment set)".into(),
                })?;
            return Ok(dep.dist_stats().to_value());
        }
        if method == "tree_policy" {
            if !self.graph.contains(id) {
                return Err(CoreError::UnknownNode(id));
            }
            return Ok(Value::from(self.channels.policy().as_str()));
        }
        if method == "set_tree_policy" {
            if !self.graph.contains(id) {
                return Err(CoreError::UnknownNode(id));
            }
            let name =
                args.first()
                    .and_then(|v| v.as_text())
                    .ok_or_else(|| CoreError::BadArguments {
                        method: "set_tree_policy".into(),
                        reason: "expected one text argument naming the policy".into(),
                    })?;
            let policy = TreePolicy::from_name(name).ok_or_else(|| CoreError::BadArguments {
                method: "set_tree_policy".into(),
                reason: format!("unknown tree policy {name:?}"),
            })?;
            self.channels.set_policy(policy);
            return Ok(Value::Null);
        }
        let now = self.clock.now();
        let (value, emitted) = self.graph.invoke(id, method, args, now)?;
        self.pending.extend(emitted.into_iter().map(|i| (id, i)));
        Ok(value)
    }

    /// Reflectively invokes a method on a named Component Feature.
    ///
    /// # Errors
    ///
    /// Propagates reflective errors.
    pub fn invoke_feature(
        &mut self,
        id: NodeId,
        feature: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CoreError> {
        let now = self.clock.now();
        let (value, emitted) = self.graph.invoke_feature(id, feature, method, args, now)?;
        self.pending.extend(emitted.into_iter().map(|i| (id, i)));
        Ok(value)
    }

    /// All methods a node appears to implement.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] for unknown nodes.
    pub fn methods(&self, id: NodeId) -> Result<Vec<MethodSpec>, CoreError> {
        self.graph.methods(id)
    }

    /// Typed access to an attached Component Feature.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownFeatureName`] when absent or of another
    /// type.
    pub fn with_feature_mut<T: 'static, R>(
        &mut self,
        id: NodeId,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, CoreError> {
        self.graph.with_feature_mut(id, name, f)
    }

    /// Direct access to the graph for read-only traversals.
    pub fn graph(&self) -> &ProcessingGraph {
        &self.graph
    }

    // ------------------------------------------------------------------
    // Supervision (fault policies & health)
    // ------------------------------------------------------------------

    /// Sets the fault policy applied when `id` (or one of its features)
    /// fails or panics. The default is [`FaultPolicy::Propagate`], which
    /// keeps the original abort-on-first-error engine contract; every
    /// other policy contains the fault and keeps the step running.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] for unknown nodes.
    pub fn set_fault_policy(&mut self, id: NodeId, policy: FaultPolicy) -> Result<(), CoreError> {
        if !self.graph.contains(id) {
            return Err(CoreError::UnknownNode(id));
        }
        self.health.set_policy(id, policy);
        Ok(())
    }

    /// The fault policy of `id` ([`FaultPolicy::Propagate`] unless set).
    pub fn fault_policy(&self, id: NodeId) -> FaultPolicy {
        self.health.policy(id)
    }

    /// The supervisor's health record for `id`. Also available via
    /// reflection as `invoke(id, "health", &[])`.
    pub fn node_health(&self, id: NodeId) -> NodeHealth {
        self.health.health(id)
    }

    // ------------------------------------------------------------------
    // Process Channel Layer (PCL) — paper §2.2
    // ------------------------------------------------------------------

    /// The current channels (PCL view), each annotated with the worst
    /// health status among its member components so Channel Features and
    /// the Positioning Layer can reason over pipeline health.
    pub fn channels(&self) -> Vec<ChannelInfo> {
        let mut infos = self.channels.infos();
        for info in &mut infos {
            info.health = info
                .members
                .iter()
                .map(|m| self.health.status(*m))
                .max()
                .unwrap_or_default();
        }
        infos
    }

    /// The channel delivering into `(node, port)`, if any.
    pub fn channel_into(&self, node: NodeId, port: usize) -> Option<ChannelId> {
        self.channels.channel_into(node, port)
    }

    /// Attaches a Channel Feature, validating its declared dependencies.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownChannel`] or
    /// [`CoreError::MissingFeature`] for unsatisfied dependencies.
    pub fn attach_channel_feature(
        &mut self,
        id: ChannelId,
        feature: impl ChannelFeature + 'static,
    ) -> Result<(), CoreError> {
        self.channels
            .attach_feature(&self.graph, id, Box::new(feature))
    }

    /// Detaches a Channel Feature by name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownFeatureName`] when absent.
    pub fn detach_channel_feature(
        &mut self,
        id: ChannelId,
        name: &str,
    ) -> Result<Box<dyn ChannelFeature>, CoreError> {
        self.channels.detach_feature(id, name)
    }

    /// Reflectively invokes a method on an attached Channel Feature — how
    /// Positioning Layer code reaches middleware adaptations.
    ///
    /// # Errors
    ///
    /// Propagates reflective errors.
    pub fn invoke_channel_feature(
        &mut self,
        id: ChannelId,
        feature: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CoreError> {
        self.channels.invoke_feature(id, feature, method, args)
    }

    /// Typed access to an attached Channel Feature (the paper's
    /// `inputChannel.getFeature(Likelihood.class)`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownFeatureName`] when absent or of another
    /// type.
    pub fn with_channel_feature_mut<T: 'static, R>(
        &mut self,
        id: ChannelId,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, CoreError> {
        self.channels.with_feature_mut(id, name, f)
    }

    /// Selects when channels materialize [`DataTree`]s (default:
    /// [`TreePolicy::Lazy`] — trees are built only for channels with an
    /// attached Channel Feature or an active history subscription). The
    /// logical-time bookkeeping always runs, so switching policies or
    /// attaching a feature mid-run yields trees byte-identical to a
    /// channel that materialized all along.
    pub fn set_tree_policy(&mut self, policy: TreePolicy) {
        self.channels.set_policy(policy);
    }

    /// The active tree materialization policy.
    pub fn tree_policy(&self) -> TreePolicy {
        self.channels.policy()
    }

    /// Subscribes to a channel's tree history: the channel retains its
    /// last `capacity` trees (oldest evicted first), and the subscription
    /// itself creates materialization demand under [`TreePolicy::Lazy`].
    /// Resubscribing resizes the retained window.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownChannel`] for unknown channels.
    pub fn subscribe_channel_history(
        &mut self,
        id: ChannelId,
        capacity: usize,
    ) -> Result<(), CoreError> {
        self.channels.subscribe_history(id, capacity)
    }

    /// Ends a channel history subscription, dropping retained trees.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownChannel`] for unknown channels.
    pub fn unsubscribe_channel_history(&mut self, id: ChannelId) -> Result<(), CoreError> {
        self.channels.unsubscribe_history(id)
    }

    /// The retained trees of a channel history subscription, oldest
    /// first (empty without a subscription).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownChannel`] for unknown channels.
    pub fn channel_history(&self, id: ChannelId) -> Result<Vec<DataTree>, CoreError> {
        self.channels.history(id)
    }

    /// Buffer, drop and materialization counters of one channel. Also
    /// available through reflection as `invoke(member, "channel_stats")`
    /// on any member node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownChannel`] for unknown channels.
    pub fn channel_stats(&self, id: ChannelId) -> Result<ChannelStats, CoreError> {
        self.channels.stats(id)
    }

    /// Stands up a synthesizer-produced configuration, re-running
    /// `check` over the embedded [`crate::assembly::GraphConfig`] first
    /// — the acceptance gate for machine-written pipelines. Nothing is
    /// instantiated unless the gate passes, so a stale or corrupted
    /// synthesis artifact can never reach the running graph.
    ///
    /// `perpos-analysis`'s `gate::config_gate` is the intended `check`;
    /// it re-runs the full P001–P014 pass the synthesizer already used
    /// as its own acceptance criterion.
    ///
    /// # Errors
    ///
    /// Propagates `check`'s error without touching the graph, then
    /// behaves like [`crate::assembly::GraphConfig::instantiate`].
    pub fn instantiate_synthesized(
        &mut self,
        synthesized: &crate::assembly::SynthesizedConfig,
        factories: &std::collections::BTreeMap<String, crate::assembly::ComponentFactory>,
        check: &dyn Fn(&crate::assembly::GraphConfig) -> Result<(), CoreError>,
    ) -> Result<std::collections::BTreeMap<String, NodeId>, CoreError> {
        synthesized
            .config
            .instantiate_checked(self, factories, check)
    }

    // ------------------------------------------------------------------
    // Positioning Layer — paper §2.3
    // ------------------------------------------------------------------

    /// The default application sink node (root of the process tree).
    pub fn application_sink(&self) -> NodeId {
        self.app_sink
    }

    /// Requests a location provider matching `criteria` over the default
    /// application sink.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoMatchingProvider`] when the criteria names
    /// kinds that no component in the graph can provide.
    pub fn location_provider(&self, criteria: Criteria) -> Result<LocationProvider, CoreError> {
        if !criteria.kinds().is_empty() {
            let available = self
                .graph
                .node_ids()
                .flat_map(|id| self.graph.effective_provides(id))
                .collect::<Vec<_>>();
            if !criteria.kinds().iter().any(|k| available.contains(&k)) {
                return Err(CoreError::NoMatchingProvider(criteria.to_string()));
            }
        }
        Ok(LocationProvider::new(
            Arc::clone(&self.app_shared),
            criteria,
        ))
    }

    /// Requests a provider with failover: an ordered list of criteria
    /// preferences over the default application sink, of which the
    /// highest-ranked one still fed by healthy (non-quarantined)
    /// pipelines is active. The engine re-resolves after every step;
    /// transitions surface as [`crate::positioning::ProviderEvent`]s.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadArguments`] when `preferences` is empty.
    pub fn failover_provider(
        &mut self,
        preferences: Vec<Criteria>,
    ) -> Result<FailoverProvider, CoreError> {
        if preferences.is_empty() {
            return Err(CoreError::BadArguments {
                method: "failover_provider".into(),
                reason: "at least one criteria preference required".into(),
            });
        }
        let available = self.pref_availability(&preferences);
        let shared = Arc::new(FailoverShared {
            prefs: preferences,
            inner: parking_lot::Mutex::new(FailoverInner {
                active: available.iter().position(|a| *a),
                available,
                events: Vec::new(),
            }),
        });
        self.failovers.push(Arc::clone(&shared));
        Ok(FailoverProvider::new(Arc::clone(&self.app_shared), shared))
    }

    /// Computes which preferences currently have a healthy pipeline: a
    /// preference naming a source technology is available while some
    /// channel has a member whose name starts with that technology name
    /// (case-insensitively) and no quarantined member; a preference
    /// without a source is available while any fully-healthy channel
    /// exists.
    fn pref_availability(&self, prefs: &[Criteria]) -> Vec<bool> {
        let channels = self.channels();
        prefs
            .iter()
            .map(|pref| {
                channels.iter().any(|c| {
                    if c.health == HealthStatus::Quarantined {
                        return false;
                    }
                    match pref.source_name() {
                        Some(src) => {
                            let src = src.to_lowercase();
                            c.member_names
                                .iter()
                                .any(|n| n.to_lowercase().starts_with(&src))
                        }
                        None => true,
                    }
                })
            })
            .collect()
    }

    /// Re-resolves every failover provider against current pipeline
    /// health, firing degraded/recovered events on transitions.
    fn update_failovers(&mut self, now: SimTime) {
        if self.failovers.is_empty() {
            return;
        }
        let shareds = std::mem::take(&mut self.failovers);
        for shared in &shareds {
            let available = self.pref_availability(&shared.prefs);
            shared.apply_availability(available, now);
        }
        self.failovers = shareds;
    }

    /// Creates a named tracked target with its own sink node; connect
    /// sensor pipelines to `target.node()`.
    pub fn add_target(&mut self, name: impl Into<String>) -> Target {
        let name = name.into();
        let (sink, shared) = ApplicationSink::new(name.clone());
        let node = self.graph.add(Box::new(sink));
        self.channels.recompute(&self.graph);
        let target = Target { name, node, shared };
        self.targets.push(target.clone());
        target
    }

    /// The registered targets.
    pub fn targets(&self) -> &[Target] {
        &self.targets
    }

    /// The k nearest targets to a reference position, by each target's
    /// most recent reported position — the "k-nearest targets" query the
    /// Positioning Layer offers (paper §2). Targets that have not
    /// reported a position yet are skipped.
    pub fn k_nearest_targets(
        &self,
        from: &perpos_geo::Wgs84,
        k: usize,
    ) -> Vec<(String, crate::data::Position, f64)> {
        let mut out: Vec<(String, crate::data::Position, f64)> = self
            .targets
            .iter()
            .filter_map(|t| {
                let pos = t.provider(Criteria::new()).last_position()?;
                let d = pos.coord().distance_m(from);
                Some((t.name().to_string(), pos, d))
            })
            .collect();
        out.sort_by(|a, b| a.2.total_cmp(&b.2));
        out.truncate(k);
        out
    }

    // ------------------------------------------------------------------
    // Distribution (simulated D-OSGi, paper §3.3)
    // ------------------------------------------------------------------

    /// Distributes the graph over hosts: items crossing host boundaries
    /// travel through the deployment's link model (latency/loss) instead
    /// of being delivered synchronously.
    pub fn set_deployment(&mut self, deployment: Deployment) {
        self.deployment = Some(deployment);
    }

    /// The active deployment, if the graph is distributed.
    pub fn deployment(&self) -> Option<&Deployment> {
        self.deployment.as_ref()
    }

    /// Removes the deployment; the graph becomes co-located again.
    /// In-flight messages are dropped.
    pub fn clear_deployment(&mut self) -> Option<Deployment> {
        self.deployment.take()
    }

    // ------------------------------------------------------------------
    // Checkpoint / restore (fleet runtime)
    // ------------------------------------------------------------------

    /// Captures a versioned checkpoint of this instance's dynamic state:
    /// logical time, per-channel ring state and history, supervision
    /// records, pending reflective emissions, the deployment's link state
    /// and whatever opaque state components and features expose through
    /// [`Component::snapshot_state`]. See [`crate::fleet::snapshot`] for
    /// the format and its version rules.
    pub fn snapshot(&self) -> Snapshot {
        let mut component_state = Vec::new();
        let mut feature_state = Vec::new();
        for id in self.graph.node_ids() {
            if let Some(node) = self.graph.node(id) {
                if let Some(state) = node.component.snapshot_state() {
                    component_state.push((id, state));
                }
                for (fi, slot) in node.features.iter().enumerate() {
                    if let Some(state) = slot.feature.snapshot_state() {
                        feature_state.push(((id, fi), state));
                    }
                }
            }
        }
        Snapshot {
            version: SNAPSHOT_VERSION,
            structure: structure_signature(&self.graph),
            now: self.clock.now(),
            steps_run: self.steps_run,
            exec_mode: self.executor.mode(),
            channels: self.channels.snapshot(),
            health: self.health.clone(),
            // Snapshot seam: captured items must not carry provenance
            // into arena slots the restored instance will never own.
            pending: self.pending.iter().map(|(n, i)| (*n, i.detached())).collect(),
            deployment: self.deployment.clone(),
            component_state,
            feature_state,
        }
    }

    /// Restores a checkpoint taken with [`Middleware::snapshot`] into
    /// this instance, which must be structurally identical to the one
    /// the snapshot was taken from — same nodes, wiring and feature
    /// stacks, typically because both were built by the same factory.
    ///
    /// After a successful restore, stepping this instance produces
    /// byte-identical trees, history and health to the original stepped
    /// without interruption (the contract `tests/fleet_recovery.rs`
    /// pins down).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ComponentFailure`] without touching the
    /// instance when the snapshot version or the graph structure does
    /// not match.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), CoreError> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(CoreError::ComponentFailure {
                component: "snapshot".into(),
                reason: format!(
                    "snapshot version {} does not match build version {SNAPSHOT_VERSION}",
                    snap.version
                ),
            });
        }
        if snap.structure != structure_signature(&self.graph) {
            return Err(CoreError::ComponentFailure {
                component: "snapshot".into(),
                reason: "snapshot structure does not match this graph".into(),
            });
        }
        self.channels.restore(&snap.channels)?;
        // Outstanding interned payloads stay valid behind their Arcs;
        // the arena just stops trying to recycle their slots.
        self.arena.reset();
        self.clock = SimClock::new();
        self.clock.advance(snap.now.since(SimTime::ZERO));
        self.steps_run = snap.steps_run;
        self.pending = snap.pending.clone();
        self.health = snap.health.clone();
        self.deployment = snap.deployment.clone();
        self.set_executor(snap.exec_mode);
        for (id, state) in &snap.component_state {
            if let Some(node) = self.graph.node_mut(*id) {
                node.component.restore_state(state);
            }
        }
        for ((id, fi), state) in &snap.feature_state {
            if let Some(slot) = self
                .graph
                .node_mut(*id)
                .and_then(|n| n.features.get_mut(*fi))
            {
                slot.feature.restore_state(state);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Engine
    // ------------------------------------------------------------------

    /// Runs one engine step at the current simulated time: ticks all
    /// sources and propagates emissions through the graph to quiescence.
    ///
    /// Every per-node unit of work (a source tick, or one item's feature
    /// dispatch + delivery) runs under the node's [`FaultPolicy`], with
    /// panics contained as faults. Quarantined nodes are skipped until
    /// their backoff elapses, then probed once and reinstated on success.
    ///
    /// # Errors
    ///
    /// Aborts on the first failure of a node whose policy is
    /// [`FaultPolicy::Propagate`] (the default) and surfaces it; faults
    /// of nodes under any other policy are contained.
    pub fn step(&mut self) -> Result<(), CoreError> {
        let now = self.clock.now();
        self.steps_run += 1;
        let pending = std::mem::take(&mut self.pending);
        let arena = self.arena_enabled.then_some(&mut self.arena);
        let mut ctx = EngineCtx::new(
            &mut self.graph,
            &mut self.channels,
            &mut self.health,
            self.deployment.as_mut(),
            now,
            arena,
            self.steps_run - 1,
        );
        self.executor.step(&mut ctx, pending)?;
        self.update_failovers(now);
        Ok(())
    }

    /// Selects the execution policy for subsequent steps (default:
    /// [`ExecMode::Sequential`]). Both policies produce identical
    /// channel data trees and health outcomes for the same trace; see
    /// [`crate::executor`] for the contract and its caveats.
    pub fn set_executor(&mut self, mode: ExecMode) {
        if self.executor.mode() != mode {
            self.executor = executor_for(mode);
        }
    }

    /// The active execution mode.
    pub fn executor_mode(&self) -> ExecMode {
        self.executor.mode()
    }

    /// Installs a specific executor instance, for callers that need
    /// more than a mode name — e.g.
    /// [`LevelParallel::with_workers`](crate::executor::LevelParallel::with_workers)
    /// to force a worker count regardless of the machine.
    pub fn install_executor(&mut self, executor: Box<dyn Executor>) {
        self.executor = executor;
    }

    /// Runs `steps` engine steps back to back, advancing the clock by
    /// `tick` after every completed step — equivalent to a
    /// [`Middleware::step`]/[`Middleware::advance_clock`] loop, but the
    /// whole batch runs inside one executor entry, hoisting per-step
    /// setup (source lists, queues, routing scratch) out of the inner
    /// loop. Failover providers force the step-by-step path, since they
    /// re-resolve against pipeline health after every step.
    ///
    /// # Errors
    ///
    /// Propagates the first step error; steps up to and including the
    /// failing one are reflected in [`Middleware::steps_run`] and the
    /// clock, exactly as the equivalent loop would leave them.
    pub fn step_batch(&mut self, steps: u64, tick: SimDuration) -> Result<(), CoreError> {
        if steps == 0 {
            return Ok(());
        }
        if tick.is_zero() || !self.failovers.is_empty() {
            for _ in 0..steps {
                self.step()?;
                self.clock.advance(tick);
            }
            return Ok(());
        }
        let start = self.clock.now();
        let pending = std::mem::take(&mut self.pending);
        let arena = self.arena_enabled.then_some(&mut self.arena);
        let mut ctx = EngineCtx::new(
            &mut self.graph,
            &mut self.channels,
            &mut self.health,
            self.deployment.as_mut(),
            start,
            arena,
            self.steps_run,
        );
        let result = self.executor.step_batch(&mut ctx, pending, steps, tick);
        // The executor advances ctx.now past each completed step, so the
        // elapsed time recovers the completed-step count on error.
        let elapsed = ctx.now.since(start);
        let completed = elapsed.as_micros() / tick.as_micros();
        self.steps_run += completed + u64::from(result.is_err());
        self.clock.advance(elapsed);
        result
    }

    /// Ingests a pre-lexed block of trace lines through `source`: each
    /// line runs as one engine step in which the source emits the line
    /// as a [`Value::Text`] item of `kind` instead of being ticked. The
    /// engine machinery is exactly [`Middleware::step_batch`]'s — produce
    /// features, routing, channel bookkeeping, supervision, failover
    /// re-resolution — with the line text interned straight into the
    /// payload arena, so the per-line path allocates nothing in steady
    /// state. Returns the number of lines ingested (= steps run).
    ///
    /// Pair with a block lexer (e.g. `perpos-sensors`' `scan_block`)
    /// that validates raw chunks and strips malformed lines first.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownNode`] when `source` is not in the graph;
    /// otherwise the same fault semantics as [`Middleware::step_batch`].
    pub fn ingest_batch(
        &mut self,
        source: NodeId,
        kind: DataKind,
        lines: &[&str],
        tick: SimDuration,
    ) -> Result<u64, CoreError> {
        let start = self.clock.now();
        let pending = std::mem::take(&mut self.pending);
        let arena = self.arena_enabled.then_some(&mut self.arena);
        let mut ctx = EngineCtx::new(
            &mut self.graph,
            &mut self.channels,
            &mut self.health,
            self.deployment.as_mut(),
            start,
            arena,
            self.steps_run,
        );
        let result = self
            .executor
            .ingest_batch(&mut ctx, pending, source, &kind, lines, tick);
        let elapsed = ctx.now.since(start);
        self.clock.advance(elapsed);
        // On a propagated fault the completed-line count is recovered
        // from the elapsed time, mirroring `step_batch`'s accounting.
        let completed = match &result {
            Ok(n) => *n,
            Err(_) if !tick.is_zero() => elapsed.as_micros() / tick.as_micros(),
            Err(_) => 0,
        };
        self.steps_run += completed + u64::from(result.is_err());
        self.update_failovers(self.clock.now());
        result
    }

    /// Slot-traffic counters of the payload arena (interned, recycled,
    /// escaped, live/cooling/free depths) — the observability surface the
    /// reclamation tests assert against.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Enables or disables payload-arena interning for subsequent steps
    /// (default: enabled). Disabled, every owned-value emission allocates
    /// fresh behind a plain `Arc`; all observable output is byte-identical
    /// either way. The equivalence suite flips this to prove it.
    pub fn set_arena_enabled(&mut self, enabled: bool) {
        self.arena_enabled = enabled;
    }

    /// Whether payload-arena interning is enabled.
    pub fn arena_enabled(&self) -> bool {
        self.arena_enabled
    }

    /// Advances simulated time by `tick` after each step until `total`
    /// has elapsed. Runs as one [`Middleware::step_batch`] call.
    ///
    /// # Errors
    ///
    /// Propagates the first step error.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero.
    pub fn run_for(&mut self, total: SimDuration, tick: SimDuration) -> Result<(), CoreError> {
        assert!(!tick.is_zero(), "tick duration must be non-zero");
        let steps = total.as_micros().div_ceil(tick.as_micros());
        self.step_batch(steps, tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{ComponentCtx, FnProcessor, FnSource};
    use crate::data::{kinds, Position};
    use crate::feature::{FeatureAction, FeatureDescriptor, FeatureHost, TagFeature};
    use perpos_geo::Wgs84;
    use std::any::Any;

    fn wgs(lat: f64, lon: f64) -> Wgs84 {
        Wgs84::new(lat, lon, 0.0).unwrap()
    }

    fn position_source(mw: &mut Middleware, name: &str, lat: f64, lon: f64) -> NodeId {
        mw.add_component(FnSource::new(name, kinds::POSITION_WGS84, move |_| {
            Some(Value::from(Position::new(wgs(lat, lon), Some(5.0))))
        }))
    }

    #[test]
    fn pipeline_delivers_to_provider() {
        let mut mw = Middleware::new();
        let src = position_source(&mut mw, "gps", 56.0, 10.0);
        let app = mw.application_sink();
        mw.connect(src, app, 0).unwrap();
        mw.run_for(SimDuration::from_secs(1), SimDuration::from_millis(100))
            .unwrap();
        let provider = mw
            .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
            .unwrap();
        assert!(provider.last_position().is_some());
        assert_eq!(provider.delivered_count(), 10);
        assert_eq!(mw.steps_run(), 10);
    }

    #[test]
    fn provider_requires_available_kind() {
        let mw = Middleware::new();
        assert!(matches!(
            mw.location_provider(Criteria::new().kind(kinds::POSITION_WGS84)),
            Err(CoreError::NoMatchingProvider(_))
        ));
        // Criteria with no kinds always succeeds.
        assert!(mw.location_provider(Criteria::new()).is_ok());
    }

    #[test]
    fn produce_features_transform_data() {
        let mut mw = Middleware::new();
        let src = position_source(&mut mw, "gps", 56.0, 10.0);
        mw.attach_feature(
            src,
            TagFeature::new("SourceTag", "source", Value::from("gps")),
        )
        .unwrap();
        let app = mw.application_sink();
        mw.connect(src, app, 0).unwrap();
        mw.run_for(SimDuration::from_millis(100), SimDuration::from_millis(100))
            .unwrap();
        let provider = mw.location_provider(Criteria::new().source("gps")).unwrap();
        assert!(provider.last_item().is_some());
    }

    #[test]
    fn consume_features_can_drop() {
        struct DropAll;
        impl ComponentFeature for DropAll {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("DropAll")
            }
            fn on_consume(
                &mut self,
                _item: DataItem,
                _host: &mut FeatureHost<'_>,
            ) -> Result<FeatureAction, CoreError> {
                Ok(FeatureAction::Drop)
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut mw = Middleware::new();
        let src = position_source(&mut mw, "gps", 56.0, 10.0);
        let app = mw.application_sink();
        mw.attach_feature(app, DropAll).unwrap();
        mw.connect(src, app, 0).unwrap();
        mw.run_for(SimDuration::from_secs(1), SimDuration::from_millis(100))
            .unwrap();
        let provider = mw.location_provider(Criteria::new()).unwrap();
        assert_eq!(provider.delivered_count(), 0);
    }

    #[test]
    fn feature_cannot_change_kind() {
        struct KindChanger;
        impl ComponentFeature for KindChanger {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("KindChanger")
            }
            fn on_produce(
                &mut self,
                mut item: DataItem,
                _host: &mut FeatureHost<'_>,
            ) -> Result<FeatureAction, CoreError> {
                item.kind = kinds::RAW_STRING;
                Ok(FeatureAction::Continue(item))
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut mw = Middleware::new();
        let src = position_source(&mut mw, "gps", 56.0, 10.0);
        mw.attach_feature(src, KindChanger).unwrap();
        let app = mw.application_sink();
        mw.connect(src, app, 0).unwrap();
        assert!(matches!(mw.step(), Err(CoreError::ComponentFailure { .. })));
    }

    #[test]
    fn feature_added_data_reaches_accepting_ports() {
        // A feature on the source adds room-id items; the sink accepts
        // anything, so both kinds arrive.
        struct RoomAdder;
        impl ComponentFeature for RoomAdder {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("RoomAdder").adds(kinds::POSITION_ROOM)
            }
            fn on_produce(
                &mut self,
                item: DataItem,
                host: &mut FeatureHost<'_>,
            ) -> Result<FeatureAction, CoreError> {
                host.emit_value(kinds::POSITION_ROOM, Value::from("R1"));
                Ok(FeatureAction::Continue(item))
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut mw = Middleware::new();
        let src = position_source(&mut mw, "gps", 56.0, 10.0);
        mw.attach_feature(src, RoomAdder).unwrap();
        let app = mw.application_sink();
        mw.connect(src, app, 0).unwrap();
        mw.step().unwrap();
        let rooms = mw
            .location_provider(Criteria::new().kind(kinds::POSITION_ROOM))
            .unwrap();
        assert_eq!(rooms.last_item().unwrap().payload.as_text(), Some("R1"));
    }

    #[test]
    fn multi_stage_pipeline_and_channels() {
        let mut mw = Middleware::new();
        let src = mw.add_component(FnSource::new("gps", kinds::RAW_STRING, |_| {
            Some(Value::from("$GPGGA"))
        }));
        let parser = mw.add_component(FnProcessor::new(
            "parser",
            vec![kinds::RAW_STRING],
            kinds::NMEA_SENTENCE,
            |i| Some(i.payload.clone()),
        ));
        let app = mw.application_sink();
        mw.connect(src, parser, 0).unwrap();
        mw.connect(parser, app, 0).unwrap();
        let chans = mw.channels();
        assert_eq!(chans.len(), 1);
        assert_eq!(chans[0].member_names, vec!["gps", "parser"]);
        assert_eq!(chans[0].endpoint, Some((app, 0)));
        mw.step().unwrap();
        let p = mw.location_provider(Criteria::new()).unwrap();
        assert_eq!(p.last_item().unwrap().kind, kinds::NMEA_SENTENCE);
    }

    #[test]
    fn channel_feature_sees_trees() {
        struct TreeCounter {
            trees: usize,
            elements: usize,
        }
        impl ChannelFeature for TreeCounter {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("TreeCounter")
            }
            fn apply(
                &mut self,
                tree: &crate::channel::DataTree,
                _host: &mut crate::channel::ChannelHost<'_>,
            ) -> Result<(), CoreError> {
                self.trees += 1;
                self.elements += tree.len();
                Ok(())
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut mw = Middleware::new();
        let src = mw.add_component(FnSource::new("gps", kinds::RAW_STRING, |_| {
            Some(Value::from("raw"))
        }));
        let parser = mw.add_component(FnProcessor::new(
            "parser",
            vec![kinds::RAW_STRING],
            kinds::NMEA_SENTENCE,
            |i| Some(i.payload.clone()),
        ));
        let app = mw.application_sink();
        mw.connect(src, parser, 0).unwrap();
        mw.connect(parser, app, 0).unwrap();
        let channel = mw.channel_into(app, 0).unwrap();
        mw.attach_channel_feature(
            channel,
            TreeCounter {
                trees: 0,
                elements: 0,
            },
        )
        .unwrap();
        mw.run_for(SimDuration::from_millis(300), SimDuration::from_millis(100))
            .unwrap();
        let (trees, elements) = mw
            .with_channel_feature_mut::<TreeCounter, (usize, usize)>(channel, "TreeCounter", |f| {
                (f.trees, f.elements)
            })
            .unwrap();
        assert_eq!(trees, 3);
        assert_eq!(elements, 6); // each tree: 1 nmea + 1 raw string
    }

    #[test]
    fn mid_run_channel_feature_attachment_preserves_logical_time() {
        struct Ranges(Vec<u64>);
        impl ChannelFeature for Ranges {
            fn descriptor(&self) -> crate::feature::FeatureDescriptor {
                crate::feature::FeatureDescriptor::new("Ranges")
            }
            fn apply(
                &mut self,
                tree: &crate::channel::DataTree,
                _h: &mut crate::channel::ChannelHost<'_>,
            ) -> Result<(), CoreError> {
                self.0.push(tree.root.logical);
                Ok(())
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut mw = Middleware::new();
        let src = mw.add_component(FnSource::new("src", kinds::RAW_STRING, |_| {
            Some(Value::Int(1))
        }));
        let stage = mw.add_component(FnProcessor::new(
            "stage",
            vec![kinds::RAW_STRING],
            kinds::RAW_STRING,
            |i| Some(i.payload.clone()),
        ));
        let app = mw.application_sink();
        mw.connect(src, stage, 0).unwrap();
        mw.connect(stage, app, 0).unwrap();
        // Run 3 steps before attaching: logical time advances unseen.
        for _ in 0..3 {
            mw.step().unwrap();
            mw.advance_clock(SimDuration::from_millis(10));
        }
        let channel = mw.channel_into(app, 0).unwrap();
        mw.attach_channel_feature(channel, Ranges(Vec::new()))
            .unwrap();
        for _ in 0..2 {
            mw.step().unwrap();
            mw.advance_clock(SimDuration::from_millis(10));
        }
        let logicals = mw
            .with_channel_feature_mut::<Ranges, Vec<u64>>(channel, "Ranges", |r| r.0.clone())
            .unwrap();
        // Attaching a feature does not reset the channel's logical clock:
        // the first observed outputs are #4 and #5.
        assert_eq!(logicals, vec![4, 5]);
    }

    #[test]
    fn runtime_insertion_takes_effect() {
        let mut mw = Middleware::new();
        let mut counter = 0;
        let src = mw.add_component(FnSource::new("s", kinds::RAW_STRING, move |_| {
            counter += 1;
            Some(Value::Int(counter))
        }));
        let app = mw.application_sink();
        mw.connect(src, app, 0).unwrap();
        mw.step().unwrap();

        // Insert a filter dropping odd numbers mid-flight.
        let filter = mw.add_component(FnProcessor::new(
            "even-only",
            vec![kinds::RAW_STRING],
            kinds::RAW_STRING,
            |i| match i.payload.as_i64() {
                Some(v) if v % 2 == 0 => Some(i.payload.clone()),
                _ => None,
            },
        ));
        mw.insert_between(filter, src, app, 0).unwrap();
        for _ in 0..4 {
            mw.clock.advance(SimDuration::from_millis(100));
            mw.step().unwrap();
        }
        let p = mw.location_provider(Criteria::new()).unwrap();
        let values: Vec<i64> = p
            .history()
            .iter()
            .filter_map(|i| i.payload.as_i64())
            .collect();
        assert_eq!(values, vec![1, 2, 4], "1 pre-insertion, then evens only");
    }

    #[test]
    fn targets_have_independent_sinks() {
        let mut mw = Middleware::new();
        let t1 = mw.add_target("alice");
        let t2 = mw.add_target("bob");
        let s1 = position_source(&mut mw, "gps-alice", 10.0, 10.0);
        let s2 = position_source(&mut mw, "gps-bob", 20.0, 20.0);
        mw.connect(s1, t1.node(), 0).unwrap();
        mw.connect(s2, t2.node(), 0).unwrap();
        mw.step().unwrap();
        let p1 = t1.provider(Criteria::new());
        let p2 = t2.provider(Criteria::new());
        assert_eq!(p1.last_position().unwrap().coord().lat_deg(), 10.0);
        assert_eq!(p2.last_position().unwrap().coord().lat_deg(), 20.0);
        assert_eq!(mw.targets().len(), 2);
    }

    #[test]
    fn merge_component_heads_its_own_channel() {
        // Two sources into a merge, merge into the app: the PCL must
        // derive three channels — one per source ending at the merge, and
        // one headed at the merge ending at the app (paper Fig. 2).
        struct Merge;
        impl Component for Merge {
            fn descriptor(&self) -> crate::component::ComponentDescriptor {
                crate::component::ComponentDescriptor::merge(
                    "fusion",
                    vec![
                        crate::component::InputSpec::new("a", vec![]),
                        crate::component::InputSpec::new("b", vec![]),
                    ],
                    vec![kinds::POSITION_WGS84],
                )
            }
            fn on_input(
                &mut self,
                _p: usize,
                item: DataItem,
                ctx: &mut ComponentCtx<'_>,
            ) -> Result<(), CoreError> {
                ctx.emit(DataItem::new(
                    kinds::POSITION_WGS84,
                    ctx.now(),
                    item.payload,
                ));
                Ok(())
            }
        }
        let mut mw = Middleware::new();
        let s1 = position_source(&mut mw, "gps", 10.0, 10.0);
        let s2 = position_source(&mut mw, "wifi", 11.0, 11.0);
        let merge = mw.add_component(Merge);
        let app = mw.application_sink();
        mw.connect(s1, merge, 0).unwrap();
        mw.connect(s2, merge, 1).unwrap();
        mw.connect(merge, app, 0).unwrap();

        let channels = mw.channels();
        assert_eq!(channels.len(), 3);
        let by_head: std::collections::BTreeMap<String, &crate::channel::ChannelInfo> = channels
            .iter()
            .map(|c| (c.member_names[0].clone(), c))
            .collect();
        assert_eq!(by_head["gps"].endpoint, Some((merge, 0)));
        assert_eq!(by_head["wifi"].endpoint, Some((merge, 1)));
        assert_eq!(by_head["fusion"].endpoint, Some((app, 0)));

        // Trees flow on all three channels.
        struct Count(usize);
        impl ChannelFeature for Count {
            fn descriptor(&self) -> crate::feature::FeatureDescriptor {
                crate::feature::FeatureDescriptor::new("Count")
            }
            fn apply(
                &mut self,
                _t: &crate::channel::DataTree,
                _h: &mut crate::channel::ChannelHost<'_>,
            ) -> Result<(), CoreError> {
                self.0 += 1;
                Ok(())
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let merge_channel = mw.channel_into(app, 0).unwrap();
        assert_eq!(merge_channel.head(), merge);
        mw.attach_channel_feature(merge_channel, Count(0)).unwrap();
        mw.step().unwrap();
        let n = mw
            .with_channel_feature_mut::<Count, usize>(merge_channel, "Count", |c| c.0)
            .unwrap();
        // Each source delivers one item; the merge emits per input.
        assert_eq!(n, 2);
        // The merge channel's trees are rooted at the merge output.
        let p = mw.location_provider(Criteria::new()).unwrap();
        assert_eq!(p.delivered_count(), 2);
    }

    #[test]
    fn k_nearest_targets_orders_by_distance() {
        let mut mw = Middleware::new();
        let near = mw.add_target("near");
        let far = mw.add_target("far");
        let silent = mw.add_target("silent");
        let s1 = position_source(&mut mw, "gps-near", 10.0, 10.0);
        let s2 = position_source(&mut mw, "gps-far", 20.0, 20.0);
        mw.connect(s1, near.node(), 0).unwrap();
        mw.connect(s2, far.node(), 0).unwrap();
        mw.step().unwrap();
        let from = wgs(10.0, 10.0);
        let nearest = mw.k_nearest_targets(&from, 5);
        // "silent" never reported and is skipped.
        assert_eq!(nearest.len(), 2);
        assert_eq!(nearest[0].0, "near");
        assert_eq!(nearest[1].0, "far");
        assert!(nearest[0].2 < nearest[1].2);
        // k truncates.
        assert_eq!(mw.k_nearest_targets(&from, 1).len(), 1);
        let _ = silent;
    }

    /// A source failing on ticks where `fail(counter)` is true, emitting
    /// a raw string otherwise; `on_reset` clears the counter.
    struct Flaky<F: Fn(u64) -> bool + Send> {
        counter: u64,
        resets: u64,
        fail: F,
    }
    impl<F: Fn(u64) -> bool + Send> Flaky<F> {
        fn new(fail: F) -> Self {
            Flaky {
                counter: 0,
                resets: 0,
                fail,
            }
        }
    }
    impl<F: Fn(u64) -> bool + Send> Component for Flaky<F> {
        fn descriptor(&self) -> crate::component::ComponentDescriptor {
            crate::component::ComponentDescriptor::source("flaky", vec![kinds::RAW_STRING])
        }
        fn on_input(
            &mut self,
            _p: usize,
            _i: DataItem,
            _c: &mut ComponentCtx<'_>,
        ) -> Result<(), CoreError> {
            Ok(())
        }
        fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
            self.counter += 1;
            if (self.fail)(self.counter) {
                return Err(CoreError::ComponentFailure {
                    component: "flaky".into(),
                    reason: "simulated fault".into(),
                });
            }
            ctx.emit_value(kinds::RAW_STRING, Value::from("ok"));
            Ok(())
        }
        fn invoke(&mut self, method: &str, _args: &[Value]) -> Result<Value, CoreError> {
            match method {
                "resets" => Ok(Value::Int(self.resets as i64)),
                m => Err(CoreError::NoSuchMethod {
                    target: "flaky".into(),
                    method: m.into(),
                }),
            }
        }
        fn on_reset(&mut self) {
            self.counter = 0;
            self.resets += 1;
        }
    }

    fn run_steps(mw: &mut Middleware, n: usize) {
        for _ in 0..n {
            mw.step().unwrap();
            mw.advance_clock(SimDuration::from_secs(1));
        }
    }

    #[test]
    fn drop_item_policy_contains_errors() {
        let mut mw = Middleware::new();
        let flaky = mw.add_component(Flaky::new(|c| c % 2 == 0));
        let app = mw.application_sink();
        mw.connect(flaky, app, 0).unwrap();
        mw.set_fault_policy(flaky, FaultPolicy::DropItem).unwrap();
        run_steps(&mut mw, 10);
        let p = mw.location_provider(Criteria::new()).unwrap();
        assert_eq!(p.delivered_count(), 5, "odd ticks still deliver");
        let h = mw.node_health(flaky);
        assert_eq!(h.faults, 5);
        assert_eq!(h.status, crate::supervision::HealthStatus::Degraded);
        assert!(h.last_error.as_deref().unwrap().contains("simulated fault"));
    }

    #[test]
    fn restart_policy_resets_the_component() {
        let mut mw = Middleware::new();
        // Fails every third call; a reset restarts the count, so under
        // the Restart policy the component keeps coming back.
        let flaky = mw.add_component(Flaky::new(|c| c == 3));
        let app = mw.application_sink();
        mw.connect(flaky, app, 0).unwrap();
        mw.set_fault_policy(flaky, FaultPolicy::Restart).unwrap();
        run_steps(&mut mw, 9);
        assert_eq!(mw.invoke(flaky, "resets", &[]).unwrap(), Value::Int(3));
        let h = mw.node_health(flaky);
        assert_eq!(h.faults, 3);
        assert_eq!(h.restarts, 3);
        let p = mw.location_provider(Criteria::new()).unwrap();
        assert_eq!(p.delivered_count(), 6);
    }

    #[test]
    fn panic_is_contained_as_fault() {
        struct Panics;
        impl Component for Panics {
            fn descriptor(&self) -> crate::component::ComponentDescriptor {
                crate::component::ComponentDescriptor::source("panicky", vec![kinds::RAW_STRING])
            }
            fn on_input(
                &mut self,
                _p: usize,
                _i: DataItem,
                _c: &mut ComponentCtx<'_>,
            ) -> Result<(), CoreError> {
                Ok(())
            }
            fn on_tick(&mut self, _ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
                panic!("boom in on_tick");
            }
        }
        let mut mw = Middleware::new();
        let p = mw.add_component(Panics);
        mw.set_fault_policy(p, FaultPolicy::DropItem).unwrap();
        mw.step().unwrap();
        let h = mw.node_health(p);
        assert_eq!(h.faults, 1);
        assert!(h.last_error.as_deref().unwrap().contains("boom in on_tick"));
        // Without a policy the panic surfaces as an error.
        mw.set_fault_policy(p, FaultPolicy::Propagate).unwrap();
        let err = mw.step().unwrap_err();
        assert!(matches!(err, CoreError::ComponentFailure { .. }));
        assert!(err.to_string().contains("panic"));
    }

    #[test]
    fn quarantine_probe_and_reinstate() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let down = Arc::new(AtomicBool::new(true));
        let mut mw = Middleware::new();
        let src = mw.add_component(TechSource {
            name: "gps".into(),
            lat: 1.0,
            failing: Arc::clone(&down),
        });
        let app = mw.application_sink();
        mw.connect(src, app, 0).unwrap();
        mw.set_fault_policy(
            src,
            FaultPolicy::Quarantine {
                max_faults: 2,
                window: SimDuration::from_secs(10),
                backoff: SimDuration::from_secs(3),
            },
        )
        .unwrap();
        // t=0 fault 1, t=1 fault 2 -> breaker opens until t=4.
        run_steps(&mut mw, 2);
        assert_eq!(
            mw.node_health(src).status,
            crate::supervision::HealthStatus::Quarantined
        );
        // t=2, t=3: skipped — the open breaker stops all calls.
        run_steps(&mut mw, 2);
        assert_eq!(mw.node_health(src).faults, 2);
        // t=4: probe while still down -> breaker reopens, backoff
        // doubled to 6 s (until t=10).
        run_steps(&mut mw, 1);
        let h = mw.node_health(src);
        assert_eq!(h.status, crate::supervision::HealthStatus::Quarantined);
        assert_eq!(h.quarantines, 2);
        assert_eq!(h.faults, 3);
        // t=5..=9: skipped. The sensor comes back before the next probe.
        run_steps(&mut mw, 5);
        down.store(false, Ordering::Relaxed);
        // t=10: probe succeeds -> reinstated, flow resumes.
        run_steps(&mut mw, 1);
        assert_eq!(
            mw.node_health(src).status,
            crate::supervision::HealthStatus::Healthy
        );
        let p = mw.location_provider(Criteria::new()).unwrap();
        assert_eq!(p.delivered_count(), 1, "probe output was delivered");
        run_steps(&mut mw, 3);
        assert_eq!(p.delivered_count(), 4, "flow fully restored");
    }

    #[test]
    fn health_is_reflective() {
        let mut mw = Middleware::new();
        let flaky = mw.add_component(Flaky::new(|_| true));
        mw.set_fault_policy(flaky, FaultPolicy::DropItem).unwrap();
        mw.step().unwrap();
        let Value::Map(m) = mw.invoke(flaky, "health", &[]).unwrap() else {
            panic!("health must be a map");
        };
        assert_eq!(m["status"], Value::from("degraded"));
        assert_eq!(m["faults"], Value::Int(1));
        // Unknown nodes still error.
        mw.remove_component(flaky).unwrap();
        assert!(matches!(
            mw.invoke(flaky, "health", &[]),
            Err(CoreError::UnknownNode(_))
        ));
    }

    #[test]
    fn channel_health_reflects_worst_member() {
        let mut mw = Middleware::new();
        let flaky = mw.add_component(Flaky::new(|_| true));
        let app = mw.application_sink();
        mw.connect(flaky, app, 0).unwrap();
        mw.set_fault_policy(
            flaky,
            FaultPolicy::Quarantine {
                max_faults: 1,
                window: SimDuration::from_secs(10),
                backoff: SimDuration::from_secs(60),
            },
        )
        .unwrap();
        assert_eq!(
            mw.channels()[0].health,
            crate::supervision::HealthStatus::Healthy
        );
        mw.step().unwrap();
        assert_eq!(
            mw.channels()[0].health,
            crate::supervision::HealthStatus::Quarantined
        );
    }

    /// A position source for one technology: emits items tagged with a
    /// `source` attribute, and fails while its shared flag is raised.
    struct TechSource {
        name: String,
        lat: f64,
        failing: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }
    impl Component for TechSource {
        fn descriptor(&self) -> crate::component::ComponentDescriptor {
            crate::component::ComponentDescriptor::source(
                self.name.clone(),
                vec![kinds::POSITION_WGS84],
            )
        }
        fn on_input(
            &mut self,
            _p: usize,
            _i: DataItem,
            _c: &mut ComponentCtx<'_>,
        ) -> Result<(), CoreError> {
            Ok(())
        }
        fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
            if self.failing.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(CoreError::ComponentFailure {
                    component: self.name.clone(),
                    reason: "sensor offline".into(),
                });
            }
            let item = DataItem::new(
                kinds::POSITION_WGS84,
                ctx.now(),
                Value::from(Position::new(wgs(self.lat, 10.0), Some(5.0))),
            )
            .with_attr("source", Value::from(self.name.as_str()));
            ctx.emit(item);
            Ok(())
        }
    }

    #[test]
    fn failover_provider_degrades_and_recovers() {
        use crate::positioning::ProviderEvent;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let gps_down = Arc::new(AtomicBool::new(false));
        let mut mw = Middleware::new();
        let gps = mw.add_component(TechSource {
            name: "gps".into(),
            lat: 1.0,
            failing: Arc::clone(&gps_down),
        });
        let wifi = mw.add_component(TechSource {
            name: "wifi".into(),
            lat: 2.0,
            failing: Arc::new(AtomicBool::new(false)),
        });
        let app = mw.application_sink();
        mw.connect(gps, app, 0).unwrap();
        mw.connect(wifi, app, 1).unwrap();
        mw.set_fault_policy(
            gps,
            FaultPolicy::Quarantine {
                max_faults: 1,
                window: SimDuration::from_secs(10),
                backoff: SimDuration::from_secs(5),
            },
        )
        .unwrap();
        let fp = mw
            .failover_provider(vec![
                Criteria::new().source("gps"),
                Criteria::new().source("wifi"),
            ])
            .unwrap();
        let events = fp.events();
        assert_eq!(fp.active(), Some(0));
        assert!(!fp.is_degraded());

        run_steps(&mut mw, 2);
        assert_eq!(fp.last_position().unwrap().coord().lat_deg(), 1.0);

        // GPS dies: the quarantine opens on the next step and the
        // provider fails over to WiFi.
        gps_down.store(true, Ordering::Relaxed);
        run_steps(&mut mw, 1);
        assert_eq!(fp.active(), Some(1));
        assert!(fp.is_degraded());
        assert_eq!(fp.last_position().unwrap().coord().lat_deg(), 2.0);
        assert!(matches!(
            events.try_recv().unwrap(),
            ProviderEvent::Degraded {
                from: 0,
                to: Some(1),
                ..
            }
        ));

        // Ride out the backoff quarantined, then the sensor comes back:
        // the probe succeeds and the provider recovers to GPS.
        run_steps(&mut mw, 4);
        assert_eq!(fp.active(), Some(1), "still on wifi during backoff");
        gps_down.store(false, Ordering::Relaxed);
        run_steps(&mut mw, 2);
        assert_eq!(fp.active(), Some(0));
        assert!(!fp.is_degraded());
        assert!(matches!(
            events.try_recv().unwrap(),
            ProviderEvent::Recovered {
                from: Some(1),
                to: 0,
                ..
            }
        ));
        assert_eq!(fp.last_position().unwrap().coord().lat_deg(), 1.0);
        // Failover never lost the surface: a position was available from
        // the surviving pipeline the whole time.
        assert_eq!(fp.availability(), vec![true, true]);
    }

    #[test]
    fn failover_provider_rejects_empty_preferences() {
        let mut mw = Middleware::new();
        assert!(matches!(
            mw.failover_provider(vec![]),
            Err(CoreError::BadArguments { .. })
        ));
    }

    #[test]
    fn error_in_component_aborts_step() {
        struct Failing;
        impl Component for Failing {
            fn descriptor(&self) -> crate::component::ComponentDescriptor {
                crate::component::ComponentDescriptor::source("failing", vec![kinds::RAW_STRING])
            }
            fn on_input(
                &mut self,
                _p: usize,
                _i: DataItem,
                _c: &mut ComponentCtx<'_>,
            ) -> Result<(), CoreError> {
                Ok(())
            }
            fn on_tick(&mut self, _ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
                Err(CoreError::ComponentFailure {
                    component: "failing".into(),
                    reason: "simulated fault".into(),
                })
            }
        }
        let mut mw = Middleware::new();
        mw.add_component(Failing);
        assert!(matches!(mw.step(), Err(CoreError::ComponentFailure { .. })));
    }
}
