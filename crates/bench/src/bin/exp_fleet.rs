//! Experiment "fleet" — supervised fleet soak under deterministic chaos,
//! plus the parallel-stepping scaling sweep.
//!
//! A [`FleetPool`] shards thousands of middleware instances and walks the
//! escalation ladder when they fault: in-instance containment first,
//! checkpoint-restart second, shard quarantine third. This soak injects
//! an *environmental* fault schedule — a fraction `fault_rate` of the
//! instances carry a source that fails a step with a small seeded
//! probability, reseeded per incarnation so restarts do not replay the
//! crash out of the restored checkpoint — and measures what supervision
//! buys: fleet availability (live instance-steps over attempted),
//! recovery latency in steps-to-healthy, and sustained items/s, against
//! an unsupervised baseline where the first escaped fault kills the
//! instance for the rest of the run. Swept over instances x pipeline
//! depth x fault-rate.
//!
//! The `scaling` section steps a 102,400-instance fleet under the
//! serial and work-stealing schedulers at several worker counts; the
//! sweep *asserts* the supervision counters are identical across
//! schedulers (the byte-equality contract of
//! `perpos_core::fleet::scheduler`) and records the wall-clock scaling
//! that determinism buys. All counters are deterministic (seeded shim
//! RNG, per-index incarnation counters so restart reseeding is a pure
//! function of the instance, never of scheduler interleaving); only the
//! wall-clock columns vary by machine.
//!
//! Run with: `cargo run -p perpos-bench --bin exp_fleet --release`
//! (pass `--smoke` for the reduced CI check, which re-runs the smoke
//! configuration under the serial *and* work-stealing schedulers,
//! fails unless supervised availability stays >= 0.99 under the 10 %
//! fault rate while beating the unsupervised baseline, fails unless
//! the work-stealing counters match the serial ones, cross-checks the
//! deterministic counters against the committed `BENCH_fleet.json` so
//! the baseline provably regenerates, and — on hosts with >= 2 cores —
//! fails unless 2-worker work stealing beats serial stepping by a
//! calibrated margin).
//!
//! The full sweep (re)writes `BENCH_fleet.json`; the smoke sweep only
//! reads it.

#![allow(clippy::unwrap_used)]
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use perpos_core::component::{ComponentCtx, ComponentDescriptor};
use perpos_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-step failure probability of a faulty instance's source. Chosen so
/// a 10 % faulty fleet stays above the 0.99 availability floor *with*
/// checkpoint-restart but falls well below it without.
const STEP_FAIL_PROB: f64 = 0.015;

/// Rounds each availability configuration runs for.
const ROUNDS: u64 = 96;

/// Rounds each scaling configuration runs for — enough work that the
/// per-round scheduler overhead (cursor churn, chunk barrier) is
/// amortized the way a long soak would amortize it.
const SCALING_ROUNDS: u64 = 48;

/// Instance count of the scaling sweep. Large enough that a shard is a
/// meaningful unit of work and the fleet dwarfs every cache level.
const SCALING_INSTANCES: usize = 102_400;

/// A counting source whose counter rides through checkpoints while its
/// fault schedule stays environmental: the RNG is *not* snapshotted and
/// is reseeded per incarnation, so a restored instance faces fresh
/// weather instead of deterministically replaying its own crash.
struct FlakySource {
    counter: i64,
    rng: Option<StdRng>,
}

impl Component for FlakySource {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::source("flaky", vec![kinds::RAW_STRING])
    }
    fn on_input(
        &mut self,
        _p: usize,
        _i: DataItem,
        _c: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        Ok(())
    }
    fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
        if let Some(rng) = self.rng.as_mut() {
            if rng.gen::<f64>() < STEP_FAIL_PROB {
                return Err(CoreError::ComponentFailure {
                    component: "flaky".to_string(),
                    reason: "injected fault".to_string(),
                });
            }
        }
        self.counter += 1;
        ctx.emit_value(kinds::RAW_STRING, Value::Int(self.counter));
        Ok(())
    }
    fn snapshot_state(&self) -> Option<Value> {
        Some(Value::Int(self.counter))
    }
    fn restore_state(&mut self, state: &Value) {
        if let Some(v) = state.as_i64() {
            self.counter = v;
        }
    }
}

/// Instance factory: every `1/fault_rate`-th instance gets a faulty
/// source, the rest run clean. Restart reseeding uses one incarnation
/// counter *per instance index* — never a factory-global counter — so
/// the seed of incarnation `n` of instance `i` is a pure function of
/// `(i, n)` and the counters stay byte-identical whatever order a
/// parallel scheduler rebuilds crashed instances in.
fn factory(
    depth: usize,
    fault_rate: f64,
    seed: u64,
    capacity: usize,
) -> impl Fn(usize) -> Middleware {
    let incarnations: Arc<Vec<AtomicU64>> =
        Arc::new((0..capacity).map(|_| AtomicU64::new(0)).collect());
    move |index| {
        let stripe = (fault_rate * 100.0).round() as usize;
        let faulty = stripe > 0 && index % 100 < stripe;
        let rng = faulty.then(|| {
            let n = incarnations[index].fetch_add(1, Ordering::Relaxed);
            StdRng::seed_from_u64(
                seed ^ (index as u64).wrapping_mul(0x9E37_79B9) ^ n.wrapping_mul(0xC0FF_EE11),
            )
        });
        let mut mw = Middleware::new();
        let src = mw.add_boxed_component(Box::new(FlakySource { counter: 0, rng }));
        let mut prev = src;
        for d in 0..depth {
            let node = mw.add_component(FnProcessor::new(
                format!("stage{d}"),
                vec![kinds::RAW_STRING],
                kinds::RAW_STRING,
                |item| Some(item.payload.clone()),
            ));
            mw.connect(prev, node, 0).unwrap();
            prev = node;
        }
        let app = mw.application_sink();
        mw.connect_to_sink(prev, app).unwrap();
        mw
    }
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Supervised {
    availability: f64,
    live_steps: u64,
    missed_steps: u64,
    instance_faults: u64,
    restarts: u64,
    cold_restarts: u64,
    quarantines: u64,
    checkpoints: u64,
    mean_recovery_steps: f64,
    wall_s: f64,
    items_per_sec: f64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Unsupervised {
    availability: f64,
    live_steps: u64,
    missed_steps: u64,
    dead_instances: u64,
    wall_s: f64,
    items_per_sec: f64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Sample {
    instances: u64,
    depth: u64,
    fault_rate: f64,
    /// Scheduler the supervised column ran under (availability rows are
    /// all serial; the threads axis lives in the `scaling` section).
    scheduler: String,
    /// Requested worker cap (`1` for serial execution).
    workers: u64,
    supervised: Supervised,
    unsupervised: Unsupervised,
}

/// One row of the threads-axis sweep: the same fleet, the same rounds,
/// a different scheduler. The deterministic counters are asserted equal
/// to the serial row's before the document is written — a scaling row
/// that diverged would be a determinism bug, not a measurement.
#[derive(serde::Serialize, serde::Deserialize)]
struct ScalingSample {
    instances: u64,
    depth: u64,
    fault_rate: f64,
    rounds: u64,
    scheduler: String,
    /// Requested worker cap (`0` = machine-sized).
    workers: u64,
    /// What the cap resolved to on the machine that wrote the document.
    resolved_workers: u64,
    live_steps: u64,
    missed_steps: u64,
    instance_faults: u64,
    restarts: u64,
    cold_restarts: u64,
    quarantines: u64,
    wall_s: f64,
    items_per_sec: f64,
    /// Serial wall time over this row's wall time (1.0 for the serial
    /// row itself).
    speedup_vs_serial: f64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Doc {
    experiment: String,
    cores: u64,
    rounds: u64,
    step_fail_prob: f64,
    results: Vec<Sample>,
    scaling: Vec<ScalingSample>,
}

fn fleet_config(instances: usize, scheduler: FleetScheduler) -> FleetConfig {
    FleetConfig {
        shards: (instances / 320).max(1),
        instances,
        checkpoint_every: 8,
        shard_fault_threshold: 16,
        shard_fault_window: 16,
        shard_backoff: 4,
        seed: 0xf1ee7,
        scheduler,
    }
}

fn run_supervised(
    instances: usize,
    depth: usize,
    fault_rate: f64,
    scheduler: FleetScheduler,
    rounds: u64,
) -> Supervised {
    let mut pool = FleetPool::new(
        fleet_config(instances, scheduler),
        factory(depth, fault_rate, 0xbad5eed, instances),
    );
    let tick = SimDuration::from_millis(100);
    let start = Instant::now();
    pool.run(rounds, tick);
    let secs = start.elapsed().as_secs_f64();
    let stats = pool.stats();
    let cold: u64 = stats.shards.iter().map(|s| s.cold_restarts).sum();
    let warm: u64 = stats.shards.iter().map(|s| s.restarts).sum();
    let checkpoints: u64 = stats.shards.iter().map(|s| s.checkpoints).sum();
    Supervised {
        availability: stats.availability(),
        live_steps: stats.live_steps(),
        missed_steps: stats.missed_steps(),
        instance_faults: stats.instance_faults(),
        restarts: warm,
        cold_restarts: cold,
        quarantines: stats.quarantines(),
        checkpoints,
        mean_recovery_steps: stats.mean_recovery_steps(),
        wall_s: secs,
        items_per_sec: stats.live_steps() as f64 / secs,
    }
}

/// The baseline the supervision tax is judged against: the same fleet
/// stepped with no checkpoints, no restarts and no watchdog — the first
/// fault that escapes containment leaves the instance down for the rest
/// of the soak.
fn run_unsupervised(instances: usize, depth: usize, fault_rate: f64) -> Unsupervised {
    let build = factory(depth, fault_rate, 0xbad5eed, instances);
    let mut fleet: Vec<Option<Middleware>> = (0..instances).map(|i| Some(build(i))).collect();
    let tick = SimDuration::from_millis(100);
    let mut live = 0u64;
    let mut missed = 0u64;
    let start = Instant::now();
    for _ in 0..ROUNDS {
        for slot in &mut fleet {
            match slot {
                Some(mw) => {
                    let before = mw.steps_run();
                    match mw.step_batch(1, tick) {
                        Ok(()) => live += 1,
                        Err(_) => {
                            live += mw.steps_run().saturating_sub(before);
                            missed += 1;
                            *slot = None;
                        }
                    }
                }
                None => missed += 1,
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let dead = fleet.iter().filter(|s| s.is_none()).count() as u64;
    Unsupervised {
        availability: live as f64 / (live + missed) as f64,
        live_steps: live,
        missed_steps: missed,
        dead_instances: dead,
        wall_s: secs,
        items_per_sec: live as f64 / secs,
    }
}

fn measure(instances: usize, depth: usize, fault_rate: f64) -> Sample {
    let scheduler = FleetScheduler::Serial;
    let supervised = run_supervised(instances, depth, fault_rate, scheduler, ROUNDS);
    let unsupervised = run_unsupervised(instances, depth, fault_rate);
    Sample {
        instances: instances as u64,
        depth: depth as u64,
        fault_rate,
        scheduler: scheduler.as_str().to_string(),
        workers: scheduler.requested_workers() as u64,
        supervised,
        unsupervised,
    }
}

fn print_sample(s: &Sample) {
    println!(
        "{:>9} {:>6} {:>6.2} {:>12.4} {:>12.4} {:>7} {:>9} {:>11} {:>9.1} {:>12.0}",
        s.instances,
        s.depth,
        s.fault_rate,
        s.supervised.availability,
        s.unsupervised.availability,
        s.supervised.instance_faults,
        s.supervised.restarts,
        s.supervised.quarantines,
        s.supervised.mean_recovery_steps,
        s.supervised.items_per_sec,
    );
}

/// Runs the threads-axis sweep at [`SCALING_INSTANCES`]: serial first,
/// then work stealing at several worker caps, asserting every parallel
/// row reproduces the serial counters to the last fault before its
/// timing is accepted as a measurement.
fn run_scaling() -> Vec<ScalingSample> {
    let mut rows = Vec::new();
    for &rate in &[0.0f64, 0.10] {
        let schedulers = [
            FleetScheduler::Serial,
            FleetScheduler::WorkStealing { workers: 1 },
            FleetScheduler::WorkStealing { workers: 2 },
            FleetScheduler::WorkStealing { workers: 4 },
            FleetScheduler::WorkStealing { workers: 8 },
        ];
        let counters = |s: &Supervised| {
            (
                s.live_steps,
                s.missed_steps,
                s.instance_faults,
                s.restarts,
                s.cold_restarts,
                s.quarantines,
                s.checkpoints,
            )
        };
        let mut serial: Option<Supervised> = None;
        for scheduler in schedulers {
            // Best-of-3 on the wall clock (the counters must agree
            // across repeats — they are deterministic); a shared or
            // frequency-scaled host makes single passes unusable.
            let mut s = run_supervised(SCALING_INSTANCES, 1, rate, scheduler, SCALING_ROUNDS);
            for _ in 0..2 {
                let again = run_supervised(SCALING_INSTANCES, 1, rate, scheduler, SCALING_ROUNDS);
                assert_eq!(counters(&s), counters(&again), "repeat diverged");
                if again.wall_s < s.wall_s {
                    s = again;
                }
            }
            let speedup = match &serial {
                None => 1.0,
                Some(base) => {
                    assert_eq!(
                        counters(base),
                        counters(&s),
                        "work-stealing counters diverged from serial at rate {rate}"
                    );
                    base.wall_s / s.wall_s
                }
            };
            let row = ScalingSample {
                instances: SCALING_INSTANCES as u64,
                depth: 1,
                fault_rate: rate,
                rounds: SCALING_ROUNDS,
                scheduler: scheduler.as_str().to_string(),
                workers: scheduler.requested_workers() as u64,
                resolved_workers: scheduler.resolved_workers() as u64,
                live_steps: s.live_steps,
                missed_steps: s.missed_steps,
                instance_faults: s.instance_faults,
                restarts: s.restarts,
                cold_restarts: s.cold_restarts,
                quarantines: s.quarantines,
                wall_s: s.wall_s,
                items_per_sec: s.items_per_sec,
                speedup_vs_serial: speedup,
            };
            println!(
                "{:>9} {:>6.2} {:>14} {:>7} {:>9.2}s {:>12.0} {:>8.2}x",
                row.instances,
                row.fault_rate,
                row.scheduler,
                row.workers,
                row.wall_s,
                row.items_per_sec,
                row.speedup_vs_serial,
            );
            if serial.is_none() {
                serial = Some(s);
            }
            rows.push(row);
        }
    }
    rows
}

/// Fixed deterministic integer kernel used to normalize step times
/// across machines of different speed (same kernel as `exp_channel`).
fn calibrate_once() -> f64 {
    let start = Instant::now();
    let mut v = 0x9e3779b97f4a7c15u64;
    for _ in 0..2_000_000 {
        v = std::hint::black_box(v.wrapping_mul(6_364_136_223_846_793_005).rotate_left(17));
    }
    std::hint::black_box(v);
    start.elapsed().as_nanos() as f64 / 1e3
}

/// Calibrated cost (µs per soak pass over kernel µs) of stepping a
/// modest clean fleet under `scheduler`, measured against *bracketing*
/// kernel passes: each timed pass is framed by calibration kernels, its
/// ratio uses the faster of the two frames, and the smallest ratio
/// across passes wins — the same guard idiom as `exp_channel`, so a
/// transient load spike on the CI host cannot fake (or mask) a scaling
/// regression.
fn scheduler_cost(scheduler: FleetScheduler) -> f64 {
    let instances = 8192;
    let mut pool = FleetPool::new(
        fleet_config(instances, scheduler),
        factory(2, 0.0, 0xbad5eed, instances),
    );
    let tick = SimDuration::from_millis(100);
    pool.run(8, tick); // warmup: populate caches, spawn nothing yet
    let mut best = f64::INFINITY;
    let mut frame = calibrate_once();
    for _ in 0..5 {
        let start = Instant::now();
        pool.run(8, tick);
        let us = start.elapsed().as_nanos() as f64 / 1e3;
        let next = calibrate_once();
        best = best.min(us / frame.min(next));
        frame = next;
    }
    best
}

/// The configuration the CI smoke re-runs and cross-checks.
const SMOKE: (usize, usize, f64) = (2048, 1, 0.10);

/// Minimum calibrated serial/work-stealing cost ratio the smoke demands
/// on a host with >= 2 cores. Two honest workers on a share-nothing
/// fleet should approach 2.0; 1.3 leaves room for barrier overhead and
/// a noisy CI neighbour while still catching a scheduler that
/// serializes (ratio ~1.0) or regresses outright.
const SMOKE_MIN_SPEEDUP: f64 = 1.3;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = machine_parallelism();

    println!("=== fleet: supervised soak vs unsupervised baseline ({cores} core(s)) ===\n");
    println!(
        "{:>9} {:>6} {:>6} {:>12} {:>12} {:>7} {:>9} {:>11} {:>9} {:>12}",
        "instances",
        "depth",
        "rate",
        "avail(sup)",
        "avail(raw)",
        "faults",
        "restarts",
        "quarantines",
        "rec steps",
        "items/s"
    );
    println!("{}", "-".repeat(102));

    if smoke {
        let (instances, depth, rate) = SMOKE;
        let s = measure(instances, depth, rate);
        print_sample(&s);
        let mut failed = false;
        if s.supervised.availability < 0.99 {
            eprintln!(
                "FAIL: supervised availability {:.4} under {rate} fault rate (floor 0.99)",
                s.supervised.availability
            );
            failed = true;
        }
        if s.supervised.availability <= s.unsupervised.availability {
            eprintln!("FAIL: supervision does not beat the unsupervised baseline");
            failed = true;
        }
        // Parallel determinism: the same configuration stepped by two
        // stealing workers must land on the exact serial counters.
        let ws = run_supervised(
            instances,
            depth,
            rate,
            FleetScheduler::WorkStealing { workers: 2 },
            ROUNDS,
        );
        let serial_counters = (
            s.supervised.live_steps,
            s.supervised.missed_steps,
            s.supervised.instance_faults,
            s.supervised.restarts,
            s.supervised.cold_restarts,
            s.supervised.quarantines,
            s.supervised.checkpoints,
        );
        let ws_counters = (
            ws.live_steps,
            ws.missed_steps,
            ws.instance_faults,
            ws.restarts,
            ws.cold_restarts,
            ws.quarantines,
            ws.checkpoints,
        );
        if serial_counters != ws_counters {
            eprintln!(
                "FAIL: work-stealing counters diverge from serial: {serial_counters:?} vs {ws_counters:?}"
            );
            failed = true;
        }
        // Scaling guard: on a multi-core host, two stealing workers
        // must actually be faster than the serial scheduler. Calibrated
        // and bracketed so host speed and transient load cancel.
        if cores >= 2 {
            let serial_cost = scheduler_cost(FleetScheduler::Serial);
            let ws_cost = scheduler_cost(FleetScheduler::WorkStealing { workers: 2 });
            let speedup = serial_cost / ws_cost;
            println!(
                "\nscaling guard: serial cost {serial_cost:.2}, 2-worker cost {ws_cost:.2}, speedup {speedup:.2}x"
            );
            if speedup < SMOKE_MIN_SPEEDUP {
                eprintln!(
                    "FAIL: 2-worker work stealing speedup {speedup:.2}x below the {SMOKE_MIN_SPEEDUP}x floor"
                );
                failed = true;
            }
        } else {
            println!("\nscaling guard skipped: single-core host cannot demonstrate a speedup");
        }
        // Regeneration check: the committed baseline must contain this
        // exact configuration with the exact deterministic counters the
        // re-run just produced (timing columns excluded by design).
        match std::fs::read_to_string("BENCH_fleet.json") {
            Ok(text) => {
                let baseline: Doc = serde_json::from_str(&text).unwrap();
                match baseline.results.iter().find(|r| {
                    r.instances == instances as u64
                        && r.depth == depth as u64
                        && (r.fault_rate - rate).abs() < 1e-9
                }) {
                    Some(base) => {
                        let same = base.supervised.live_steps == s.supervised.live_steps
                            && base.supervised.missed_steps == s.supervised.missed_steps
                            && base.supervised.instance_faults == s.supervised.instance_faults
                            && base.supervised.restarts == s.supervised.restarts
                            && base.supervised.cold_restarts == s.supervised.cold_restarts
                            && base.supervised.quarantines == s.supervised.quarantines
                            && base.unsupervised.live_steps == s.unsupervised.live_steps
                            && base.unsupervised.dead_instances == s.unsupervised.dead_instances;
                        if !same {
                            eprintln!(
                                "FAIL: BENCH_fleet.json counters diverge from a fresh run — \
                                 regenerate with `cargo run -p perpos-bench --bin exp_fleet --release`"
                            );
                            failed = true;
                        }
                    }
                    None => {
                        eprintln!("FAIL: BENCH_fleet.json misses the smoke configuration");
                        failed = true;
                    }
                }
                // The flagship row the paper-scale claim rests on.
                let flagship = baseline
                    .results
                    .iter()
                    .find(|r| r.instances >= 10_000 && (r.fault_rate - 0.10).abs() < 1e-9);
                match flagship {
                    Some(f) if f.supervised.availability >= 0.99 => {}
                    Some(f) => {
                        eprintln!(
                            "FAIL: committed flagship availability {:.4} below 0.99",
                            f.supervised.availability
                        );
                        failed = true;
                    }
                    None => {
                        eprintln!("FAIL: BENCH_fleet.json misses a >=10k-instance 10% row");
                        failed = true;
                    }
                }
                // The committed scaling section must carry the threads
                // axis at paper scale, and its parallel rows must have
                // recorded the same deterministic counters as serial.
                let scale_rows: Vec<&ScalingSample> = baseline
                    .scaling
                    .iter()
                    .filter(|r| r.instances >= SCALING_INSTANCES as u64)
                    .collect();
                if !scale_rows.iter().any(|r| r.scheduler == "serial")
                    || !scale_rows
                        .iter()
                        .any(|r| r.scheduler == "work_stealing" && r.workers == 4)
                {
                    eprintln!(
                        "FAIL: BENCH_fleet.json scaling section misses the serial or \
                         4-worker row at >= {SCALING_INSTANCES} instances"
                    );
                    failed = true;
                }
                for row in &scale_rows {
                    let serial = scale_rows.iter().find(|r| {
                        r.scheduler == "serial" && (r.fault_rate - row.fault_rate).abs() < 1e-9
                    });
                    let counters = |r: &ScalingSample| {
                        (
                            r.live_steps,
                            r.missed_steps,
                            r.instance_faults,
                            r.restarts,
                            r.cold_restarts,
                            r.quarantines,
                        )
                    };
                    if let Some(serial) = serial {
                        if counters(row) != counters(serial) {
                            eprintln!(
                                "FAIL: committed scaling row ({} workers {}) diverges from serial",
                                row.scheduler, row.workers
                            );
                            failed = true;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("FAIL: no committed BENCH_fleet.json baseline to compare ({e})");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("\nsmoke OK: floor held, schedulers agree, baseline regenerates");
        return;
    }

    let mut results = Vec::new();
    for &instances in &[2048usize, 10_240] {
        for &depth in &[1usize, 4] {
            for &rate in &[0.0f64, 0.05, 0.10] {
                let s = measure(instances, depth, rate);
                print_sample(&s);
                results.push(s);
            }
        }
    }

    println!("\n=== fleet: threads axis at {SCALING_INSTANCES} instances ===\n");
    println!(
        "{:>9} {:>6} {:>14} {:>7} {:>10} {:>12} {:>9}",
        "instances", "rate", "scheduler", "workers", "wall", "items/s", "speedup"
    );
    println!("{}", "-".repeat(74));
    let scaling = run_scaling();

    let doc = Doc {
        experiment: "fleet".to_string(),
        cores: cores as u64,
        rounds: ROUNDS,
        step_fail_prob: STEP_FAIL_PROB,
        results,
        scaling,
    };
    std::fs::write(
        "BENCH_fleet.json",
        serde_json::to_string_pretty(&doc).unwrap() + "\n",
    )
    .unwrap();
    println!("\nwrote BENCH_fleet.json");
}
