//! Runtime debug analyzer: logical-time monotonicity (P008).
//!
//! Static passes cannot see bookkeeping bugs; this probe watches a
//! channel while it runs. The channel layer guarantees per-level logical
//! times that are 1-based, strictly increasing at the output, with each
//! element consuming a contiguous range of the previous level. The
//! [`MonotonicityProbe`] is a Channel Feature that asserts exactly that
//! on every delivered [`DataTree`] and accumulates violations as P008
//! diagnostics.

use std::any::Any;

use perpos_core::channel::{ChannelFeature, ChannelHost, DataNode, DataTree};
use perpos_core::component::MethodSpec;
use perpos_core::feature::FeatureDescriptor;
use perpos_core::prelude::Value;
use perpos_core::CoreError;

use crate::diagnostic::{Code, Diagnostic, Report, Severity};

/// The probe's feature name (use with `detach_channel_feature` /
/// `with_channel_feature_mut`).
pub const PROBE_NAME: &str = "MonotonicityProbe";

/// A Channel Feature asserting logical-time monotonicity on every
/// delivery. Attach with [`perpos_core::Middleware::attach_channel_feature`];
/// read results via [`MonotonicityProbe::report`] (typed access) or the
/// reflective `violationCount` method.
#[derive(Debug, Default)]
pub struct MonotonicityProbe {
    last_root_logical: Option<u64>,
    deliveries: u64,
    violations: Vec<Diagnostic>,
}

impl MonotonicityProbe {
    /// Creates a probe with no observations.
    pub fn new() -> Self {
        MonotonicityProbe::default()
    }

    /// Number of deliveries observed so far.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// The accumulated violations as a report.
    pub fn report(&self) -> Report {
        Report {
            diagnostics: self.violations.clone(),
        }
    }

    fn violation(&mut self, tree: &DataTree, message: String) {
        self.violations.push(
            Diagnostic::new(
                Code::P008,
                Severity::Error,
                message,
                vec![
                    tree.channel.to_string(),
                    tree.root.component_name.to_string(),
                ],
            )
            .with_hint(
                "logical-time bookkeeping is broken; inspect the channel layer or \
                 the component's emission pattern",
            ),
        );
    }

    /// Checks one level's children: logical times strictly increasing,
    /// and each child's consumed range within its own children's span.
    fn check_node(&mut self, tree: &DataTree, node: &DataNode) {
        let mut prev: Option<u64> = None;
        for child in &node.children {
            if let Some(p) = prev {
                if child.logical <= p {
                    self.violation(
                        tree,
                        format!(
                            "children of {:?} have non-increasing logical times \
                             ({} after {})",
                            node.component_name, child.logical, p
                        ),
                    );
                }
            }
            prev = Some(child.logical);
        }
        if let Some((lo, hi)) = node.range {
            if lo > hi || lo == 0 {
                self.violation(
                    tree,
                    format!(
                        "{:?} claims malformed consumed range {lo}-{hi} \
                         (ranges are 1-based and ordered)",
                        node.component_name
                    ),
                );
            }
            for child in &node.children {
                if child.logical < lo || child.logical > hi {
                    self.violation(
                        tree,
                        format!(
                            "{:?} consumed logical time {} outside its claimed \
                             range {lo}-{hi}",
                            node.component_name, child.logical
                        ),
                    );
                }
            }
        }
        for child in &node.children {
            self.check_node(tree, child);
        }
    }
}

impl ChannelFeature for MonotonicityProbe {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(PROBE_NAME)
            .method(MethodSpec::new("violationCount", "() -> int"))
            .method(MethodSpec::new("deliveryCount", "() -> int"))
            .method(MethodSpec::new("reset", "() -> null"))
    }

    fn apply(&mut self, tree: &DataTree, _host: &mut ChannelHost<'_>) -> Result<(), CoreError> {
        self.deliveries += 1;
        let logical = tree.root.logical;
        if logical == 0 {
            self.violation(
                tree,
                "root logical time is 0 (times are 1-based)".to_string(),
            );
        }
        if let Some(last) = self.last_root_logical {
            if logical <= last {
                self.violation(
                    tree,
                    format!("channel output logical time went backwards: {logical} after {last}"),
                );
            }
        }
        self.last_root_logical = Some(logical);
        self.check_node(tree, &tree.root);
        Ok(())
    }

    fn invoke(&mut self, method: &str, _args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "violationCount" => Ok(Value::Int(self.violations.len() as i64)),
            "deliveryCount" => Ok(Value::Int(self.deliveries as i64)),
            "reset" => {
                self.violations.clear();
                self.deliveries = 0;
                self.last_root_logical = None;
                Ok(Value::Null)
            }
            _ => Err(CoreError::NoSuchMethod {
                target: PROBE_NAME.to_string(),
                method: method.to_string(),
            }),
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
