//! The synthesis search: goal-directed enumeration of pipelines over a
//! [`TypeCatalog`], pruned by the dataflow domains.
//!
//! The enumerator works *backwards* from the goal's output kind: for
//! every catalog type providing the kind it recursively synthesizes a
//! producer subtree per input port, with a strictly decreasing component
//! budget (termination) and a beam cap per `(kind, budget)` memo entry
//! (bounded growth). Each partial pipeline is materialized to a
//! [`GraphConfig`] and scored by the *existing* abstract domains —
//! frame unification kills ill-typed subtrees, accuracy propagation
//! bounds what any completion can still achieve, rate inference bounds
//! the inflow any completion must absorb, and the power sum is monotone
//! in the component set — so infeasible prefixes die before they are
//! ever completed. Complete candidates must pass the full
//! [`analyze_config`] pass with **zero findings** (the `perpos-lint`
//! gate) plus the goal checks at the sink.

use std::collections::{BTreeMap, BTreeSet};

use perpos_core::assembly::{ComponentConfig, ConnectionConfig, GraphConfig};

use crate::catalog::{ComponentTypeSpec, TypeCatalog, APPLICATION_KIND};
use crate::config::analyze_config;
use crate::dataflow::FlowGraph;
use crate::domains::infer_facts;

use super::SynthesisGoal;

/// Maximum plans kept per `(kind, budget)` memo entry. Ranked by tip
/// accuracy then size, so the beam keeps the completions most likely to
/// satisfy an accuracy goal with the fewest components.
const BEAM: usize = 12;

/// Hard cap on port-combination products examined per type, a backstop
/// against pathological catalogs (wide merges over rich kind sets).
const MAX_COMBOS: usize = 1024;

/// One complete, gate-accepted pipeline with its solved sink facts.
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    /// The full configuration, application sink included.
    pub config: GraphConfig,
    /// Accuracy interval observed at the sink, metres.
    pub accuracy: Option<(f64, f64)>,
    /// Sustained rate interval observed at the sink, items/second.
    pub rate: Option<(f64, f64)>,
    /// Sum of declared component power draws, milliwatts; `None` when no
    /// instantiated type declares power.
    pub power: Option<f64>,
    /// Pipeline components, excluding the application sink.
    pub size: usize,
    /// Coordinate frames observed at the sink.
    pub frames: Vec<String>,
}

/// A synthesis plan: a tree of catalog type indices, one child subtree
/// per input port of the root type.
#[derive(Debug, Clone)]
struct Plan {
    ty: usize,
    children: Vec<Plan>,
}

impl Plan {
    fn size(&self) -> usize {
        1 + self.children.iter().map(Plan::size).sum::<usize>()
    }
}

/// Search context: the catalog pre-indexed for provider lookup, plus the
/// catalog-wide optima the admissible-bound prunes are computed against.
struct Ctx<'a> {
    catalog: &'a TypeCatalog,
    /// Catalog types in kind order (deterministic enumeration).
    types: Vec<ComponentTypeSpec>,
    /// Kind → indices into `types` of the types providing it.
    providers: BTreeMap<String, Vec<usize>>,
    /// Every kind some type provides, sorted (any-kind port expansion).
    all_kinds: Vec<String>,
    /// Smallest accuracy improvement factor any type can apply (≤ 1).
    min_scale: f64,
    /// Smallest rate factor any type can apply (≤ 1).
    min_factor: f64,
    /// Best accuracy any type declares outright, metres.
    min_declared_best: Option<f64>,
    goal: &'a SynthesisGoal,
    max_components: usize,
}

impl<'a> Ctx<'a> {
    fn new(goal: &'a SynthesisGoal, catalog: &'a TypeCatalog) -> Ctx<'a> {
        let mut types: Vec<ComponentTypeSpec> = catalog
            .types
            .iter()
            .filter(|t| t.kind != APPLICATION_KIND)
            .cloned()
            .collect();
        types.sort_by(|a, b| a.kind.cmp(&b.kind));
        let mut providers: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut min_scale = 1.0f64;
        let mut min_factor = 1.0f64;
        let mut min_declared_best: Option<f64> = None;
        for (i, t) in types.iter().enumerate() {
            for kind in &t.provides {
                providers.entry(kind.clone()).or_default().push(i);
            }
            if let Some(spec) = &t.transfer {
                if let Some(s) = spec.accuracy_scale {
                    if s > 0.0 {
                        min_scale = min_scale.min(s);
                    }
                }
                if let Some(f) = spec.rate_factor {
                    if f > 0.0 {
                        min_factor = min_factor.min(f);
                    }
                }
                if let Some(b) = spec.accuracy_best_m {
                    min_declared_best = Some(min_declared_best.map_or(b, |prev: f64| prev.min(b)));
                }
            }
        }
        let all_kinds: Vec<String> = providers.keys().cloned().collect();
        Ctx {
            catalog,
            types,
            providers,
            all_kinds,
            min_scale,
            min_factor,
            min_declared_best,
            goal,
            max_components: goal.effective_max_components(),
        }
    }

    fn power_of(&self, plan: &Plan) -> Option<f64> {
        let own = self.types[plan.ty]
            .transfer
            .as_ref()
            .and_then(|t| t.power_mw);
        let mut total: Option<f64> = own;
        for child in &plan.children {
            if let Some(p) = self.power_of(child) {
                total = Some(total.unwrap_or(0.0) + p);
            }
        }
        total
    }
}

/// Renders a plan as a canonical signature string, for per-port dedup.
fn signature(ctx: &Ctx<'_>, plan: &Plan) -> String {
    let mut s = ctx.types[plan.ty].kind.clone();
    if !plan.children.is_empty() {
        s.push('(');
        for (i, c) in plan.children.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&signature(ctx, c));
        }
        s.push(')');
    }
    s
}

/// Materializes a plan into a [`GraphConfig`]: components in post-order
/// (root last), instance names `"{kind}{n}"` with a per-kind counter,
/// sources given the `drop_item` fault policy (P009 hygiene), and — when
/// `with_app` — an `"app"` application sink fed by the root.
fn materialize(ctx: &Ctx<'_>, plan: &Plan, with_app: bool) -> GraphConfig {
    fn build(
        ctx: &Ctx<'_>,
        plan: &Plan,
        counters: &mut BTreeMap<String, usize>,
        components: &mut Vec<ComponentConfig>,
        connections: &mut Vec<ConnectionConfig>,
    ) -> String {
        let child_names: Vec<String> = plan
            .children
            .iter()
            .map(|c| build(ctx, c, counters, components, connections))
            .collect();
        let t = &ctx.types[plan.ty];
        let n = counters.entry(t.kind.clone()).or_insert(0);
        let name = format!("{}{}", t.kind, n);
        *n += 1;
        components.push(ComponentConfig {
            name: name.clone(),
            kind: t.kind.clone(),
            fault_policy: (t.role == "source").then(|| "drop_item".to_string()),
            transfer: None,
            effects: None,
        });
        for (port, child) in child_names.into_iter().enumerate() {
            connections.push(ConnectionConfig {
                from: child,
                to: name.clone(),
                port,
            });
        }
        name
    }

    let mut counters = BTreeMap::new();
    let mut components = Vec::new();
    let mut connections = Vec::new();
    let root = build(ctx, plan, &mut counters, &mut components, &mut connections);
    if with_app {
        components.push(ComponentConfig {
            name: "app".into(),
            kind: APPLICATION_KIND.into(),
            fault_policy: None,
            transfer: None,
            effects: None,
        });
        connections.push(ConnectionConfig {
            from: root,
            to: "app".into(),
            port: 0,
        });
    }
    GraphConfig {
        components,
        connections,
        executor: None,
        tree_policy: None,
        fleet: None,
    }
}

/// Domain-driven admissibility of a *partial* pipeline: runs the four
/// abstract domains over the subtree and rejects it when no completion
/// within the remaining budget can possibly meet the goal.
///
/// Returns the subtree's tip accuracy (for beam ranking) on success.
fn admissible(ctx: &Ctx<'_>, plan: &Plan) -> Option<Option<(f64, f64)>> {
    let size = plan.size();
    let config = materialize(ctx, plan, false);
    let flow = FlowGraph::from_config(&config, ctx.catalog);
    let facts = infer_facts(&flow);
    // Frame unification (P010), unreachable accuracy claims (P011) and
    // internal privacy violations (P012) are errors on the subtree
    // already — no extension can remove an upstream conflict.
    if crate::domains::dataflow_diagnostics(&flow, &facts).has_errors() {
        return None;
    }
    let root = flow.nodes.len().checked_sub(1)?;
    let remaining = ctx.max_components.saturating_sub(size) as i32;
    // Accuracy admissible bound: downstream components can only improve
    // the tip interval by the catalog's best scale factor per added
    // component, or replace it with a declared accuracy.
    if let Some(goal_acc) = ctx.goal.accuracy_m {
        if let Some((best, _)) = facts.accuracy[root] {
            let reachable = best * ctx.min_scale.powi(remaining);
            let replaceable = ctx.min_declared_best.is_some_and(|d| d <= goal_acc);
            if reachable > goal_acc && !replaceable {
                return None;
            }
        }
    }
    // Rate admissible bound: the guaranteed inflow can only shrink by
    // the catalog's smallest rate factor per added component.
    if let Some(goal_rate) = ctx.goal.max_rate_hz {
        if let Some((lo, _)) = facts.rate[root] {
            if lo * ctx.min_factor.powi(remaining) > goal_rate {
                return None;
            }
        }
    }
    // Power is a monotone sum: over budget stays over budget.
    if let Some(budget) = ctx.goal.power_budget_mw {
        if ctx.power_of(plan).is_some_and(|p| p > budget) {
            return None;
        }
    }
    Some(facts.accuracy[root])
}

/// A plan that survived [`admissible`], with its beam-ranking key:
/// tip accuracy interval, size and canonical signature.
type RankedPlan = (Option<(f64, f64)>, usize, String, Plan);

/// All plans whose root provides `kind` within `budget` components,
/// pruned by [`admissible`] and beam-capped. Memoized per
/// `(kind, budget)`; the budget strictly decreases on recursion, so the
/// search terminates on any catalog, cyclic provider chains included.
fn plans_for(
    ctx: &Ctx<'_>,
    kind: &str,
    budget: usize,
    memo: &mut BTreeMap<(String, usize), Vec<Plan>>,
) -> Vec<Plan> {
    if budget == 0 {
        return Vec::new();
    }
    let key = (kind.to_string(), budget);
    if let Some(cached) = memo.get(&key) {
        return cached.clone();
    }
    // Occurs-check placeholder: a recursive provider chain hitting the
    // same (kind, budget) while it is being computed gets the empty set.
    memo.insert(key.clone(), Vec::new());

    let mut accepted: Vec<RankedPlan> = Vec::new();
    let provider_indices = ctx.providers.get(kind).cloned().unwrap_or_default();
    for ti in provider_indices {
        let t = &ctx.types[ti];
        let mut candidate_plans = Vec::new();
        if t.inputs.is_empty() {
            candidate_plans.push(Plan {
                ty: ti,
                children: Vec::new(),
            });
        } else {
            // Synthesize producer options per input port.
            let mut per_port: Vec<Vec<Plan>> = Vec::with_capacity(t.inputs.len());
            let mut satisfiable = true;
            for port in &t.inputs {
                let port_kinds: Vec<String> = if port.accepts.is_empty() {
                    ctx.all_kinds.clone()
                } else {
                    port.accepts.clone()
                };
                let mut seen = BTreeSet::new();
                let mut options = Vec::new();
                for k in &port_kinds {
                    for p in plans_for(ctx, k, budget - 1, memo) {
                        if seen.insert(signature(ctx, &p)) {
                            options.push(p);
                        }
                    }
                }
                if options.is_empty() {
                    satisfiable = false;
                    break;
                }
                per_port.push(options);
            }
            if satisfiable {
                // Odometer over the per-port option lists.
                let mut idx = vec![0usize; per_port.len()];
                let mut combos = 0usize;
                'product: loop {
                    combos += 1;
                    if combos > MAX_COMBOS {
                        break;
                    }
                    let children: Vec<Plan> = idx
                        .iter()
                        .zip(&per_port)
                        .map(|(&i, opts)| opts[i].clone())
                        .collect();
                    candidate_plans.push(Plan { ty: ti, children });
                    // Advance the odometer.
                    for pos in (0..idx.len()).rev() {
                        idx[pos] += 1;
                        if idx[pos] < per_port[pos].len() {
                            continue 'product;
                        }
                        idx[pos] = 0;
                    }
                    break;
                }
            }
        }
        for plan in candidate_plans {
            if plan.size() > budget {
                continue;
            }
            if let Some(tip_accuracy) = admissible(ctx, &plan) {
                let sig = signature(ctx, &plan);
                accepted.push((tip_accuracy, plan.size(), sig, plan));
            }
        }
    }
    // Beam: best tip accuracy first (unknown last), then smallest, then
    // canonical signature for full determinism.
    accepted.sort_by(|a, b| {
        let key = |e: &RankedPlan| (e.0.map_or(f64::INFINITY, |(best, _)| best), e.1);
        let (aa, asize) = key(a);
        let (ba, bsize) = key(b);
        aa.total_cmp(&ba)
            .then(asize.cmp(&bsize))
            .then(a.2.cmp(&b.2))
    });
    accepted.truncate(BEAM);
    let plans: Vec<Plan> = accepted.into_iter().map(|(_, _, _, p)| p).collect();
    memo.insert(key, plans.clone());
    plans
}

/// Enumerates every gate-accepted pipeline for `goal` over `catalog`,
/// deduplicated and ranked (best accuracy, then tightest worst bound,
/// then lowest power, then fewest components, then canonical JSON).
///
/// The acceptance gate is [`analyze_config`] requiring a *completely
/// clean* report — zero errors and zero warnings — followed by the
/// goal checks against the solved sink facts.
pub(crate) fn enumerate(goal: &SynthesisGoal, catalog: &TypeCatalog) -> Vec<Candidate> {
    let ctx = Ctx::new(goal, catalog);
    let mut memo = BTreeMap::new();
    let plans = plans_for(
        &ctx,
        goal.effective_output_kind(),
        ctx.max_components,
        &mut memo,
    );

    let mut seen = BTreeSet::new();
    let mut out: Vec<Candidate> = Vec::new();
    for plan in plans {
        let config = materialize(&ctx, &plan, true);
        // The acceptance gate: the synthesizer never emits a pipeline
        // perpos-lint would flag.
        if !analyze_config(&config, catalog).is_clean() {
            continue;
        }
        let flow = FlowGraph::from_config(&config, catalog);
        // Synthesized pipelines must replay deterministically (candidate
        // ranking and re-linting both assume it), so exogenous/unseeded
        // effects (P019) reject a candidate even without a fleet block.
        let mut determinism = crate::diagnostic::Report::new();
        crate::effects::determinism_diagnostics(&flow, &mut determinism);
        if !determinism.is_clean() {
            continue;
        }
        let facts = infer_facts(&flow);
        let Some(sink) = flow.nodes.iter().position(|n| n.label == "app") else {
            continue;
        };
        let accuracy = facts.accuracy[sink];
        let rate = facts.rate[sink];
        let frames: Vec<String> = facts.frames[sink].iter().cloned().collect();
        let tainted = !facts.taint[sink].is_empty();
        let power = ctx.power_of(&plan);
        if let Some(goal_acc) = goal.accuracy_m {
            match accuracy {
                Some((best, _)) if best <= goal_acc => {}
                _ => continue,
            }
        }
        if let Some(goal_rate) = goal.max_rate_hz {
            match rate {
                Some((_, hi)) if hi.is_finite() && hi <= goal_rate => {}
                _ => continue,
            }
        }
        if let Some(goal_frame) = &goal.frame {
            if frames.len() != 1 || frames[0] != *goal_frame {
                continue;
            }
        }
        if goal.no_identifiable_at_sink && tainted {
            continue;
        }
        if let Some(budget) = goal.power_budget_mw {
            if power.unwrap_or(0.0) > budget {
                continue;
            }
        }
        let canonical =
            serde_json::to_string(&config).expect("GraphConfig is plain data and serializes");
        if !seen.insert(canonical) {
            continue;
        }
        out.push(Candidate {
            config,
            accuracy,
            rate,
            power,
            size: plan.size(),
            frames,
        });
    }
    out.sort_by(|a, b| {
        let key = |c: &Candidate| {
            (
                c.accuracy.map_or(f64::INFINITY, |(best, _)| best),
                c.accuracy.map_or(f64::INFINITY, |(_, worst)| worst),
                c.power.unwrap_or(0.0),
                c.size,
            )
        };
        let (aa, aw, ap, asize) = key(a);
        let (ba, bw, bp, bsize) = key(b);
        aa.total_cmp(&ba)
            .then(aw.total_cmp(&bw))
            .then(ap.total_cmp(&bp))
            .then(asize.cmp(&bsize))
            .then_with(|| {
                let aj = serde_json::to_string(&a.config).unwrap_or_default();
                let bj = serde_json::to_string(&b.config).unwrap_or_default();
                aj.cmp(&bj)
            })
    });
    out
}
