//! The Room Number Application of the paper's introduction and Fig. 1:
//! "shows the current position as a point on a map when outdoor and
//! highlights the currently occupied room when within a building".
//!
//! Two pipelines feed one application sink:
//!
//! * GPS → Parser → Interpreter (WGS-84 positions; degrades to indoor
//!   conditions under the roof),
//! * WiFi scanner → WiFi positioning → Resolver (room identifiers via
//!   the building's location model).
//!
//! Run with: `cargo run --example room_number_app`

use std::sync::Arc;

use perpos::prelude::*;
use perpos_core::data::DataKind;

fn main() -> Result<(), CoreError> {
    let building = Arc::new(demo_building());
    let frame = *building.frame();

    // Walk from the street (west of the building) through the corridor
    // to the last office, then stop.
    let walk = Trajectory::new(
        vec![
            Point2::new(-40.0, 5.25),
            Point2::new(-2.0, 5.25),
            Point2::new(10.0, 5.25), // corridor
            Point2::new(17.5, 5.25),
            Point2::new(17.5, 2.0), // room R3
        ],
        1.4,
    );

    let mut mw = Middleware::new();

    // GPS pipeline; reception collapses indoors.
    let inside_building = {
        let building = Arc::clone(&building);
        move |p: Point2, _t| {
            if building.inside(p, 0) {
                GpsEnvironment::indoor()
            } else {
                GpsEnvironment::open_sky()
            }
        }
    };
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame, walk.clone())
            .with_seed(13)
            .with_environment_fn(inside_building),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());

    // WiFi pipeline with the building's own access points.
    let env = Arc::new(WifiEnvironment::with_ap_per_room(Arc::clone(&building), 0));
    let map = Arc::new(perpos::sensors::RadioMap::build(&env, 1.0));
    let wifi = mw.add_component(WifiScanner::new("WiFi", env, walk.clone()).with_seed(17));
    let wifi_pos = mw.add_component(WifiPositioning::new(map, Arc::clone(&building)));
    let resolver = mw.add_component(Resolver::new(Arc::clone(&building)));

    let app = mw.application_sink();
    mw.connect(gps, parser, 0)?;
    mw.connect(parser, interpreter, 0)?;
    mw.connect_to_sink(interpreter, app)?;
    mw.connect(wifi, wifi_pos, 0)?;
    mw.connect(wifi_pos, resolver, 0)?;
    mw.connect_to_sink(resolver, app)?;

    let gps_provider =
        mw.location_provider(Criteria::new().kind(kinds::POSITION_WGS84).source("gps"))?;
    let room_provider = mw.location_provider(Criteria::new().kind(kinds::POSITION_ROOM))?;

    println!("t(s)  display");
    println!("----  -------");
    let total_s = walk.duration().as_secs_f64() as u64 + 10;
    for _ in 0..total_s {
        mw.step()?;
        let t = mw.now().as_secs_f64();
        // The application's display rule from the paper's intro: a point
        // on the map while GPS is healthy (outdoors), the occupied room
        // once GPS degrades under the roof and WiFi takes over.
        let fresh_gps = gps_provider.last_item().filter(|i| {
            t - i.timestamp.as_secs_f64() <= 3.0
                && i.payload
                    .as_position()
                    .and_then(|p| p.accuracy_m())
                    .is_some_and(|a| a <= 20.0)
        });
        let line = match fresh_gps {
            Some(item) => {
                let p = item.position().expect("gps items carry positions");
                let local = building.frame().to_local(p.coord());
                format!("point on map at ({:>6.1}, {:>5.1})", local.x, local.y)
            }
            None => match freshest_room(&room_provider, t) {
                Some(room) => format!("room {room}"),
                None => "no position".to_string(),
            },
        };
        if (t as u64).is_multiple_of(10) {
            println!("{t:>4.0}  {line}");
        }
        mw.advance_clock(SimDuration::from_secs(1));
    }

    println!("\nchannels (the PCL view):");
    for info in mw.channels() {
        println!(
            "  {} : {} -> {:?}",
            info.id,
            info.member_names.join(" -> "),
            info.endpoint
        );
    }
    Ok(())
}

/// The room reported within the last 5 s, if any.
fn freshest_room(provider: &LocationProvider, now_s: f64) -> Option<String> {
    let item = provider.last_item()?;
    if now_s - item.timestamp.as_secs_f64() <= 5.0 {
        let _: &DataKind = &item.kind;
        item.payload.as_text().map(str::to_string)
    } else {
        None
    }
}
