//! A PoSIM-style translucent middleware: sensor wrappers exposing *info*
//! and *control* features, mediated by declarative policies.

use perpos_core::component::ComponentCtx;
use perpos_core::prelude::*;
use perpos_geo::Wgs84;
use perpos_nmea::{parse_sentence, Sentence};
use perpos_sensors::GpsSimulator;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A PoSIM sensor wrapper: produces positions and exposes named info
/// values (read) and control values (write). Wrappers are the only place
/// custom behaviour lives; there is no processing graph behind them.
pub trait SensorWrapper: Send {
    /// The wrapper name.
    fn name(&self) -> &str;

    /// Samples the sensor; returns technology positions.
    fn sample(&mut self, now: SimTime) -> Vec<(Wgs84, f64)>;

    /// Reads an info value, e.g. `"hdop"`. PoSIM semantics: this is the
    /// *latest* value, with no link to any specific position (the §3.2
    /// staleness problem is inherent to this interface).
    fn get_info(&self, name: &str) -> Option<Value>;

    /// Writes a control value, e.g. `"power" = "low"`.
    fn set_control(&mut self, name: &str, value: &Value) -> bool;
}

/// A wrapper for the GPS simulator exposing `hdop` and `satellites` info
/// and a `power` control (`"high"` / `"low"` / `"off"`).
pub struct PosimGpsWrapper {
    sim: GpsSimulator,
    latest_info: BTreeMap<String, Value>,
}

impl PosimGpsWrapper {
    /// Wraps a GPS simulator.
    pub fn new(sim: GpsSimulator) -> Self {
        PosimGpsWrapper {
            sim,
            latest_info: BTreeMap::new(),
        }
    }
}

impl SensorWrapper for PosimGpsWrapper {
    fn name(&self) -> &str {
        "gps"
    }

    fn sample(&mut self, now: SimTime) -> Vec<(Wgs84, f64)> {
        use perpos_core::component::Component;
        let mut ctx = ComponentCtx::new(now);
        if self.sim.on_tick(&mut ctx).is_err() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for item in ctx.take_emitted() {
            let Some(text) = item.payload.as_text() else {
                continue;
            };
            let Ok(Sentence::Gga(gga)) = parse_sentence(text) else {
                continue;
            };
            // Info is overwritten on every sentence: only the latest
            // value survives (the PoSIM staleness semantics).
            self.latest_info
                .insert("hdop".into(), Value::Float(gga.hdop));
            self.latest_info.insert(
                "satellites".into(),
                Value::Int(i64::from(gga.num_satellites)),
            );
            if let (Some(lat), Some(lon), true) = (gga.lat_deg, gga.lon_deg, gga.quality.has_fix())
            {
                if let Ok(p) = Wgs84::new(lat, lon, gga.altitude_m) {
                    out.push((p, gga.hdop * 5.0));
                }
            }
        }
        out
    }

    fn get_info(&self, name: &str) -> Option<Value> {
        self.latest_info.get(name).cloned()
    }

    fn set_control(&mut self, name: &str, value: &Value) -> bool {
        use perpos_core::component::Component;
        match (name, value) {
            ("power", Value::Text(mode)) => match mode.as_str() {
                "high" => {
                    let _ = self.sim.invoke("setEnabled", &[Value::Bool(true)]);
                    let _ = self.sim.invoke("setSampleInterval", &[Value::Float(1.0)]);
                    true
                }
                "low" => {
                    let _ = self.sim.invoke("setEnabled", &[Value::Bool(true)]);
                    let _ = self.sim.invoke("setSampleInterval", &[Value::Float(10.0)]);
                    true
                }
                "off" => {
                    let _ = self.sim.invoke("setEnabled", &[Value::Bool(false)]);
                    true
                }
                _ => false,
            },
            _ => false,
        }
    }
}

/// Error from parsing a policy string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyError(String);

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid policy: {}", self.0)
    }
}

impl Error for PolicyError {}

#[derive(Debug, Clone, PartialEq)]
enum Op {
    Gt,
    Lt,
    Eq,
}

/// A declarative PoSIM policy:
/// `if <info> <op> <value> then set <control> <value>`.
///
/// The condition language is deliberately as limited as the paper
/// describes PoSIM's: "the set of operations for conditions consists of
/// simple comparison of data values while actions are limited to passing
/// values to operations of the sensor wrapper" (§5).
///
/// ```
/// use perpos_baselines::Policy;
/// let p: Policy = "if satellites < 4 then set power off".parse()?;
/// assert_eq!(p.to_string(), "if satellites < 4 then set power \"off\"");
/// # Ok::<(), perpos_baselines::PolicyError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    info: String,
    op: Op,
    threshold: Value,
    control: String,
    action_value: Value,
}

impl std::str::FromStr for Policy {
    type Err = PolicyError;

    fn from_str(s: &str) -> Result<Self, PolicyError> {
        let tokens: Vec<&str> = s.split_whitespace().collect();
        // if <info> <op> <value> then set <control> <value>
        if tokens.len() != 8 || tokens[0] != "if" || tokens[4] != "then" || tokens[5] != "set" {
            return Err(PolicyError(format!(
                "expected 'if <info> <op> <value> then set <control> <value>', got {s:?}"
            )));
        }
        let op = match tokens[2] {
            ">" => Op::Gt,
            "<" => Op::Lt,
            "==" | "=" => Op::Eq,
            other => return Err(PolicyError(format!("unknown operator {other:?}"))),
        };
        let parse_value = |t: &str| -> Value {
            if let Ok(i) = t.parse::<i64>() {
                Value::Int(i)
            } else if let Ok(f) = t.parse::<f64>() {
                Value::Float(f)
            } else if t == "true" || t == "false" {
                Value::Bool(t == "true")
            } else {
                Value::Text(t.to_string())
            }
        };
        Ok(Policy {
            info: tokens[1].to_string(),
            op,
            threshold: parse_value(tokens[3]),
            control: tokens[6].to_string(),
            action_value: parse_value(tokens[7]),
        })
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            Op::Gt => ">",
            Op::Lt => "<",
            Op::Eq => "==",
        };
        write!(
            f,
            "if {} {op} {} then set {} {}",
            self.info, self.threshold, self.control, self.action_value
        )
    }
}

impl Policy {
    fn condition_holds(&self, info: &Value) -> bool {
        match (&self.op, info.as_f64(), self.threshold.as_f64()) {
            (Op::Gt, Some(a), Some(b)) => a > b,
            (Op::Lt, Some(a), Some(b)) => a < b,
            (Op::Eq, Some(a), Some(b)) => (a - b).abs() < f64::EPSILON,
            (Op::Eq, None, None) => info == &self.threshold,
            _ => false,
        }
    }
}

/// The PoSIM-style middleware: wrappers plus a policy engine evaluated on
/// every poll.
///
/// Note what is *not* here, which is what the paper's comparison turns
/// on: positions returned by [`PoSim::poll`] are final (a policy cannot
/// retract one — §3.1), and info values read by policies are the
/// wrapper's latest, not the ones belonging to any particular position
/// (§3.2).
pub struct PoSim {
    wrappers: Vec<Box<dyn SensorWrapper>>,
    policies: Vec<Policy>,
    policy_firings: u64,
}

impl PoSim {
    /// Creates an empty middleware.
    pub fn new() -> Self {
        PoSim {
            wrappers: Vec::new(),
            policies: Vec::new(),
            policy_firings: 0,
        }
    }

    /// Registers a sensor wrapper.
    pub fn add_wrapper(&mut self, w: Box<dyn SensorWrapper>) {
        self.wrappers.push(w);
    }

    /// Adds a policy from its textual form.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] on syntax errors.
    pub fn add_policy(&mut self, text: &str) -> Result<(), PolicyError> {
        self.policies.push(text.parse()?);
        Ok(())
    }

    /// Samples all wrappers, evaluates policies, and returns every
    /// position produced this round.
    pub fn poll(&mut self, now: SimTime) -> Vec<(Wgs84, f64)> {
        let mut out = Vec::new();
        for w in &mut self.wrappers {
            out.extend(w.sample(now));
        }
        // Policies run after sampling, on latest info values.
        for w in &mut self.wrappers {
            for p in &self.policies {
                if let Some(info) = w.get_info(&p.info) {
                    if p.condition_holds(&info) && w.set_control(&p.control, &p.action_value) {
                        self.policy_firings += 1;
                    }
                }
            }
        }
        out
    }

    /// How many policy actions have fired.
    pub fn policy_firings(&self) -> u64 {
        self.policy_firings
    }

    /// Reads an info value from a named wrapper — PoSIM's translucent
    /// access path.
    pub fn info(&self, wrapper: &str, name: &str) -> Option<Value> {
        self.wrappers
            .iter()
            .find(|w| w.name() == wrapper)
            .and_then(|w| w.get_info(name))
    }
}

impl Default for PoSim {
    fn default() -> Self {
        PoSim::new()
    }
}

impl std::fmt::Debug for PoSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoSim")
            .field("wrappers", &self.wrappers.len())
            .field("policies", &self.policies.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_geo::{LocalFrame, Point2};
    use perpos_sensors::{GpsEnvironment, Trajectory};

    fn frame() -> LocalFrame {
        LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap())
    }

    fn wrapper(env: GpsEnvironment) -> PosimGpsWrapper {
        PosimGpsWrapper::new(
            GpsSimulator::new(
                "gps",
                frame(),
                Trajectory::stationary(Point2::new(0.0, 0.0)),
            )
            .with_seed(2)
            .with_environment(env),
        )
    }

    #[test]
    fn policy_parsing() {
        let p: Policy = "if hdop > 5.0 then set power low".parse().unwrap();
        assert_eq!(p.info, "hdop");
        assert_eq!(p.op, Op::Gt);
        assert_eq!(p.control, "power");
        assert!("if hdop >".parse::<Policy>().is_err());
        assert!("if hdop ? 5 then set power low".parse::<Policy>().is_err());
        assert!("when hdop > 5 then set power low"
            .parse::<Policy>()
            .is_err());
        let eq: Policy = "if satellites == 0 then set power off".parse().unwrap();
        assert_eq!(eq.op, Op::Eq);
    }

    #[test]
    fn wrapper_exposes_info() {
        let mut posim = PoSim::new();
        posim.add_wrapper(Box::new(wrapper(GpsEnvironment {
            dropout_prob: 0.0,
            ..GpsEnvironment::open_sky()
        })));
        for t in 0..5 {
            posim.poll(SimTime::from_secs_f64(t as f64));
        }
        // Translucent access to HDOP works (unlike the Location Stack)…
        assert!(posim.info("gps", "hdop").is_some());
        assert!(posim.info("gps", "satellites").is_some());
        // …but it is the latest value, shared across all positions.
        assert!(posim.info("gps", "nonexistent").is_none());
    }

    #[test]
    fn policies_control_wrappers() {
        let mut posim = PoSim::new();
        posim.add_wrapper(Box::new(wrapper(GpsEnvironment::indoor())));
        // Indoors, satellite counts are low: power down the GPS.
        posim
            .add_policy("if satellites < 4 then set power off")
            .unwrap();
        let mut produced = 0;
        for t in 0..40 {
            produced += posim.poll(SimTime::from_secs_f64(t as f64)).len();
        }
        assert!(
            posim.policy_firings() > 0,
            "the low-satellite policy must fire indoors"
        );
        // After the policy fires the GPS is off, so output dries up.
        assert!(produced < 40);
    }

    #[test]
    fn policy_display_round_trips() {
        for text in [
            "if hdop > 5 then set power low",
            "if satellites < 4 then set power off",
            "if hdop == 1 then set power high",
        ] {
            let p: Policy = text.parse().unwrap();
            let shown = p.to_string();
            // Textual values render quoted; numeric policies round-trip
            // structurally.
            let reparsed: Policy = shown.replace('"', "").parse().unwrap();
            assert_eq!(p.info, reparsed.info);
            assert_eq!(p.op, reparsed.op);
        }
    }

    #[test]
    fn condition_operators() {
        let gt: Policy = "if hdop > 5 then set power low".parse().unwrap();
        assert!(gt.condition_holds(&Value::Float(6.0)));
        assert!(!gt.condition_holds(&Value::Float(4.0)));
        let lt: Policy = "if hdop < 5 then set power high".parse().unwrap();
        assert!(lt.condition_holds(&Value::Float(4.0)));
        assert!(!lt.condition_holds(&Value::Float(6.0)));
        let eq: Policy = "if satellites == 7 then set power low".parse().unwrap();
        assert!(eq.condition_holds(&Value::Int(7)));
        assert!(!eq.condition_holds(&Value::Int(8)));
        // Non-numeric info never satisfies numeric comparisons.
        assert!(!gt.condition_holds(&Value::from("n/a")));
    }

    #[test]
    fn controls_reject_unknown_values() {
        let mut w = wrapper(GpsEnvironment::open_sky());
        assert!(!w.set_control("power", &Value::from("warp")));
        assert!(!w.set_control("gain", &Value::Float(1.0)));
        assert!(w.set_control("power", &Value::from("low")));
    }

    #[test]
    fn positions_cannot_be_retracted() {
        // The §3.1 limitation, executed: a policy reacting to low
        // satellite counts cannot remove the position that was already
        // returned by the same poll.
        let mut posim = PoSim::new();
        posim.add_wrapper(Box::new(wrapper(GpsEnvironment {
            mean_visible_sats: 3.0, // unreliable but still fixing
            sat_stddev: 0.1,
            base_noise_m: 20.0,
            dropout_prob: 0.0,
        })));
        posim
            .add_policy("if satellites < 4 then set power off")
            .unwrap();
        let first_round = posim.poll(SimTime::ZERO);
        // The unreliable position was delivered to the application even
        // though the policy fired in the very same round.
        if !first_round.is_empty() {
            assert!(posim.policy_firings() > 0);
        }
    }
}
