//! The dynamic data model flowing through the processing graph.
//!
//! The paper's middleware moves heterogeneous data — raw byte strings,
//! NMEA sentences, WGS-84 positions, room identifiers — through one graph,
//! and lets Component Features attach arbitrary extra data (HDOP values,
//! satellite counts) to items in flight. A strict type system cannot fix
//! those types at compile time without closing the system, so PerPos uses
//! a designed dynamic representation:
//!
//! * [`Value`] — a self-describing value (JSON-like, plus positions),
//! * [`DataKind`] — a namespaced tag describing what an item *is*
//!   (`"position.wgs84"`, `"nmea.sentence"`, …); ports declare the kinds
//!   they accept and provide,
//! * [`DataItem`] — a kind + timestamp + payload + feature-attached
//!   attributes, the unit that travels along graph edges.
//!
//! # The v3 data plane: arena-interned payloads and flattened attrs
//!
//! Steady-state throughput is bounded by representation, not scheduling:
//! a naive `Arc<Value>` payload plus `Arc<BTreeMap>` attrs pays one
//! allocation per produced item and pointer-chasing on every read. Two
//! structures remove that cost while keeping observable behavior
//! byte-identical:
//!
//! * [`PayloadArena`] — a per-shard slab of recycled `Value` slots keyed
//!   by logical time. Sources intern hot-path values
//!   ([`PayloadArena::intern`] / [`PayloadArena::intern_with`]); the slab
//!   reclaims whole generations at a logical-time watermark with the same
//!   prefix-claim discipline the channel level rings use
//!   ([`PayloadArena::advance`]) — no per-item refcount traffic on the hot
//!   path. A [`Payload`] remembers its arena provenance in a copyable
//!   [`PayloadRef`]; [`Payload::detach`] severs it at cross-shard seams
//!   (distribution links, snapshots, history materialization), after
//!   which the value behaves exactly like a plain shared `Arc`.
//! * [`Attrs`] — flattened from a string-keyed B-tree into a small sorted
//!   vec of ([`InternedKey`], [`Value`]) pairs behind one optional `Arc`.
//!   Attribute names are a tiny closed set at runtime (feature names), so
//!   a process-wide key interner turns every key into a copyable token;
//!   the empty map — the common case on the hot path — allocates nothing.

use perpos_geo::Wgs84;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::{CoreError, SimTime};

/// A namespaced tag classifying the data carried by a [`DataItem`].
///
/// Kinds are cheap to clone and compare. By convention they are
/// dot-namespaced lowercase, e.g. `"position.wgs84"`. The well-known kinds
/// used across the PerPos crates live in [`kinds`]. Edge routing does not
/// compare kind strings on the hot path: the graph interns every kind that
/// can appear on an edge into a dense `u16` id table at build time (see
/// `ProcessingGraph`), and `as_str()` stays for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DataKind(Cow<'static, str>);

impl DataKind {
    /// Creates a kind from a static string (zero allocation).
    pub const fn from_static(s: &'static str) -> Self {
        DataKind(Cow::Borrowed(s))
    }

    /// Creates a kind from a runtime string.
    pub fn new(s: impl Into<String>) -> Self {
        DataKind(Cow::Owned(s.into()))
    }

    /// The kind name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The kind name when it is a static borrow (the `kinds::*`
    /// constants and `from_static` kinds). Statics are never freed, so
    /// callers may use the returned reference's address as an identity
    /// key — equal address and length imply equal strings forever.
    pub fn as_static(&self) -> Option<&'static str> {
        match self.0 {
            Cow::Borrowed(s) => Some(s),
            Cow::Owned(_) => None,
        }
    }
}

impl fmt::Display for DataKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&'static str> for DataKind {
    fn from(s: &'static str) -> Self {
        DataKind(Cow::Borrowed(s))
    }
}

/// Well-known data kinds shared by the PerPos crates.
pub mod kinds {
    use super::DataKind;

    /// Raw sensor bytes rendered as text (e.g. NMEA lines off the wire).
    pub const RAW_STRING: DataKind = DataKind::from_static("raw.string");
    /// A parsed NMEA sentence (payload is the sentence encoded as a map).
    pub const NMEA_SENTENCE: DataKind = DataKind::from_static("nmea.sentence");
    /// A WGS-84 position ([`super::Value::Position`] payload).
    pub const POSITION_WGS84: DataKind = DataKind::from_static("position.wgs84");
    /// A symbolic room position (payload is the room id text).
    pub const POSITION_ROOM: DataKind = DataKind::from_static("position.room");
    /// A WiFi signal-strength scan (payload maps AP id to RSSI dBm).
    pub const WIFI_SCAN: DataKind = DataKind::from_static("wifi.scan");
    /// An accelerometer/motion sample (payload is a map).
    pub const MOTION_SAMPLE: DataKind = DataKind::from_static("motion.sample");
}

/// A self-describing dynamic value.
///
/// This is the payload representation of [`DataItem`]s and the argument /
/// return representation of the reflective `invoke` surfaces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Value {
    /// Absence of a value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A floating point number.
    Float(f64),
    /// A text string.
    Text(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// An ordered list of values.
    List(Vec<Value>),
    /// A string-keyed map of values.
    Map(BTreeMap<String, Value>),
    /// A position (the primary domain value of a positioning middleware).
    Position(Position),
}

impl Value {
    /// The variant name, used in diagnostics.
    pub fn variant_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Text(_) => "text",
            Value::Bytes(_) => "bytes",
            Value::List(_) => "list",
            Value::Map(_) => "map",
            Value::Position(_) => "position",
        }
    }

    /// Numeric view: `Int` and `Float` read as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Position view.
    pub fn as_position(&self) -> Option<&Position> {
        match self {
            Value::Position(p) => Some(p),
            _ => None,
        }
    }

    /// Map view.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// List view.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Position view as an error-producing accessor for `?`-style code.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PayloadMismatch`] when the value is not a
    /// position.
    pub fn expect_position(&self) -> Result<&Position, CoreError> {
        self.as_position().ok_or(CoreError::PayloadMismatch {
            expected: "position",
            found: self.variant_name(),
        })
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<Position> for Value {
    fn from(v: Position) -> Self {
        Value::Position(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}
impl From<BTreeMap<String, Value>> for Value {
    fn from(v: BTreeMap<String, Value>) -> Self {
        Value::Map(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::List(l) => write!(f, "[{} items]", l.len()),
            Value::Map(m) => write!(f, "{{{} entries}}", m.len()),
            Value::Position(p) => write!(f, "{p}"),
        }
    }
}

/// A technology-independent position estimate: WGS-84 coordinates plus an
/// optional horizontal accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    coord: Wgs84,
    accuracy_m: Option<f64>,
}

impl Position {
    /// Creates a position with an optional 1-sigma horizontal accuracy in
    /// metres.
    pub fn new(coord: Wgs84, accuracy_m: Option<f64>) -> Self {
        Position { coord, accuracy_m }
    }

    /// The WGS-84 coordinates.
    pub fn coord(&self) -> &Wgs84 {
        &self.coord
    }

    /// The estimated horizontal accuracy in metres, if known.
    pub fn accuracy_m(&self) -> Option<f64> {
        self.accuracy_m
    }

    /// Distance in metres to another position.
    pub fn distance_m(&self, other: &Position) -> f64 {
        self.coord.distance_m(&other.coord)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.accuracy_m {
            Some(a) => write!(f, "{} ±{a:.1}m", self.coord),
            None => write!(f, "{}", self.coord),
        }
    }
}

// ---------------------------------------------------------------------
// Payload arena
// ---------------------------------------------------------------------

/// Copyable provenance token linking a [`Payload`] to the arena slot it
/// was interned into: a (generation, slot) pair resolved against the
/// owning [`PayloadArena`]. [`PayloadRef::DETACHED`] marks payloads with
/// no arena provenance — plain shared values, or values explicitly
/// [`Payload::detach`]ed at a cross-shard seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PayloadRef {
    generation: u32,
    slot: u32,
}

impl PayloadRef {
    /// The token carried by payloads with no arena provenance.
    pub const DETACHED: PayloadRef = PayloadRef {
        generation: u32::MAX,
        slot: u32::MAX,
    };

    /// Whether this token marks a detached (non-arena) payload.
    pub fn is_detached(self) -> bool {
        self == PayloadRef::DETACHED
    }

    /// The logical-time generation the slot belongs to (low 32 bits).
    pub fn generation(self) -> u32 {
        self.generation
    }

    /// The slot index within its generation.
    pub fn slot(self) -> u32 {
        self.slot
    }
}

impl Default for PayloadRef {
    fn default() -> Self {
        PayloadRef::DETACHED
    }
}

/// Counters describing a [`PayloadArena`]'s slot traffic; see
/// [`PayloadArena::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Values interned into arena slots since creation.
    pub interned: u64,
    /// Slots returned to the free list for reuse.
    pub recycled: u64,
    /// Slots abandoned because a holder outlived the cooling window
    /// (their memory is freed by the holder's final drop — abandoned,
    /// not leaked).
    pub escaped: u64,
    /// Slots registered in not-yet-retired generations.
    pub live: usize,
    /// Retired slots still referenced, awaiting recycling.
    pub cooling: usize,
    /// Recycled slots ready for reuse.
    pub free: usize,
}

/// Watermark distance before a sealed generation is retired: slots from
/// generation `g` are reclaimed once the watermark passes `g + LAG`,
/// giving level rings and other same-shard transients time to release
/// their clones so slots recycle instead of cooling.
pub const ARENA_RETIRE_LAG: u64 = 4;

/// Upper bound on pooled free slots; beyond this, retired slots drop
/// their buffers instead of hoarding them.
const ARENA_FREE_CAP: usize = 512;

/// Upper bound on the cooling queue (retired-but-still-referenced
/// slots). Sized past the application sink's 1024-item history ring so
/// sink-retained payloads cycle back instead of escaping.
const ARENA_COOLING_CAP: usize = 4096;

/// How many cooling slots one [`PayloadArena::advance`] call reinspects.
const ARENA_SCAN_BUDGET: usize = 32;

/// A per-shard slab of recycled payload slots keyed by logical time.
///
/// The arena's contract mirrors the channel layer's prefix-claim rings:
/// values interned during logical time `t` join generation `t`; when the
/// watermark advances past `t + `[`ARENA_RETIRE_LAG`], the whole
/// generation is retired in one sweep — slots nobody else references go
/// back to the free list (keeping their `String`/`Vec` capacity for the
/// next intern), slots still shared move to a bounded cooling queue that
/// is drained opportunistically. There is no per-item bookkeeping on the
/// hot path and no unsafety: a slot is only ever rewritten while the
/// arena holds the sole reference, so stashing an interned payload
/// anywhere (history, snapshots, application code) is always safe — the
/// slot simply degrades to plain shared-`Arc` semantics instead of
/// recycling.
///
/// The arena changes *where bytes live*, never *what they are*: a
/// pipeline run with and without an arena produces byte-identical trees,
/// history and snapshots (pinned by `tests/channel_equivalence.rs`).
#[derive(Debug, Default)]
pub struct PayloadArena {
    /// Uniquely-held slots ready for rewriting.
    free: Vec<Arc<Value>>,
    /// Sealed generations awaiting retirement, oldest first, keyed by
    /// the watermark at seal time (strictly increasing).
    generations: VecDeque<(u64, Vec<Arc<Value>>)>,
    /// Slots interned since the last watermark advance.
    current: Vec<Arc<Value>>,
    current_gen: u64,
    /// Retired slots that were still referenced, oldest first. Holders
    /// release in roughly FIFO order (rings and the sink history are
    /// FIFO), so draining from the front recovers them in O(1) amortized.
    cooling: VecDeque<Arc<Value>>,
    /// Emptied generation buckets kept for reuse, so sealing a
    /// generation per step costs a pointer swap instead of a heap
    /// allocation.
    spare_buckets: Vec<Vec<Arc<Value>>>,
    interned: u64,
    recycled: u64,
    escaped: u64,
}

impl PayloadArena {
    /// Creates an empty arena at watermark 0.
    pub fn new() -> Self {
        PayloadArena::default()
    }

    /// Interns `value` into a recycled slot (or a fresh one when the
    /// free list is dry) and returns the payload carrying its
    /// [`PayloadRef`].
    pub fn intern(&mut self, value: Value) -> Payload {
        self.intern_with(|slot| *slot = value)
    }

    /// Interns by writing into the recycled slot in place. The closure
    /// receives the slot's previous `Value` (arbitrary, typically the
    /// variant it held last generation) so callers can reuse its heap
    /// capacity — e.g. `write!` into a retained `Value::Text` buffer
    /// instead of formatting into a fresh `String`.
    pub fn intern_with(&mut self, write: impl FnOnce(&mut Value)) -> Payload {
        let mut arc = self.free.pop().unwrap_or_else(|| Arc::new(Value::Null));
        // Free-list slots are uniquely held by construction.
        write(Arc::get_mut(&mut arc).expect("free arena slot uniquely held"));
        let origin = PayloadRef {
            generation: self.current_gen as u32,
            slot: self.current.len() as u32,
        };
        self.current.push(arc.clone());
        self.interned += 1;
        Payload { value: arc, origin }
    }

    /// Advances the logical-time watermark: seals the current generation,
    /// retires every generation older than `watermark -`
    /// [`ARENA_RETIRE_LAG`] in one prefix sweep, and reinspects a bounded
    /// number of cooling slots.
    pub fn advance(&mut self, watermark: u64) {
        if !self.current.is_empty() {
            let fresh = self.spare_buckets.pop().unwrap_or_default();
            let bucket = std::mem::replace(&mut self.current, fresh);
            self.generations.push_back((self.current_gen, bucket));
        }
        self.current_gen = watermark;
        while let Some((sealed_at, _)) = self.generations.front() {
            if sealed_at.saturating_add(ARENA_RETIRE_LAG) > watermark {
                break;
            }
            let (_, mut bucket) = self.generations.pop_front().expect("checked front");
            for arc in bucket.drain(..) {
                if Arc::strong_count(&arc) == 1 {
                    self.push_free(arc);
                } else {
                    self.cooling.push_back(arc);
                }
            }
            // The emptied bucket keeps its capacity for a later seal.
            if self.spare_buckets.len() < 8 {
                self.spare_buckets.push(bucket);
            }
        }
        for _ in 0..ARENA_SCAN_BUDGET {
            match self.cooling.front() {
                Some(arc) if Arc::strong_count(arc) == 1 => {
                    let arc = self.cooling.pop_front().expect("checked front");
                    self.push_free(arc);
                }
                Some(_) if self.cooling.len() > ARENA_COOLING_CAP => {
                    // A holder outlived the cooling window (e.g. a
                    // component stashed the payload indefinitely); stop
                    // tracking the slot — its memory is the holder's.
                    self.cooling.pop_front();
                    self.escaped += 1;
                }
                _ => break,
            }
        }
    }

    /// Drops every generation and the cooling queue, keeping the free
    /// list. Used when a shard restores from a snapshot: outstanding
    /// interned payloads stay valid (they own their `Arc`s); the arena
    /// just stops trying to recycle them.
    pub fn reset(&mut self) {
        for (_, bucket) in self.generations.drain(..) {
            self.escaped += bucket.len() as u64;
        }
        self.escaped += (self.current.len() + self.cooling.len()) as u64;
        self.current.clear();
        self.cooling.clear();
        self.current_gen = 0;
    }

    /// Slot-traffic counters and queue depths.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            interned: self.interned,
            recycled: self.recycled,
            escaped: self.escaped,
            live: self.current.len()
                + self
                    .generations
                    .iter()
                    .map(|(_, b)| b.len())
                    .sum::<usize>(),
            cooling: self.cooling.len(),
            free: self.free.len(),
        }
    }

    /// The current logical-time watermark.
    pub fn watermark(&self) -> u64 {
        self.current_gen
    }

    fn push_free(&mut self, arc: Arc<Value>) {
        if self.free.len() < ARENA_FREE_CAP {
            self.recycled += 1;
            self.free.push(arc);
        } else {
            self.escaped += 1;
        }
    }
}

/// A [`DataItem`] payload: a [`Value`] behind an [`Arc`], so fanning an
/// item out to many downstream edges shares one allocation instead of
/// deep-cloning the value per edge.
///
/// `Payload` dereferences to [`Value`], so all read accessors
/// (`as_text`, `as_position`, …) work unchanged. It is immutable by
/// sharing; the rare mutation site goes through [`Payload::make_mut`]
/// (copy-on-write).
///
/// A payload produced by [`PayloadArena::intern`] additionally carries
/// its [`PayloadRef`] provenance; equality, serialization and display
/// ignore it (an interned and a detached payload holding the same value
/// are indistinguishable to observers). [`Payload::detach`] severs the
/// provenance at seams that move items across shard/process boundaries.
#[derive(Debug, Clone, Default)]
pub struct Payload {
    value: Arc<Value>,
    origin: PayloadRef,
}

impl Payload {
    /// Wraps a value (one allocation; every subsequent clone is an
    /// `Arc` reference-count bump).
    pub fn new(value: Value) -> Self {
        Payload {
            value: Arc::new(value),
            origin: PayloadRef::DETACHED,
        }
    }

    /// Borrow of the wrapped value (also available via `Deref`).
    pub fn as_value(&self) -> &Value {
        &self.value
    }

    /// An owned deep copy of the wrapped value, for APIs that need a
    /// bare [`Value`].
    pub fn to_value(&self) -> Value {
        (*self.value).clone()
    }

    /// Copy-on-write mutable access: clones the inner value only when
    /// the payload is currently shared with another item. Detaches the
    /// arena provenance — the mutated value no longer matches any slot.
    pub fn make_mut(&mut self) -> &mut Value {
        self.origin = PayloadRef::DETACHED;
        Arc::make_mut(&mut self.value)
    }

    /// Whether two payloads share the same allocation (zero-copy
    /// fan-out diagnostic; implies equality).
    pub fn shares_with(&self, other: &Payload) -> bool {
        Arc::ptr_eq(&self.value, &other.value)
    }

    /// The arena provenance token ([`PayloadRef::DETACHED`] for plain
    /// shared payloads).
    pub fn origin(&self) -> PayloadRef {
        self.origin
    }

    /// Whether the payload still carries arena provenance.
    pub fn is_interned(&self) -> bool {
        !self.origin.is_detached()
    }

    /// A copy of this payload with the arena provenance severed — the
    /// explicit conversion applied at cross-shard seams (distribution
    /// links, snapshot capture, history materialization). Cheap: the
    /// value stays behind the same shared `Arc`; the arena will observe
    /// the outstanding reference and leave the slot alone.
    pub fn detach(&self) -> Payload {
        Payload {
            value: self.value.clone(),
            origin: PayloadRef::DETACHED,
        }
    }

    /// In-place [`Payload::detach`].
    pub fn detach_in_place(&mut self) {
        self.origin = PayloadRef::DETACHED;
    }
}

impl std::ops::Deref for Payload {
    type Target = Value;
    fn deref(&self) -> &Value {
        &self.value
    }
}

impl<'a> From<&'a Payload> for Payload {
    fn from(p: &'a Payload) -> Self {
        p.clone()
    }
}

impl From<Value> for Payload {
    fn from(v: Value) -> Self {
        Payload::new(v)
    }
}

macro_rules! payload_from {
    ($($t:ty),*) => {$(
        impl From<$t> for Payload {
            fn from(v: $t) -> Self {
                Payload::new(Value::from(v))
            }
        }
    )*};
}
payload_from!(
    bool,
    i64,
    f64,
    &str,
    String,
    Position,
    Vec<Value>,
    BTreeMap<String, Value>
);

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.value, &other.value) || *self.value == *other.value
    }
}

impl PartialEq<Value> for Payload {
    fn eq(&self, other: &Value) -> bool {
        *self.value == *other
    }
}

impl PartialEq<Payload> for Value {
    fn eq(&self, other: &Payload) -> bool {
        *self == *other.value
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&*self.value, f)
    }
}

impl Serialize for Payload {
    fn to_content(&self) -> serde::Content {
        self.value.to_content()
    }
}

impl Deserialize for Payload {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        Value::from_content(c).map(Payload::new)
    }
}

// ---------------------------------------------------------------------
// Interned attribute keys and flattened attrs
// ---------------------------------------------------------------------

/// A process-wide interned attribute key: a copyable token holding a
/// `&'static str`. Attribute names form a tiny closed set at runtime
/// (feature names like `"hdop"`, `"satellites"`, `"source"`), so the
/// interner leaks each distinct name once and every later use is a
/// pointer copy. Ordering and display follow the name string, so
/// iteration order over [`Attrs`] is identical to the old
/// `BTreeMap<String, _>` representation.
#[derive(Debug, Clone, Copy, Eq)]
pub struct InternedKey {
    id: u32,
    name: &'static str,
}

fn key_interner() -> &'static Mutex<BTreeMap<&'static str, InternedKey>> {
    static KEYS: OnceLock<Mutex<BTreeMap<&'static str, InternedKey>>> = OnceLock::new();
    KEYS.get_or_init(Mutex::default)
}

impl InternedKey {
    /// Interns `name`, returning the process-wide token for it. The
    /// first intern of a distinct name allocates (and intentionally
    /// leaks) one copy; every subsequent intern is a lookup.
    pub fn intern(name: &str) -> Self {
        let mut keys = key_interner().lock().expect("key interner poisoned");
        if let Some(k) = keys.get(name) {
            return *k;
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let key = InternedKey {
            id: keys.len() as u32,
            name: leaked,
        };
        keys.insert(leaked, key);
        key
    }

    /// The key name.
    pub fn as_str(self) -> &'static str {
        self.name
    }

    /// The dense process-wide id (assigned in first-intern order).
    pub fn id(self) -> u32 {
        self.id
    }
}

impl PartialEq for InternedKey {
    fn eq(&self, other: &Self) -> bool {
        // Ids are unique per name within the process-wide interner.
        self.id == other.id
    }
}

impl PartialOrd for InternedKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InternedKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Order by name, not id, so Attrs iterate in the same order the
        // BTreeMap representation did.
        self.name.cmp(other.name)
    }
}

impl std::hash::Hash for InternedKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Display for InternedKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

/// Feature-attached attributes of a [`DataItem`]: a flat vec of
/// ([`InternedKey`], [`Value`]) pairs sorted by key name, behind one
/// optional shared `Arc`.
///
/// The representation is tuned for the two real access patterns: the
/// empty map (every freshly produced item — `None`, zero allocation,
/// copied by `Clone` without touching a refcount) and a handful of
/// feature-attached entries (one small allocation, binary-searched).
/// Copy-on-write semantics and the observable iteration order of the
/// previous `Arc<BTreeMap<String, Value>>` representation are preserved;
/// serialization still renders a string-keyed map.
#[derive(Debug, Clone, Default)]
pub struct Attrs(Option<Arc<Vec<(InternedKey, Value)>>>);

impl Attrs {
    /// An empty attribute map (no allocation).
    pub fn new() -> Self {
        Attrs(None)
    }

    /// Sets an attribute (copy-on-write when shared). Returns the
    /// previous value, if any.
    pub fn insert(&mut self, key: impl AsRef<str>, value: Value) -> Option<Value> {
        let key = InternedKey::intern(key.as_ref());
        match &mut self.0 {
            None => {
                self.0 = Some(Arc::new(vec![(key, value)]));
                None
            }
            Some(entries) => {
                let entries = Arc::make_mut(entries);
                match entries.binary_search_by(|(k, _)| k.as_str().cmp(key.as_str())) {
                    Ok(i) => Some(std::mem::replace(&mut entries[i].1, value)),
                    Err(i) => {
                        entries.insert(i, (key, value));
                        None
                    }
                }
            }
        }
    }

    /// Removes an attribute (copy-on-write when shared).
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let entries = self.0.as_mut()?;
        let i = entries
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()?;
        let entries = Arc::make_mut(entries);
        let (_, v) = entries.remove(i);
        if entries.is_empty() {
            self.0 = None;
        }
        Some(v)
    }

    /// Reads an attribute by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        let entries = self.0.as_ref()?;
        let i = entries
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()?;
        Some(&entries[i].1)
    }

    /// Whether an attribute with this name is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |e| e.len())
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Iterates attribute names in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates `(name, value)` pairs in sorted name order.
    pub fn iter(&self) -> AttrsIter<'_> {
        AttrsIter {
            entries: self.0.as_deref().map_or(&[], |e| e.as_slice()),
            next: 0,
        }
    }

    /// An owned `BTreeMap` copy, for callers that need the map form
    /// (e.g. embedding attrs in a [`Value::Map`]).
    pub fn to_map(&self) -> BTreeMap<String, Value> {
        self.iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// Whether two attribute maps share the same allocation (both-empty
    /// counts as shared).
    pub fn shares_with(&self, other: &Attrs) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Iterator over [`Attrs`] entries in sorted name order.
#[derive(Debug, Clone)]
pub struct AttrsIter<'a> {
    entries: &'a [(InternedKey, Value)],
    next: usize,
}

impl<'a> Iterator for AttrsIter<'a> {
    type Item = (&'a str, &'a Value);
    fn next(&mut self) -> Option<Self::Item> {
        let (k, v) = self.entries.get(self.next)?;
        self.next += 1;
        Some((k.as_str(), v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.entries.len() - self.next;
        (rem, Some(rem))
    }
}

impl From<BTreeMap<String, Value>> for Attrs {
    fn from(m: BTreeMap<String, Value>) -> Self {
        if m.is_empty() {
            return Attrs(None);
        }
        // BTreeMap iterates sorted by name, matching the vec invariant.
        Attrs(Some(Arc::new(
            m.into_iter()
                .map(|(k, v)| (InternedKey::intern(&k), v))
                .collect(),
        )))
    }
}

impl<'a> IntoIterator for &'a Attrs {
    type Item = (&'a str, &'a Value);
    type IntoIter = AttrsIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl PartialEq for Attrs {
    fn eq(&self, other: &Self) -> bool {
        self.shares_with(other)
            || (self.len() == other.len() && self.iter().eq(other.iter()))
    }
}

impl Serialize for Attrs {
    fn to_content(&self) -> serde::Content {
        // Render the same string-keyed map the BTreeMap representation
        // produced (entries are already name-sorted).
        serde::Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_content()))
                .collect(),
        )
    }
}

impl Deserialize for Attrs {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        BTreeMap::from_content(c).map(Attrs::from)
    }
}

/// The unit of data travelling along processing-graph edges.
///
/// Cloning a `DataItem` is cheap: the payload lives behind a shared
/// [`Arc`] (possibly arena-interned) and the attrs behind an optional
/// one, so fan-out to N consumers bumps reference counts instead of
/// deep-copying the data N times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataItem {
    /// What the payload is.
    pub kind: DataKind,
    /// Simulated time at which the item was produced.
    pub timestamp: SimTime,
    /// The payload itself, shared zero-copy between edges.
    pub payload: Payload,
    /// Extra data associated with the item by Component Features
    /// (paper §2.1 "Adding Data"), keyed by attribute name.
    pub attrs: Attrs,
}

impl DataItem {
    /// Creates an item with no attributes. Accepts anything convertible
    /// into a [`Payload`] — a bare [`Value`], primitives, or an existing
    /// (shared) payload.
    pub fn new(kind: DataKind, timestamp: SimTime, payload: impl Into<Payload>) -> Self {
        DataItem {
            kind,
            timestamp,
            payload: payload.into(),
            attrs: Attrs::new(),
        }
    }

    /// Builder-style attribute attachment.
    pub fn with_attr(mut self, key: impl AsRef<str>, value: Value) -> Self {
        self.attrs.insert(key, value);
        self
    }

    /// Reads an attribute.
    pub fn attr(&self, key: &str) -> Option<&Value> {
        self.attrs.get(key)
    }

    /// A copy of this item with arena provenance severed (see
    /// [`Payload::detach`]) — applied at distribution, snapshot and
    /// history seams.
    pub fn detached(&self) -> DataItem {
        DataItem {
            kind: self.kind.clone(),
            timestamp: self.timestamp,
            payload: self.payload.detach(),
            attrs: self.attrs.clone(),
        }
    }

    /// The payload as a position.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PayloadMismatch`] when the payload is not a
    /// position.
    pub fn position(&self) -> Result<&Position, CoreError> {
        self.payload.expect_position()
    }
}

impl fmt::Display for DataItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} @{}] {}", self.kind, self.timestamp, self.payload)?;
        if !self.attrs.is_empty() {
            write!(f, " +{:?}", self.attrs.keys().collect::<Vec<_>>())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wgs(lat: f64, lon: f64) -> Wgs84 {
        Wgs84::new(lat, lon, 0.0).unwrap()
    }

    #[test]
    fn kind_equality_and_display() {
        assert_eq!(kinds::POSITION_WGS84, DataKind::new("position.wgs84"));
        assert_ne!(kinds::POSITION_WGS84, kinds::POSITION_ROOM);
        assert_eq!(kinds::RAW_STRING.to_string(), "raw.string");
    }

    #[test]
    fn value_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("hi").as_text(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Null.as_f64(), None);
        let p = Position::new(wgs(1.0, 2.0), Some(3.0));
        assert_eq!(Value::from(p).as_position(), Some(&p));
    }

    #[test]
    fn expect_position_reports_mismatch() {
        let err = Value::Int(1).expect_position().unwrap_err();
        assert_eq!(
            err,
            CoreError::PayloadMismatch {
                expected: "position",
                found: "int"
            }
        );
    }

    #[test]
    fn item_attributes() {
        let item = DataItem::new(kinds::NMEA_SENTENCE, SimTime::ZERO, Value::from("x"))
            .with_attr("hdop", Value::Float(1.5));
        assert_eq!(item.attr("hdop").and_then(Value::as_f64), Some(1.5));
        assert_eq!(item.attr("nope"), None);
        assert!(format!("{item}").contains("hdop"));
    }

    #[test]
    fn interned_keys_dedupe_and_order_by_name() {
        let a = InternedKey::intern("zeta");
        let b = InternedKey::intern("alpha");
        let a2 = InternedKey::intern("zeta");
        assert_eq!(a, a2);
        assert_eq!(a.as_str(), "zeta");
        assert!(b < a, "keys order by name, not intern order");
    }

    #[test]
    fn attrs_preserve_sorted_iteration_and_cow() {
        let mut attrs = Attrs::new();
        assert!(attrs.is_empty());
        attrs.insert("zeta", Value::Int(1));
        attrs.insert("alpha", Value::Int(2));
        attrs.insert("mid", Value::Int(3));
        let names: Vec<&str> = attrs.keys().collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
        assert_eq!(attrs.get("mid"), Some(&Value::Int(3)));
        assert_eq!(attrs.insert("mid", Value::Int(4)), Some(Value::Int(3)));

        // Copy-on-write: a clone is untouched by later inserts.
        let shared = attrs.clone();
        assert!(shared.shares_with(&attrs));
        attrs.insert("new", Value::Bool(true));
        assert!(!shared.shares_with(&attrs));
        assert_eq!(shared.len(), 3);
        assert_eq!(attrs.len(), 4);

        assert_eq!(attrs.remove("alpha"), Some(Value::Int(2)));
        assert_eq!(attrs.remove("alpha"), None);
    }

    #[test]
    fn attrs_match_btreemap_serialization() {
        let mut map = BTreeMap::new();
        map.insert("b".to_string(), Value::Int(2));
        map.insert("a".to_string(), Value::from("x"));
        let attrs = Attrs::from(map.clone());
        assert_eq!(attrs.to_content(), map.to_content());
        assert_eq!(attrs.to_map(), map);
        let back = Attrs::from_content(&attrs.to_content()).unwrap();
        assert_eq!(back, attrs);
    }

    #[test]
    fn arena_recycles_slots_at_watermark() {
        let mut arena = PayloadArena::new();
        let p = arena.intern(Value::Text("hello".into()));
        assert!(p.is_interned());
        assert_eq!(p.as_text(), Some("hello"));
        drop(p);
        // Generation 0 retires once the watermark passes the lag.
        arena.advance(ARENA_RETIRE_LAG);
        let s = arena.stats();
        assert_eq!(s.recycled, 1);
        assert_eq!(s.free, 1);
        // The next intern reuses the slot; the closure sees the retained
        // buffer.
        let p2 = arena.intern_with(|v| {
            assert_eq!(v.as_text(), Some("hello"));
            if let Value::Text(s) = v {
                s.clear();
                s.push_str("world");
            }
        });
        assert_eq!(p2.as_text(), Some("world"));
        assert_eq!(arena.stats().free, 0);
    }

    #[test]
    fn arena_leaves_shared_slots_alone() {
        let mut arena = PayloadArena::new();
        let p = arena.intern(Value::Int(7));
        arena.advance(ARENA_RETIRE_LAG + 1);
        // Still held by `p`: the slot cools instead of recycling and the
        // payload stays readable.
        assert_eq!(arena.stats().cooling, 1);
        assert_eq!(p.as_i64(), Some(7));
        drop(p);
        arena.advance(ARENA_RETIRE_LAG + 2);
        assert_eq!(arena.stats().cooling, 0);
        assert_eq!(arena.stats().free, 1);
    }

    #[test]
    fn detach_severs_provenance_not_value() {
        let mut arena = PayloadArena::new();
        let p = arena.intern(Value::from("x"));
        let d = p.detach();
        assert!(p.is_interned());
        assert!(!d.is_interned());
        assert!(d.shares_with(&p));
        assert_eq!(d, p);
    }

    #[test]
    fn interned_and_plain_payloads_serialize_identically() {
        let mut arena = PayloadArena::new();
        let interned = arena.intern(Value::from("nmea"));
        let plain = Payload::new(Value::from("nmea"));
        assert_eq!(interned.to_content(), plain.to_content());
        assert_eq!(interned, plain);
    }

    #[test]
    fn position_distance() {
        let a = Position::new(wgs(0.0, 0.0), None);
        let b = Position::new(wgs(0.0, 1.0), Some(10.0));
        assert!(a.distance_m(&b) > 100_000.0);
        assert!(format!("{b}").contains("±10.0m"));
    }

    #[test]
    fn serde_round_trip_items() {
        use proptest::prelude::*;
        let mut runner = proptest::test_runner::TestRunner::default();
        let strategy = (
            proptest::option::of(-90.0f64..90.0),
            any::<i64>(),
            ".{0,20}",
            0u64..u64::MAX / 2,
        );
        runner
            .run(&strategy, |(lat, int_v, text, ts)| {
                let payload = match lat {
                    Some(lat) => Value::from(Position::new(
                        Wgs84::new(lat, 10.0, 0.0).unwrap(),
                        Some(5.0),
                    )),
                    None => Value::List(vec![Value::Int(int_v), Value::from(text.clone())]),
                };
                let item = DataItem::new(kinds::POSITION_WGS84, SimTime::from_micros(ts), payload)
                    .with_attr("k", Value::Bool(true));
                let json = serde_json::to_string(&item).unwrap();
                let back: DataItem = serde_json::from_str(&json).unwrap();
                prop_assert_eq!(item, back);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn variant_names_cover_all() {
        for (v, name) in [
            (Value::Null, "null"),
            (Value::Bool(true), "bool"),
            (Value::Int(1), "int"),
            (Value::Float(1.0), "float"),
            (Value::from("s"), "text"),
            (Value::Bytes(vec![1]), "bytes"),
            (Value::List(vec![]), "list"),
            (Value::Map(BTreeMap::new()), "map"),
        ] {
            assert_eq!(v.variant_name(), name);
            assert!(!format!("{v}").is_empty());
        }
    }
}
