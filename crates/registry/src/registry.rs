use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use crate::{Requirement, ServiceDescriptor};

/// Opaque identifier of a registered service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceId(u64);

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc#{}", self.0)
    }
}

/// Lifecycle state of a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceState {
    /// Registered but with unsatisfied mandatory requirements.
    Registered,
    /// All mandatory requirements wired to providers.
    Resolved,
}

/// A resolved wiring from one service's requirement to a provider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wire {
    /// The requirement that was satisfied.
    pub requirement: Requirement,
    /// The service providing the matching capability.
    pub provider: ServiceId,
}

/// Lifecycle event broadcast to registry subscribers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceEvent {
    /// A service was registered.
    Registered(ServiceId),
    /// A service transitioned to [`ServiceState::Resolved`].
    Resolved(ServiceId),
    /// A previously resolved service lost a mandatory provider.
    Unresolved(ServiceId),
    /// A service was unregistered.
    Unregistered(ServiceId),
}

/// Error type for registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The service id is not (or no longer) registered.
    UnknownService(ServiceId),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownService(id) => write!(f, "unknown service {id}"),
        }
    }
}

impl Error for RegistryError {}

struct Entry<T> {
    descriptor: ServiceDescriptor,
    payload: T,
    state: ServiceState,
    wires: Vec<Wire>,
}

struct Inner<T> {
    next_id: u64,
    services: BTreeMap<ServiceId, Entry<T>>,
    subscribers: Vec<Sender<ServiceEvent>>,
    /// Capability index: namespace → ids of services providing it, in
    /// ascending-id order. Maintained on register/unregister so provider
    /// lookup (resolution, [`Registry::providers_of`],
    /// [`Registry::providers_matching`]) avoids scanning every service.
    by_namespace: BTreeMap<String, Vec<ServiceId>>,
}

impl<T> Inner<T> {
    /// Adds `id`'s capability namespaces to the index. Ids are assigned
    /// monotonically, so pushing keeps each bucket in ascending order —
    /// which is what preserves the registry's deterministic
    /// lowest-id-provider-wins resolution.
    fn index_capabilities(&mut self, id: ServiceId) {
        let Some(entry) = self.services.get(&id) else {
            return;
        };
        let mut namespaces: Vec<&str> = entry
            .descriptor
            .capabilities()
            .iter()
            .map(|c| c.name())
            .collect();
        namespaces.sort_unstable();
        namespaces.dedup();
        let namespaces: Vec<String> = namespaces.into_iter().map(String::from).collect();
        for ns in namespaces {
            let bucket = self.by_namespace.entry(ns).or_default();
            match bucket.binary_search(&id) {
                Ok(_) => {}
                Err(pos) => bucket.insert(pos, id),
            }
        }
    }

    /// Removes `id` from every index bucket it appears in.
    fn unindex_capabilities(&mut self, id: ServiceId, descriptor: &ServiceDescriptor) {
        for cap in descriptor.capabilities() {
            if let Some(bucket) = self.by_namespace.get_mut(cap.name()) {
                bucket.retain(|sid| *sid != id);
                if bucket.is_empty() {
                    self.by_namespace.remove(cap.name());
                }
            }
        }
    }
}

/// A dynamic service registry with OSGi-style dependency resolution.
///
/// `T` is the service payload (an implementation handle, factory, …).
/// The registry is `Send + Sync`; handles can be cloned cheaply.
///
/// Resolution semantics:
///
/// * A service is *resolved* when every mandatory requirement matches a
///   capability of some **other, itself resolved** service (self-wiring is
///   not allowed), so pipelines resolve leaf-first and resolution is
///   transitive. The lowest-id matching provider is chosen, making
///   resolution deterministic.
/// * Registering a service re-evaluates everything unresolved (new
///   capabilities may satisfy old requirements).
/// * Unregistering a provider re-evaluates its dependents, cascading
///   [`ServiceEvent::Unresolved`] events as needed.
pub struct Registry<T> {
    inner: Arc<RwLock<Inner<T>>>,
}

impl<T> Clone for Registry<T> {
    fn clone(&self) -> Self {
        Registry {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for Registry<T> {
    fn default() -> Self {
        Registry::new()
    }
}

impl<T> fmt::Debug for Registry<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("Registry")
            .field("services", &inner.services.len())
            .field("subscribers", &inner.subscribers.len())
            .finish()
    }
}

impl<T> Registry<T> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RwLock::new(Inner {
                next_id: 1,
                services: BTreeMap::new(),
                subscribers: Vec::new(),
                by_namespace: BTreeMap::new(),
            })),
        }
    }

    /// Registers a service and triggers a resolution pass.
    ///
    /// Returns the new service's id. Emits [`ServiceEvent::Registered`]
    /// and possibly a batch of [`ServiceEvent::Resolved`] events.
    pub fn register(&self, descriptor: ServiceDescriptor, payload: T) -> ServiceId {
        let mut inner = self.inner.write();
        let id = ServiceId(inner.next_id);
        inner.next_id += 1;
        inner.services.insert(
            id,
            Entry {
                descriptor,
                payload,
                state: ServiceState::Registered,
                wires: Vec::new(),
            },
        );
        inner.index_capabilities(id);
        let mut events = vec![ServiceEvent::Registered(id)];
        Self::resolve_all(&mut inner, &mut events);
        Self::publish(&mut inner, events);
        id
    }

    /// Unregisters a service, rewiring or unresolving dependents.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownService`] when `id` is not
    /// registered.
    pub fn unregister(&self, id: ServiceId) -> Result<T, RegistryError> {
        let mut inner = self.inner.write();
        let entry = inner
            .services
            .remove(&id)
            .ok_or(RegistryError::UnknownService(id))?;
        inner.unindex_capabilities(id, &entry.descriptor);
        let mut events = vec![ServiceEvent::Unregistered(id)];
        Self::unresolve_dependents_of(&mut inner, id, &mut events);
        Self::resolve_all(&mut inner, &mut events);
        Self::publish(&mut inner, events);
        Ok(entry.payload)
    }

    /// Whether the service is currently resolved.
    pub fn is_resolved(&self, id: ServiceId) -> bool {
        self.inner
            .read()
            .services
            .get(&id)
            .is_some_and(|e| e.state == ServiceState::Resolved)
    }

    /// The lifecycle state of a service.
    pub fn state(&self, id: ServiceId) -> Option<ServiceState> {
        self.inner.read().services.get(&id).map(|e| e.state)
    }

    /// The descriptor of a service.
    pub fn descriptor(&self, id: ServiceId) -> Option<ServiceDescriptor> {
        self.inner
            .read()
            .services
            .get(&id)
            .map(|e| e.descriptor.clone())
    }

    /// Current wires of a service (empty when unresolved).
    pub fn wires(&self, id: ServiceId) -> Vec<Wire> {
        self.inner
            .read()
            .services
            .get(&id)
            .map(|e| e.wires.clone())
            .unwrap_or_default()
    }

    /// Ids of all registered services in registration order.
    pub fn service_ids(&self) -> Vec<ServiceId> {
        self.inner.read().services.keys().copied().collect()
    }

    /// Ids of services whose descriptor provides a capability in the given
    /// namespace, in ascending-id (registration) order.
    pub fn providers_of(&self, namespace: &str) -> Vec<ServiceId> {
        self.inner
            .read()
            .by_namespace
            .get(namespace)
            .cloned()
            .unwrap_or_default()
    }

    /// Ids of services providing a capability that satisfies `req`
    /// (namespace plus all constraint properties), in ascending-id
    /// order — the provider-lookup primitive used by pipeline
    /// synthesizers searching the capability space.
    pub fn providers_matching(&self, req: &Requirement) -> Vec<ServiceId> {
        let inner = self.inner.read();
        let Some(bucket) = inner.by_namespace.get(req.name()) else {
            return Vec::new();
        };
        bucket
            .iter()
            .filter(|id| {
                inner
                    .services
                    .get(id)
                    .is_some_and(|e| e.descriptor.capabilities().iter().any(|c| req.matches(c)))
            })
            .copied()
            .collect()
    }

    /// Subscribes to lifecycle events. Each subscriber receives every
    /// event from the moment of subscription.
    pub fn subscribe(&self) -> Receiver<ServiceEvent> {
        let (tx, rx) = unbounded();
        self.inner.write().subscribers.push(tx);
        rx
    }

    /// Applies `f` to the payload of a service.
    pub fn with_payload<R>(&self, id: ServiceId, f: impl FnOnce(&T) -> R) -> Option<R> {
        let inner = self.inner.read();
        inner.services.get(&id).map(|e| f(&e.payload))
    }

    fn publish(inner: &mut Inner<T>, events: Vec<ServiceEvent>) {
        inner
            .subscribers
            .retain(|tx| events.iter().all(|e| tx.send(e.clone()).is_ok()));
    }

    /// Cascading unresolution: any resolved service wired (directly or
    /// transitively) to `departed`, or to a provider that becomes
    /// unresolved in the process, drops back to `Registered`.
    fn unresolve_dependents_of(
        inner: &mut Inner<T>,
        departed: ServiceId,
        events: &mut Vec<ServiceEvent>,
    ) {
        loop {
            let victim = inner.services.iter().find_map(|(sid, e)| {
                let broken = e.state == ServiceState::Resolved
                    && e.wires.iter().any(|w| {
                        w.provider == departed
                            || inner
                                .services
                                .get(&w.provider)
                                .is_none_or(|p| p.state != ServiceState::Resolved)
                    });
                broken.then_some(*sid)
            });
            let Some(sid) = victim else { break };
            let e = inner.services.get_mut(&sid).expect("victim exists");
            e.state = ServiceState::Registered;
            e.wires.clear();
            events.push(ServiceEvent::Unresolved(sid));
        }
    }

    /// Fixed-point resolution pass over all unresolved services.
    ///
    /// Requirements wire only to *resolved* providers, so resolution is
    /// transitive: a pipeline resolves leaf-first.
    fn resolve_all(inner: &mut Inner<T>, events: &mut Vec<ServiceEvent>) {
        loop {
            let mut progressed = false;
            let ids: Vec<ServiceId> = inner.services.keys().copied().collect();
            for id in ids {
                let entry = &inner.services[&id];
                if entry.state == ServiceState::Resolved {
                    continue;
                }
                let mut wires = Vec::new();
                let mut satisfied = true;
                for req in entry.descriptor.requirements() {
                    // Candidate providers come from the capability index
                    // (ascending-id buckets), so the first resolved match
                    // is still the deterministic lowest-id provider.
                    let provider = inner
                        .by_namespace
                        .get(req.name())
                        .into_iter()
                        .flatten()
                        .filter(|pid| **pid != id)
                        .find(|pid| {
                            inner.services.get(pid).is_some_and(|pe| {
                                pe.state == ServiceState::Resolved
                                    && pe.descriptor.capabilities().iter().any(|c| req.matches(c))
                            })
                        })
                        .copied();
                    match provider {
                        Some(pid) => wires.push(Wire {
                            requirement: req.clone(),
                            provider: pid,
                        }),
                        None if req.is_optional() => {}
                        None => {
                            satisfied = false;
                            break;
                        }
                    }
                }
                if satisfied {
                    let e = inner.services.get_mut(&id).expect("id just enumerated");
                    e.state = ServiceState::Resolved;
                    e.wires = wires;
                    events.push(ServiceEvent::Resolved(id));
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Capability;

    fn desc(name: &str) -> ServiceDescriptor {
        ServiceDescriptor::new(name)
    }

    #[test]
    fn standalone_service_resolves_immediately() {
        let r: Registry<()> = Registry::new();
        let id = r.register(desc("lonely"), ());
        assert!(r.is_resolved(id));
        assert_eq!(r.state(id), Some(ServiceState::Resolved));
    }

    #[test]
    fn requirement_blocks_until_provider_appears() {
        let r: Registry<()> = Registry::new();
        let consumer = r.register(desc("c").requires(Requirement::new("cap.x")), ());
        assert!(!r.is_resolved(consumer));
        let provider = r.register(desc("p").provides(Capability::new("cap.x")), ());
        assert!(r.is_resolved(consumer));
        assert_eq!(r.wires(consumer)[0].provider, provider);
    }

    #[test]
    fn optional_requirement_does_not_block() {
        let r: Registry<()> = Registry::new();
        let id = r.register(desc("c").requires(Requirement::new("cap.x").optional()), ());
        assert!(r.is_resolved(id));
        assert!(r.wires(id).is_empty());
    }

    #[test]
    fn no_self_wiring() {
        let r: Registry<()> = Registry::new();
        let id = r.register(
            desc("self")
                .provides(Capability::new("cap.x"))
                .requires(Requirement::new("cap.x")),
            (),
        );
        assert!(!r.is_resolved(id));
    }

    #[test]
    fn chain_resolves_transitively() {
        let r: Registry<()> = Registry::new();
        let app = r.register(desc("app").requires(Requirement::new("position")), ());
        let interp = r.register(
            desc("interpreter")
                .provides(Capability::new("position"))
                .requires(Requirement::new("nmea")),
            (),
        );
        let parser = r.register(
            desc("parser")
                .provides(Capability::new("nmea"))
                .requires(Requirement::new("raw")),
            (),
        );
        assert!(!r.is_resolved(app));
        let gps = r.register(desc("gps").provides(Capability::new("raw")), ());
        for id in [app, interp, parser, gps] {
            assert!(r.is_resolved(id), "{id} should be resolved");
        }
    }

    #[test]
    fn unregister_cascades_unresolve() {
        let r: Registry<()> = Registry::new();
        let consumer = r.register(desc("c").requires(Requirement::new("cap.x")), ());
        let provider = r.register(desc("p").provides(Capability::new("cap.x")), ());
        assert!(r.is_resolved(consumer));
        r.unregister(provider).unwrap();
        assert!(!r.is_resolved(consumer));
        assert!(r.wires(consumer).is_empty());
    }

    #[test]
    fn unregister_rewires_to_alternative_provider() {
        let r: Registry<()> = Registry::new();
        let consumer = r.register(desc("c").requires(Requirement::new("cap.x")), ());
        let p1 = r.register(desc("p1").provides(Capability::new("cap.x")), ());
        let _p2 = r.register(desc("p2").provides(Capability::new("cap.x")), ());
        assert_eq!(r.wires(consumer)[0].provider, p1);
        r.unregister(p1).unwrap();
        // Consumer drops to Registered then immediately re-resolves to p2.
        assert!(r.is_resolved(consumer));
        assert_ne!(r.wires(consumer)[0].provider, p1);
    }

    #[test]
    fn unregister_unknown_errors() {
        let r: Registry<()> = Registry::new();
        let id = r.register(desc("s"), ());
        r.unregister(id).unwrap();
        assert_eq!(r.unregister(id), Err(RegistryError::UnknownService(id)));
    }

    #[test]
    fn property_constrained_matching() {
        let r: Registry<()> = Registry::new();
        let consumer = r.register(
            desc("c").requires(Requirement::new("position").with("format", "wgs84")),
            (),
        );
        r.register(
            desc("room-provider").provides(Capability::new("position").with("format", "roomid")),
            (),
        );
        assert!(!r.is_resolved(consumer));
        r.register(
            desc("gps-provider").provides(Capability::new("position").with("format", "wgs84")),
            (),
        );
        assert!(r.is_resolved(consumer));
    }

    #[test]
    fn events_are_published_in_order() {
        let r: Registry<()> = Registry::new();
        let rx = r.subscribe();
        let consumer = r.register(desc("c").requires(Requirement::new("cap.x")), ());
        let provider = r.register(desc("p").provides(Capability::new("cap.x")), ());
        r.unregister(provider).unwrap();
        let events: Vec<ServiceEvent> = rx.try_iter().collect();
        assert_eq!(
            events,
            vec![
                ServiceEvent::Registered(consumer),
                ServiceEvent::Registered(provider),
                ServiceEvent::Resolved(provider),
                ServiceEvent::Resolved(consumer),
                ServiceEvent::Unregistered(provider),
                ServiceEvent::Unresolved(consumer),
            ]
        );
    }

    #[test]
    fn resolution_is_registration_order_independent() {
        // Register in two different orders; final resolution states agree.
        for order in [[0usize, 1, 2], [2, 1, 0]] {
            let r: Registry<usize> = Registry::new();
            let descs = [
                desc("app").requires(Requirement::new("position")),
                desc("interp")
                    .provides(Capability::new("position"))
                    .requires(Requirement::new("raw")),
                desc("gps").provides(Capability::new("raw")),
            ];
            let mut ids = Vec::new();
            for &i in &order {
                ids.push(r.register(descs[i].clone(), i));
            }
            for id in ids {
                assert!(r.is_resolved(id), "order {order:?}");
            }
        }
    }

    #[test]
    fn payload_access() {
        let r: Registry<String> = Registry::new();
        let id = r.register(desc("s"), "hello".to_string());
        assert_eq!(r.with_payload(id, |p| p.clone()), Some("hello".into()));
        let back = r.unregister(id).unwrap();
        assert_eq!(back, "hello");
        assert_eq!(r.with_payload(id, |p| p.clone()), None);
    }

    #[test]
    fn providers_of_lists_matching_services() {
        let r: Registry<()> = Registry::new();
        let a = r.register(desc("a").provides(Capability::new("x")), ());
        let _b = r.register(desc("b").provides(Capability::new("y")), ());
        let c = r.register(desc("c").provides(Capability::new("x")), ());
        assert_eq!(r.providers_of("x"), vec![a, c]);
        assert!(r.providers_of("z").is_empty());
    }

    #[test]
    fn providers_matching_honours_constraint_properties() {
        let r: Registry<()> = Registry::new();
        let wgs = r.register(
            desc("gps").provides(Capability::new("position").with("format", "wgs84")),
            (),
        );
        let room = r.register(
            desc("rooms").provides(Capability::new("position").with("format", "roomid")),
            (),
        );
        assert_eq!(
            r.providers_matching(&Requirement::new("position")),
            vec![wgs, room]
        );
        assert_eq!(
            r.providers_matching(&Requirement::new("position").with("format", "roomid")),
            vec![room]
        );
        assert!(r
            .providers_matching(&Requirement::new("velocity"))
            .is_empty());
    }

    #[test]
    fn capability_index_tracks_unregister() {
        let r: Registry<()> = Registry::new();
        let a = r.register(desc("a").provides(Capability::new("x")), ());
        let b = r.register(desc("b").provides(Capability::new("x")), ());
        assert_eq!(r.providers_of("x"), vec![a, b]);
        r.unregister(a).unwrap();
        assert_eq!(r.providers_of("x"), vec![b]);
        r.unregister(b).unwrap();
        assert!(r.providers_of("x").is_empty());
    }

    #[test]
    fn optional_requirement_wired_when_available() {
        let r: Registry<()> = Registry::new();
        let p = r.register(desc("p").provides(Capability::new("cap.x")), ());
        let c = r.register(desc("c").requires(Requirement::new("cap.x").optional()), ());
        assert!(r.is_resolved(c));
        assert_eq!(r.wires(c).len(), 1);
        assert_eq!(r.wires(c)[0].provider, p);
    }

    #[test]
    fn multiple_requirements_all_must_resolve() {
        let r: Registry<()> = Registry::new();
        let c = r.register(
            desc("c")
                .requires(Requirement::new("a"))
                .requires(Requirement::new("b")),
            (),
        );
        r.register(desc("pa").provides(Capability::new("a")), ());
        assert!(!r.is_resolved(c), "one of two requirements satisfied");
        r.register(desc("pb").provides(Capability::new("b")), ());
        assert!(r.is_resolved(c));
        assert_eq!(r.wires(c).len(), 2);
    }

    #[test]
    fn late_subscriber_sees_only_later_events() {
        let r: Registry<()> = Registry::new();
        let _early = r.register(desc("early"), ());
        let rx = r.subscribe();
        let late = r.register(desc("late"), ());
        let events: Vec<ServiceEvent> = rx.try_iter().collect();
        assert_eq!(
            events,
            vec![ServiceEvent::Registered(late), ServiceEvent::Resolved(late)]
        );
    }

    #[test]
    fn descriptor_and_state_accessors() {
        let r: Registry<()> = Registry::new();
        let id = r.register(desc("svc").provides(Capability::new("x")), ());
        assert_eq!(r.descriptor(id).unwrap().name(), "svc");
        assert_eq!(r.state(id), Some(ServiceState::Resolved));
        r.unregister(id).unwrap();
        assert_eq!(r.descriptor(id), None);
        assert_eq!(r.state(id), None);
        assert!(r.service_ids().is_empty());
    }

    #[test]
    fn diamond_dependency_resolves_once_per_service() {
        // d requires both b and c; b and c require a.
        let r: Registry<u8> = Registry::new();
        let d = r.register(
            desc("d")
                .requires(Requirement::new("b"))
                .requires(Requirement::new("c")),
            3,
        );
        let b = r.register(
            desc("b")
                .provides(Capability::new("b"))
                .requires(Requirement::new("a")),
            1,
        );
        let c = r.register(
            desc("c")
                .provides(Capability::new("c"))
                .requires(Requirement::new("a")),
            2,
        );
        let a = r.register(desc("a").provides(Capability::new("a")), 0);
        for id in [a, b, c, d] {
            assert!(r.is_resolved(id));
        }
        // Removing the root unresolves the whole diamond.
        r.unregister(a).unwrap();
        for id in [b, c, d] {
            assert!(!r.is_resolved(id), "{id} should cascade-unresolve");
        }
    }

    #[test]
    fn registry_is_send_sync_and_clonable() {
        fn assert_send_sync<X: Send + Sync>() {}
        assert_send_sync::<Registry<()>>();
        let r: Registry<()> = Registry::new();
        let r2 = r.clone();
        let id = r.register(desc("s"), ());
        assert!(r2.is_resolved(id));
    }
}
