//! Config-vs-live parity of the dataflow analyses (P010-P013), and the
//! semantic side of adaptation checking: predicted accuracy/rate/taint
//! deltas, quarantined plan targets and privacy regressions caused by
//! feature detachment.
//!
//! Each parity test builds a live middleware graph that mirrors one of
//! the JSON fixtures and asserts that [`analyze_structure`] and
//! [`analyze_config`] report the same diagnostic codes: the translucent
//! promise is that declared configurations and reflected structures are
//! judged by one analysis, not two.

#![allow(clippy::unwrap_used)]

use perpos_analysis::adaptation::{
    check_adaptation, check_adaptation_with_facts, AdaptationOp, AdaptationPlan,
};
use perpos_analysis::{analyze_config, analyze_structure, Code, Report, Severity, TypeCatalog};
use perpos_core::assembly::GraphConfig;
use perpos_core::prelude::*;

// ---------------------------------------------------------------------
// A descriptor-only component: static analysis never runs the graph.
// ---------------------------------------------------------------------

struct Stub {
    desc: ComponentDescriptor,
}

impl Component for Stub {
    fn descriptor(&self) -> ComponentDescriptor {
        self.desc.clone()
    }

    fn on_input(
        &mut self,
        _port: usize,
        _item: DataItem,
        _ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        Ok(())
    }
}

fn stub(desc: ComponentDescriptor) -> Box<dyn Component> {
    Box::new(Stub { desc })
}

// Live descriptors mirroring the transfer metadata declared for the
// same kinds in tests/fixtures/catalog.json.

fn gps_desc(name: &str) -> ComponentDescriptor {
    ComponentDescriptor::source(name, vec![kinds::RAW_STRING]).with_transfer(
        TransferSpec::new()
            .with_frame("wgs84")
            .with_accuracy_m(2.0, 30.0)
            .with_emit_rate_hz(1.0),
    )
}

fn beacon_desc(name: &str) -> ComponentDescriptor {
    ComponentDescriptor::source(name, vec![kinds::POSITION_WGS84]).with_transfer(
        TransferSpec::new()
            .with_frame("local")
            .with_accuracy_m(0.5, 3.0)
            .with_emit_rate_hz(5.0),
    )
}

fn parser_desc(name: &str) -> ComponentDescriptor {
    ComponentDescriptor::processor(
        name,
        InputSpec::new("in", vec![kinds::RAW_STRING]),
        vec![kinds::NMEA_SENTENCE],
    )
}

fn decoder_desc(name: &str) -> ComponentDescriptor {
    ComponentDescriptor::processor(
        name,
        InputSpec::new("in", vec![kinds::NMEA_SENTENCE]),
        vec![kinds::POSITION_WGS84],
    )
}

fn fusion_desc(name: &str) -> ComponentDescriptor {
    ComponentDescriptor::merge(
        name,
        vec![
            InputSpec::new("a", vec![kinds::POSITION_WGS84]),
            InputSpec::new("b", vec![kinds::POSITION_WGS84]),
        ],
        vec![kinds::POSITION_WGS84],
    )
}

fn predictor_desc(name: &str) -> ComponentDescriptor {
    ComponentDescriptor::processor(
        name,
        InputSpec::new("in", vec![kinds::POSITION_WGS84]),
        vec![kinds::POSITION_WGS84],
    )
    .with_transfer(TransferSpec {
        claims_accuracy_m: Some(0.5),
        ..TransferSpec::new()
    })
}

fn throttle_desc(name: &str) -> ComponentDescriptor {
    ComponentDescriptor::processor(
        name,
        InputSpec::new("in", vec![kinds::NMEA_SENTENCE]),
        vec![kinds::NMEA_SENTENCE],
    )
    .with_transfer(TransferSpec::new().with_max_rate_hz(0.5))
}

// ---------------------------------------------------------------------
// Parity harness
// ---------------------------------------------------------------------

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn lint_fixture(name: &str) -> Report {
    let catalog: TypeCatalog = serde_json::from_str(&fixture("catalog.json")).unwrap();
    let config: GraphConfig = serde_json::from_str(&fixture(name)).unwrap();
    analyze_config(&config, &catalog)
}

fn codes(report: &Report) -> Vec<&'static str> {
    let mut v: Vec<&'static str> = report.diagnostics.iter().map(|d| d.code.as_str()).collect();
    v.sort_unstable();
    v
}

/// Asserts the live structure and the config fixture report the same
/// diagnostic codes, and that `expected` is among them.
fn assert_parity(mw: &Middleware, fixture_name: &str, expected: Code) {
    let live = analyze_structure(&mw.structure());
    let config = lint_fixture(fixture_name);
    assert_eq!(
        codes(&live),
        codes(&config),
        "live:\n{}\nconfig:\n{}",
        live.render_human(),
        config.render_human()
    );
    assert!(
        !live.with_code(expected).is_empty(),
        "{}",
        live.render_human()
    );
}

#[test]
fn p010_frame_conflict_config_and_live_agree() {
    let mut mw = Middleware::new();
    let gps = mw.add_boxed_component(stub(gps_desc("gps0")));
    let parse = mw.add_boxed_component(stub(parser_desc("parse0")));
    let decode = mw.add_boxed_component(stub(decoder_desc("decode0")));
    let beacon = mw.add_boxed_component(stub(beacon_desc("beacon0")));
    let fuse = mw.add_boxed_component(stub(fusion_desc("fuse0")));
    let app = mw.application_sink();
    mw.connect(gps, parse, 0).unwrap();
    mw.connect(parse, decode, 0).unwrap();
    mw.connect(decode, fuse, 0).unwrap();
    mw.connect(beacon, fuse, 1).unwrap();
    mw.connect(fuse, app, 0).unwrap();
    assert_parity(&mw, "p010_frame_conflict.json", Code::P010);
}

#[test]
fn p011_unreachable_accuracy_config_and_live_agree() {
    let mut mw = Middleware::new();
    let gps = mw.add_boxed_component(stub(gps_desc("gps0")));
    let parse = mw.add_boxed_component(stub(parser_desc("parse0")));
    let decode = mw.add_boxed_component(stub(decoder_desc("decode0")));
    let predict = mw.add_boxed_component(stub(predictor_desc("predict0")));
    let app = mw.application_sink();
    mw.connect(gps, parse, 0).unwrap();
    mw.connect(parse, decode, 0).unwrap();
    mw.connect(decode, predict, 0).unwrap();
    mw.connect(predict, app, 0).unwrap();
    assert_parity(&mw, "p011_unreachable_accuracy.json", Code::P011);
}

#[test]
fn p012_raw_to_sink_config_and_live_agree() {
    let mut mw = Middleware::new();
    let gps = mw.add_boxed_component(stub(gps_desc("gps0")));
    let app = mw.application_sink();
    mw.connect(gps, app, 0).unwrap();
    assert_parity(&mw, "p012_raw_to_sink.json", Code::P012);
}

#[test]
fn p013_rate_overrun_config_and_live_agree() {
    let mut mw = Middleware::new();
    let gps = mw.add_boxed_component(stub(gps_desc("gps0")));
    let parse = mw.add_boxed_component(stub(parser_desc("parse0")));
    let slow = mw.add_boxed_component(stub(throttle_desc("slow0")));
    let decode = mw.add_boxed_component(stub(decoder_desc("decode0")));
    let app = mw.application_sink();
    mw.connect(gps, parse, 0).unwrap();
    mw.connect(parse, slow, 0).unwrap();
    mw.connect(slow, decode, 0).unwrap();
    mw.connect(decode, app, 0).unwrap();
    assert_parity(&mw, "p013_rate_overrun.json", Code::P013);
}

// ---------------------------------------------------------------------
// Semantic deltas of adaptation plans
// ---------------------------------------------------------------------

fn refiner_desc(name: &str) -> ComponentDescriptor {
    // A position refiner: improves accuracy to 1-5 m and halves the
    // item rate.
    ComponentDescriptor::processor(
        name,
        InputSpec::new("in", vec![kinds::NMEA_SENTENCE]),
        vec![kinds::POSITION_WGS84],
    )
    .with_transfer(TransferSpec {
        rate_factor: Some(0.5),
        ..TransferSpec::new().with_accuracy_m(1.0, 5.0)
    })
}

#[test]
fn adaptation_reports_accuracy_rate_and_taint_deltas() {
    let mut mw = Middleware::new();
    let gps = mw.add_boxed_component(stub(gps_desc("gps0")));
    let parse = mw.add_boxed_component(stub(parser_desc("parse0")));
    let refine = mw.add_boxed_component(stub(refiner_desc("refine0")));
    let app = mw.application_sink();
    mw.connect(gps, parse, 0).unwrap();
    mw.connect(parse, refine, 0).unwrap();
    mw.connect(refine, app, 0).unwrap();

    // Bypass the whole processing chain: wire the raw GPS straight into
    // the application.
    let plan = AdaptationPlan::new()
        .then(AdaptationOp::Disconnect { to: app, port: 0 })
        .then(AdaptationOp::Remove { node: refine })
        .then(AdaptationOp::Connect {
            from: gps,
            to: app,
            port: 0,
        });
    let outcome = check_adaptation_with_facts(&mw, &plan);
    let report = &outcome.report;

    let delta = |code: Code| -> Vec<&perpos_analysis::Diagnostic> {
        report
            .with_code(code)
            .into_iter()
            .filter(|d| d.severity == Severity::Info)
            .collect()
    };
    // Accuracy: [1 m, 5 m] at the sink degrades to the raw [2 m, 30 m].
    let acc = delta(Code::P011);
    assert_eq!(acc.len(), 1, "{}", report.render_human());
    assert!(acc[0].message.contains("accuracy"), "{}", acc[0].message);
    // Rate: the 0.5 items/s refined stream becomes the full 1 Hz feed.
    let rate = delta(Code::P013);
    assert_eq!(rate.len(), 1, "{}", report.render_human());
    // Taint: raw identifiable NMEA strings now reach the application —
    // also a hard P012 error on the resulting structure.
    let taint = delta(Code::P012);
    assert_eq!(taint.len(), 1, "{}", report.render_human());
    assert!(
        taint[0].message.contains("raw.string"),
        "{}",
        taint[0].message
    );
    assert!(report.has_errors(), "{}", report.render_human());

    // The outcome exposes the facts both ways for plan comparison.
    assert!(outcome.before_facts.converged && outcome.after_facts.converged);
    assert_ne!(
        outcome.before_graph.nodes.len(),
        outcome.after_graph.nodes.len()
    );
}

#[test]
fn adapting_a_quarantined_node_warns() {
    struct Failing {
        name: String,
    }
    impl Component for Failing {
        fn descriptor(&self) -> ComponentDescriptor {
            ComponentDescriptor::source(self.name.clone(), vec![kinds::RAW_STRING])
        }
        fn on_input(
            &mut self,
            _port: usize,
            _item: DataItem,
            _ctx: &mut ComponentCtx<'_>,
        ) -> Result<(), CoreError> {
            Ok(())
        }
        fn on_tick(&mut self, _ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
            Err(CoreError::ComponentFailure {
                component: self.name.clone(),
                reason: "sensor down".into(),
            })
        }
    }

    let mut mw = Middleware::new();
    let gps = mw.add_component(Failing { name: "gps".into() });
    let parse = mw.add_boxed_component(stub(parser_desc("parse0")));
    let app = mw.application_sink();
    mw.connect(gps, parse, 0).unwrap();
    mw.connect(parse, app, 0).unwrap();
    mw.set_fault_policy(
        gps,
        FaultPolicy::Quarantine {
            max_faults: 1,
            window: SimDuration::from_secs(10),
            backoff: SimDuration::from_secs(60),
        },
    )
    .unwrap();
    for _ in 0..2 {
        let _ = mw.step();
    }
    assert_eq!(mw.node_health(gps).status, HealthStatus::Quarantined);

    let plan = AdaptationPlan::new().then(AdaptationOp::AttachFeature {
        node: gps,
        descriptor: FeatureDescriptor::new("NumberOfSatellites"),
    });
    let report = check_adaptation(&mw, &plan);
    let hits = report.with_code(Code::P007);
    assert_eq!(hits.len(), 1, "{}", report.render_human());
    assert_eq!(hits[0].severity, Severity::Warning);
    assert!(
        hits[0].message.contains("quarantined"),
        "{}",
        hits[0].message
    );
    // The plan still applies — a warning, not an error.
    assert!(!report.has_errors(), "{}", report.render_human());
}

#[test]
fn detaching_the_only_anonymizing_feature_surfaces_p012() {
    // A pass-through feature that declares it anonymizes the host's
    // output; the analysis only reads the descriptor.
    struct Anonymizer;
    impl ComponentFeature for Anonymizer {
        fn descriptor(&self) -> FeatureDescriptor {
            FeatureDescriptor::new("Anonymize").anonymizing()
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    let mut mw = Middleware::new();
    let gps = mw.add_boxed_component(stub(gps_desc("gps0")));
    let app = mw.application_sink();
    mw.connect(gps, app, 0).unwrap();
    mw.attach_feature(gps, Anonymizer).unwrap();

    // With the feature attached the raw feed is scrubbed: clean.
    let before = analyze_structure(&mw.structure());
    assert!(
        before.with_code(Code::P012).is_empty(),
        "{}",
        before.render_human()
    );

    // Detaching it would let identifiable data through to the sink.
    let plan = AdaptationPlan::new().then(AdaptationOp::DetachFeature {
        node: gps,
        feature: "Anonymize".into(),
    });
    let report = check_adaptation(&mw, &plan);
    let errors: Vec<_> = report
        .with_code(Code::P012)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert_eq!(errors.len(), 1, "{}", report.render_human());
    assert!(report.has_errors());
    // And the semantic delta names the newly-arriving taint.
    let infos: Vec<_> = report
        .with_code(Code::P012)
        .into_iter()
        .filter(|d| d.severity == Severity::Info)
        .collect();
    assert_eq!(infos.len(), 1, "{}", report.render_human());
    assert!(
        infos[0].message.contains("raw.string"),
        "{}",
        infos[0].message
    );
}
