//! Experiment "channel" — lazy vs eager data-tree materialization.
//!
//! The channel layer's Fig. 4 machinery historically built a [`DataTree`]
//! for every channel output whether or not anything observed it. Under
//! [`TreePolicy::Lazy`] (the default) a channel only materializes trees
//! while a Channel Feature is attached or a history subscription is
//! active; the logical-time bookkeeping always runs, so demand can flip
//! mid-run without perturbing later trees. This sweep measures what the
//! lazy path saves: items per second through one pipeline of depth D with
//! F attached features under both policies, driven through the batched
//! stepping entry (`Middleware::step_batch`).
//!
//! Run with: `cargo run -p perpos-bench --bin exp_channel --release`
//! (pass `--smoke` for the reduced CI sweep, which fails if the
//! featureless lazy path costs more than 0.8x eager at depth >= 16, or if
//! the eager path regressed more than 20 % against the committed
//! `BENCH_channel.json` baseline — both compared as calibrated cost, i.e.
//! step time divided by the time of a fixed integer kernel measured in
//! the same process, so the guard tolerates machine-speed drift).
//!
//! The full sweep (re)writes `BENCH_channel.json`; the smoke sweep only
//! reads it.

#![allow(clippy::unwrap_used)]
use std::any::Any;
use std::time::Instant;

use perpos_core::channel::{ChannelFeature, ChannelHost, DataTree, TreePolicy};
use perpos_core::feature::FeatureDescriptor;
use perpos_core::prelude::*;

/// A minimal observing feature: creates demand and touches every tree.
struct Consume(&'static str);

impl ChannelFeature for Consume {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(self.0)
    }
    fn apply(&mut self, tree: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
        std::hint::black_box(tree.len());
        Ok(())
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const FEATURE_NAMES: [&str; 4] = ["Consume0", "Consume1", "Consume2", "Consume3"];

/// One pipeline of `depth` pass-through processors delivering to the
/// application sink, with `features` observing Channel Features attached
/// to the delivering channel. Processors are trivial on purpose: the
/// experiment times the channel layer, not component work.
fn build(depth: usize, features: usize) -> Middleware {
    let mut mw = Middleware::new();
    let mut i = 0i64;
    let src = mw.add_component(FnSource::new("src", kinds::RAW_STRING, move |_| {
        i += 1;
        // A realistic raw payload: channel members hand sentence-sized
        // strings down the pipeline, as a GPS source would.
        Some(Value::Text(format!(
            "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,{i:04}"
        )))
    }));
    let mut prev = src;
    for d in 0..depth {
        let node = mw.add_component(FnProcessor::new(
            format!("stage{d}"),
            vec![kinds::RAW_STRING],
            kinds::RAW_STRING,
            |item| Some(item.payload.clone()),
        ));
        mw.connect(prev, node, 0).unwrap();
        prev = node;
    }
    let app = mw.application_sink();
    mw.connect(prev, app, 0).unwrap();
    let channel = mw.channel_into(app, 0).unwrap();
    for name in FEATURE_NAMES.iter().take(features) {
        mw.attach_channel_feature(channel, Consume(name)).unwrap();
    }
    mw
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Sample {
    depth: u64,
    features: u64,
    policy: String,
    us_per_step: f64,
    items_per_sec: f64,
    materialized: u64,
    skipped: u64,
    dropped: u64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Doc {
    experiment: String,
    cores: u64,
    steps: u64,
    /// Microseconds of the fixed calibration kernel on this machine;
    /// guard comparisons divide step times by this to cancel CPU drift.
    calib_us: f64,
    results: Vec<Sample>,
}

/// Fixed deterministic integer kernel used to normalize step times
/// across machines of different speed.
fn calibrate() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let mut v = 0x9e3779b97f4a7c15u64;
        for _ in 0..2_000_000 {
            v = std::hint::black_box(v.wrapping_mul(6_364_136_223_846_793_005).rotate_left(17));
        }
        std::hint::black_box(v);
        best = best.min(start.elapsed().as_nanos() as f64 / 1e3);
    }
    best
}

fn measure(depth: usize, features: usize, policy: TreePolicy, steps: u64) -> Sample {
    let mut mw = build(depth, features);
    mw.set_tree_policy(policy);
    let tick = SimDuration::from_micros(1);
    mw.step_batch(steps / 10, tick).unwrap();
    // Best-of-3: interference from other processes only ever adds time,
    // so the minimum is the faithful estimate on a noisy machine.
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        mw.step_batch(steps, tick).unwrap();
        let us = start.elapsed().as_micros() as f64 / steps as f64;
        best = best.min(us);
    }
    let us = best;
    let app = mw.application_sink();
    let channel = mw.channel_into(app, 0).unwrap();
    let stats = mw.channel_stats(channel).unwrap();
    Sample {
        depth: depth as u64,
        features: features as u64,
        policy: policy.as_str().to_string(),
        us_per_step: us,
        // One item enters the pipeline per step.
        items_per_sec: 1e6 / us,
        materialized: stats.materialized,
        skipped: stats.skipped,
        dropped: stats.dropped,
    }
}

fn find<'a>(samples: &'a [Sample], depth: u64, features: u64, policy: &str) -> Option<&'a Sample> {
    samples
        .iter()
        .find(|s| s.depth == depth && s.features == features && s.policy == policy)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let steps: u64 = if smoke { 20_000 } else { 100_000 };
    let depths: &[usize] = if smoke { &[16] } else { &[4, 16, 32] };
    let feature_counts: &[usize] = if smoke { &[0] } else { &[0, 1, 4] };
    let calib_us = calibrate();

    println!("=== channel: lazy vs eager tree materialization ({cores} core(s)) ===\n");
    println!(
        "{:>6} {:>9} {:>7} {:>12} {:>14} {:>13} {:>9}",
        "depth", "features", "policy", "step µs", "items/s", "materialized", "skipped"
    );
    println!("{}", "-".repeat(76));

    let mut samples = Vec::new();
    for &depth in depths {
        for &features in feature_counts {
            for policy in [TreePolicy::Lazy, TreePolicy::Eager] {
                let s = measure(depth, features, policy, steps);
                println!(
                    "{:>6} {:>9} {:>7} {:>12.2} {:>14.0} {:>13} {:>9}",
                    s.depth,
                    s.features,
                    s.policy,
                    s.us_per_step,
                    s.items_per_sec,
                    s.materialized,
                    s.skipped
                );
                samples.push(s);
            }
        }
    }

    // Guard 1: at depth >= 16 with no features the lazy path must be
    // clearly cheaper than eager — at most 0.8x the step cost.
    let guard_depth = *depths.iter().max().unwrap() as u64;
    let lazy = find(&samples, guard_depth, 0, "lazy").unwrap();
    let eager = find(&samples, guard_depth, 0, "eager").unwrap();
    let ratio = lazy.us_per_step / eager.us_per_step;
    println!(
        "\nfeatureless depth-{guard_depth}: lazy/eager step cost = {ratio:.3} (limit 0.80), \
         lazy speed-up = {:.2}x items/s",
        eager.us_per_step / lazy.us_per_step
    );

    if smoke {
        if ratio > 0.80 {
            eprintln!("FAIL: lazy materialization no longer pays for itself");
            std::process::exit(1);
        }
        // Guard 2: eager must not regress more than 20 % against the
        // committed baseline, comparing calibrated cost so the check
        // survives slower or faster CI machines.
        match std::fs::read_to_string("BENCH_channel.json") {
            Ok(text) => {
                let baseline: Doc = serde_json::from_str(&text).unwrap();
                let base = find(&baseline.results, guard_depth, 0, "eager")
                    .expect("baseline misses the guard configuration");
                let base_cost = base.us_per_step / baseline.calib_us;
                let now_cost = eager.us_per_step / calib_us;
                let drift = now_cost / base_cost;
                println!("eager calibrated cost vs baseline = {drift:.3} (limit 1.20)");
                if drift > 1.20 {
                    eprintln!("FAIL: eager tree assembly regressed against BENCH_channel.json");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("FAIL: no committed BENCH_channel.json baseline to compare ({e})");
                std::process::exit(1);
            }
        }
        return;
    }

    let doc = Doc {
        experiment: "channel".to_string(),
        cores: cores as u64,
        steps,
        calib_us,
        results: samples,
    };
    std::fs::write(
        "BENCH_channel.json",
        serde_json::to_string_pretty(&doc).unwrap() + "\n",
    )
    .unwrap();
    println!("wrote BENCH_channel.json");
}
