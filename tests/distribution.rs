//! End-to-end tests of the simulated D-OSGi distribution (§3.3 / Fig. 7):
//! the processing graph spanning a mobile device and a server.

#![allow(clippy::unwrap_used)]
use perpos::core::distribution::{Deployment, LinkModel};
use perpos::prelude::*;

fn fig7_graph() -> (
    Middleware,
    perpos::core::graph::NodeId, // gps
    perpos::core::graph::NodeId, // wrapper
    perpos::core::graph::NodeId, // parser
) {
    let frame = LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap());
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));
    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame, walk)
            .with_seed(3)
            .with_environment(GpsEnvironment {
                dropout_prob: 0.0,
                ..GpsEnvironment::open_sky()
            }),
    );
    let wrapper = mw.add_component(SensorWrapper::new("SensorWrapper", "mobile"));
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let app = mw.application_sink();
    mw.connect(gps, wrapper, 0).unwrap();
    mw.connect(wrapper, parser, 0).unwrap();
    mw.connect(parser, interpreter, 0).unwrap();
    mw.connect(interpreter, app, 0).unwrap();
    (mw, gps, wrapper, parser)
}

#[test]
fn cross_host_edges_travel_the_link() {
    let (mut mw, gps, wrapper, _parser) = fig7_graph();
    // GPS + wrapper on the device; parser onward on the server.
    mw.set_deployment(
        Deployment::new("server")
            .assign(gps, "mobile")
            .assign(wrapper, "mobile")
            .default_link(LinkModel {
                latency: SimDuration::from_millis(500),
                loss_prob: 0.0,
                max_retries: 0,
            }),
    );
    let provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();

    // First step: sentences are sent but still in flight.
    mw.step().unwrap();
    assert_eq!(provider.delivered_count(), 0, "nothing arrives instantly");
    let dep = mw.deployment().unwrap();
    assert!(dep.in_flight() > 0);
    let sent: u64 = dep.stats().values().map(|s| s.sent).sum();
    assert!(sent > 0);

    // After the latency has elapsed, the server side processes them.
    mw.advance_clock(SimDuration::from_millis(600));
    mw.step().unwrap();
    assert!(provider.delivered_count() > 0, "delivered after latency");
    let delivered: u64 = mw
        .deployment()
        .unwrap()
        .stats()
        .values()
        .map(|s| s.delivered)
        .sum();
    assert!(delivered > 0);
}

#[test]
fn same_host_edges_are_synchronous() {
    let (mut mw, gps, wrapper, parser) = fig7_graph();
    // Everything on one host: distribution changes nothing.
    mw.set_deployment(
        Deployment::new("server")
            .assign(gps, "server")
            .assign(wrapper, "server")
            .assign(parser, "server"),
    );
    let provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();
    mw.step().unwrap();
    assert!(
        provider.delivered_count() > 0,
        "co-located graph is synchronous"
    );
    assert_eq!(mw.deployment().unwrap().in_flight(), 0);
}

#[test]
fn lossy_link_degrades_but_does_not_stop_delivery() {
    let (mut mw, gps, wrapper, _parser) = fig7_graph();
    mw.set_deployment(
        Deployment::new("server")
            .assign(gps, "mobile")
            .assign(wrapper, "mobile")
            .default_link(LinkModel {
                latency: SimDuration::from_millis(10),
                loss_prob: 0.5,
                max_retries: 0,
            })
            .with_seed(7),
    );
    let provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();
    mw.run_for(SimDuration::from_secs(60), SimDuration::from_secs(1))
        .unwrap();
    let stats: Vec<_> = mw.deployment().unwrap().stats().values().copied().collect();
    let sent: u64 = stats.iter().map(|s| s.sent).sum();
    let lost: u64 = stats.iter().map(|s| s.lost).sum();
    assert!(lost > 0, "a 50% link must lose messages");
    assert!(lost < sent, "and deliver some");
    assert!(provider.delivered_count() > 0);
}

#[test]
fn data_trees_stay_correct_across_hosts() {
    use perpos::core::channel::{ChannelFeature, ChannelHost, DataTree};
    use perpos::core::feature::FeatureDescriptor;
    use std::any::Any;

    struct Shapes(Vec<(usize, usize)>);
    impl ChannelFeature for Shapes {
        fn descriptor(&self) -> FeatureDescriptor {
            FeatureDescriptor::new("Shapes")
        }
        fn apply(&mut self, tree: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
            self.0.push((tree.len(), tree.depth()));
            Ok(())
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    let (mut mw, gps, wrapper, _parser) = fig7_graph();
    mw.set_deployment(
        Deployment::new("server")
            .assign(gps, "mobile")
            .assign(wrapper, "mobile")
            .default_link(LinkModel {
                latency: SimDuration::from_millis(250),
                loss_prob: 0.0,
                max_retries: 0,
            }),
    );
    let app = mw.application_sink();
    let channel = mw.channel_into(app, 0).unwrap();
    mw.attach_channel_feature(channel, Shapes(Vec::new()))
        .unwrap();
    for _ in 0..20 {
        mw.step().unwrap();
        mw.advance_clock(SimDuration::from_millis(500));
    }
    let shapes = mw
        .with_channel_feature_mut::<Shapes, Vec<(usize, usize)>>(channel, "Shapes", |s| s.0.clone())
        .unwrap();
    assert!(!shapes.is_empty(), "trees complete despite link latency");
    for (len, depth) in &shapes {
        // GPS -> wrapper -> parser -> interpreter: four levels.
        assert_eq!(*depth, 4, "tree depth must be the full channel: {shapes:?}");
        assert!(*len >= 4);
    }
}

#[test]
fn clearing_deployment_restores_synchrony() {
    let (mut mw, gps, wrapper, _parser) = fig7_graph();
    mw.set_deployment(
        Deployment::new("server")
            .assign(gps, "mobile")
            .assign(wrapper, "mobile")
            .default_link(LinkModel {
                latency: SimDuration::from_secs(3600),
                loss_prob: 0.0,
                max_retries: 0,
            }),
    );
    let provider = mw.location_provider(Criteria::new()).unwrap();
    mw.step().unwrap();
    assert_eq!(provider.delivered_count(), 0);
    mw.clear_deployment();
    mw.advance_clock(SimDuration::from_secs(1));
    mw.step().unwrap();
    assert!(provider.delivered_count() > 0);
}
