//! Failure-injection tests: the middleware must degrade gracefully under
//! sensor dropouts, garbage data, runtime component removal, and features
//! that swallow everything.

#![allow(clippy::unwrap_used)]
use std::any::Any;

use perpos::core::component::{Component, ComponentCtx, ComponentDescriptor};
use perpos::core::feature::{ComponentFeature, FeatureAction, FeatureDescriptor, FeatureHost};
use perpos::prelude::*;

/// A source that emits garbage interleaved with valid NMEA.
struct GarbageGps {
    inner: GpsSimulator,
    counter: u64,
}

impl Component for GarbageGps {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::source("GarbageGPS", vec![kinds::RAW_STRING])
    }

    fn on_input(
        &mut self,
        _p: usize,
        _i: DataItem,
        _c: &mut ComponentCtx,
    ) -> Result<(), CoreError> {
        Ok(())
    }

    fn on_tick(&mut self, ctx: &mut ComponentCtx) -> Result<(), CoreError> {
        self.counter += 1;
        match self.counter % 4 {
            0 => ctx.emit_value(kinds::RAW_STRING, Value::from("$GARBAGE*ZZ")),
            1 => ctx.emit_value(kinds::RAW_STRING, Value::from("!!noise!!")),
            2 => ctx.emit_value(kinds::RAW_STRING, Value::Int(42)), // not even text
            _ => {}
        }
        self.inner.on_tick(ctx)
    }
}

fn frame() -> LocalFrame {
    LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap())
}

#[test]
fn garbage_bursts_do_not_stop_the_pipeline() {
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));
    let mut mw = Middleware::new();
    let gps = mw.add_component(GarbageGps {
        inner: GpsSimulator::new("GPS", frame(), walk).with_seed(3),
        counter: 0,
    });
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let app = mw.application_sink();
    mw.connect(gps, parser, 0).unwrap();
    mw.connect(parser, interpreter, 0).unwrap();
    mw.connect(interpreter, app, 0).unwrap();
    let provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();
    mw.run_for(SimDuration::from_secs(60), SimDuration::from_secs(1))
        .unwrap();
    assert!(
        provider.last_position().is_some(),
        "positions still flow despite garbage"
    );
    let errors = mw.invoke(parser, "errorCount", &[]).unwrap();
    assert!(matches!(errors, Value::Int(n) if n > 20), "{errors:?}");
}

#[test]
fn dropout_heavy_sensor_keeps_engine_running() {
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));
    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame(), walk)
            .with_seed(7)
            .with_environment(GpsEnvironment {
                dropout_prob: 0.95,
                ..GpsEnvironment::open_sky()
            }),
    );
    let app = mw.application_sink();
    mw.connect(gps, app, 0).unwrap();
    mw.run_for(SimDuration::from_secs(120), SimDuration::from_secs(1))
        .unwrap();
    // No panic, and the engine stepped every tick.
    assert_eq!(mw.steps_run(), 120);
}

#[test]
fn removing_a_running_component_stops_its_branch_only() {
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));
    let mut mw = Middleware::new();
    let gps1 = mw.add_component(GpsSimulator::new("GPS-1", frame(), walk.clone()).with_seed(1));
    let gps2 = mw.add_component(GpsSimulator::new("GPS-2", frame(), walk).with_seed(2));
    let p1 = mw.add_component(Parser::new());
    let p2 = mw.add_component(Parser::new());
    let app = mw.application_sink();
    mw.connect(gps1, p1, 0).unwrap();
    mw.connect(gps2, p2, 0).unwrap();
    mw.connect_to_sink(p1, app).unwrap();
    mw.connect_to_sink(p2, app).unwrap();
    let provider = mw.location_provider(Criteria::new()).unwrap();
    mw.run_for(SimDuration::from_secs(5), SimDuration::from_secs(1))
        .unwrap();
    let before = provider.delivered_count();
    assert!(before > 0);

    // Remove the first pipeline's source mid-run.
    mw.remove_component(gps1).unwrap();
    mw.run_for(SimDuration::from_secs(5), SimDuration::from_secs(1))
        .unwrap();
    let after = provider.delivered_count();
    assert!(after > before, "second branch still delivers");
    // Only one channel remains rooted at a source.
    assert_eq!(
        mw.channels()
            .iter()
            .filter(|c| c.member_names.iter().any(|n| n.starts_with("GPS")))
            .count(),
        1
    );
}

/// A feature that swallows every item.
struct BlackHole;

impl ComponentFeature for BlackHole {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new("BlackHole")
    }
    fn on_produce(
        &mut self,
        _item: DataItem,
        _host: &mut FeatureHost<'_>,
    ) -> Result<FeatureAction, CoreError> {
        Ok(FeatureAction::Drop)
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn black_hole_feature_is_detachable() {
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));
    let mut mw = Middleware::new();
    let gps = mw.add_component(GpsSimulator::new("GPS", frame(), walk).with_seed(5));
    let app = mw.application_sink();
    mw.connect(gps, app, 0).unwrap();
    mw.attach_feature(gps, BlackHole).unwrap();
    let provider = mw.location_provider(Criteria::new()).unwrap();
    mw.run_for(SimDuration::from_secs(10), SimDuration::from_secs(1))
        .unwrap();
    assert_eq!(provider.delivered_count(), 0, "everything swallowed");
    // Detach and recover.
    mw.detach_feature(gps, "BlackHole").unwrap();
    mw.run_for(SimDuration::from_secs(10), SimDuration::from_secs(1))
        .unwrap();
    assert!(provider.delivered_count() > 0, "flow restored");
}

#[test]
fn failing_component_surfaces_error_once() {
    struct FailsAfter {
        remaining: u32,
    }
    impl Component for FailsAfter {
        fn descriptor(&self) -> ComponentDescriptor {
            ComponentDescriptor::source("flaky", vec![kinds::RAW_STRING])
        }
        fn on_input(
            &mut self,
            _p: usize,
            _i: DataItem,
            _c: &mut ComponentCtx,
        ) -> Result<(), CoreError> {
            Ok(())
        }
        fn on_tick(&mut self, ctx: &mut ComponentCtx) -> Result<(), CoreError> {
            if self.remaining == 0 {
                return Err(CoreError::ComponentFailure {
                    component: "flaky".into(),
                    reason: "hardware fault".into(),
                });
            }
            self.remaining -= 1;
            ctx.emit_value(kinds::RAW_STRING, Value::from("ok"));
            Ok(())
        }
    }
    let mut mw = Middleware::new();
    let flaky = mw.add_component(FailsAfter { remaining: 3 });
    let app = mw.application_sink();
    mw.connect(flaky, app, 0).unwrap();
    for _ in 0..3 {
        mw.step().unwrap();
        mw.advance_clock(SimDuration::from_secs(1));
    }
    let err = mw.step().unwrap_err();
    assert!(matches!(err, CoreError::ComponentFailure { .. }));
    // The application can remove the faulty component and continue.
    mw.remove_component(flaky).unwrap();
    mw.step().unwrap();
}
