//! Experiment F1 — reproduces the pipeline composition of the paper's
//! Fig. 1 (the Room Number Application's concrete positioning processes)
//! and shows the data kinds flowing at every stage.
//!
//! Run with: `cargo run -p perpos-bench --bin exp_fig1_pipeline`

#![allow(clippy::unwrap_used)]
use std::sync::Arc;

use perpos_bench::frame;
use perpos_core::prelude::*;
use perpos_model::demo_building;
use perpos_sensors::{
    GpsEnvironment, GpsSimulator, Interpreter, Parser, RadioMap, Resolver, Trajectory,
    WifiEnvironment, WifiPositioning, WifiScanner,
};

fn main() -> Result<(), CoreError> {
    let building = Arc::new(demo_building());
    let walk = Trajectory::new(
        vec![
            perpos_geo::Point2::new(-20.0, 5.25),
            perpos_geo::Point2::new(10.0, 5.25),
            perpos_geo::Point2::new(17.5, 2.0),
        ],
        1.4,
    );

    let mut mw = Middleware::new();
    // GPS branch: raw strings -> NMEA -> WGS84.
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame(), walk.clone())
            .with_seed(1)
            .with_environment(GpsEnvironment::open_sky()),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    // WiFi branch: scans -> WGS84 -> RoomID.
    let env = Arc::new(WifiEnvironment::with_ap_per_room(Arc::clone(&building), 0));
    let map = Arc::new(RadioMap::build(&env, 1.0));
    let wifi = mw.add_component(WifiScanner::new("WiFi-sensor", env, walk.clone()).with_seed(2));
    let wifi_pos = mw.add_component(WifiPositioning::new(map, Arc::clone(&building)));
    let resolver = mw.add_component(Resolver::new(Arc::clone(&building)));
    let app = mw.application_sink();
    mw.connect(gps, parser, 0)?;
    mw.connect(parser, interpreter, 0)?;
    mw.connect_to_sink(interpreter, app)?;
    mw.connect(wifi, wifi_pos, 0)?;
    mw.connect(wifi_pos, resolver, 0)?;
    mw.connect_to_sink(resolver, app)?;

    println!("=== Fig. 1: concrete positioning processes ===\n");
    println!("process tree:");
    print!("{}", mw.render_process_tree());

    println!("\nper-stage port declarations:");
    for info in mw.structure() {
        let ins: Vec<String> = info
            .descriptor
            .inputs
            .iter()
            .map(|i| {
                if i.accepts.is_empty() {
                    format!("{}(any)", i.name)
                } else {
                    format!(
                        "{}({})",
                        i.name,
                        i.accepts
                            .iter()
                            .map(|k| k.as_str().to_string())
                            .collect::<Vec<_>>()
                            .join("|")
                    )
                }
            })
            .collect();
        let outs = info
            .descriptor
            .output
            .as_ref()
            .map(|o| {
                o.provides
                    .iter()
                    .map(|k| k.as_str().to_string())
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "  {:<16} in: {:<40} out: {}",
            info.descriptor.name,
            ins.join(", "),
            outs
        );
    }

    // Run and count what arrived per kind.
    let provider = mw.location_provider(Criteria::new())?;
    mw.run_for(SimDuration::from_secs(40), SimDuration::from_secs(1))?;
    let mut by_kind = std::collections::BTreeMap::new();
    for item in provider.history() {
        *by_kind.entry(item.kind.to_string()).or_insert(0usize) += 1;
    }
    println!("\nitems delivered to the application, by kind:");
    for (kind, n) in by_kind {
        println!("  {kind:<16} {n}");
    }
    println!("\nchannels (PCL view):");
    for c in mw.channels() {
        println!("  {}: {}", c.id, c.member_names.join(" -> "));
    }
    Ok(())
}
