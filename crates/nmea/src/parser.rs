use crate::sentence::{
    FixQuality, Gga, Gsa, GsaFixType, Gsv, NmeaTime, Rmc, SatelliteInfo, Sentence, Vtg,
};
use crate::NmeaError;

/// Maximum sentence length (including `$` and checksum) per NMEA-0183.
pub(crate) const MAX_SENTENCE_LEN: usize = 82;

/// Computes the NMEA checksum (XOR of all bytes) over a sentence body,
/// i.e. the characters between `$` and `*`.
///
/// ```
/// assert_eq!(perpos_nmea::checksum("GPGGA,,,,,,0,00,,,M,,M,,"), 0x66);
/// ```
pub fn checksum(body: &str) -> u8 {
    body.bytes().fold(0, |acc, b| acc ^ b)
}

/// Verifies the `*hh` checksum of a complete sentence.
///
/// # Errors
///
/// Returns an error when the framing or checksum is invalid. On success the
/// sentence body (between `$` and `*`) is returned.
pub fn verify_checksum(sentence: &str) -> Result<&str, NmeaError> {
    let s = sentence.trim_end_matches(['\r', '\n']);
    if s.len() > MAX_SENTENCE_LEN {
        return Err(NmeaError::SentenceTooLong(s.len()));
    }
    let body_and_sum = s
        .strip_prefix('$')
        .ok_or(NmeaError::MissingStartDelimiter)?;
    let star = body_and_sum.rfind('*').ok_or(NmeaError::MissingChecksum)?;
    let (body, sum_text) = body_and_sum.split_at(star);
    let sum_text = &sum_text[1..];
    if sum_text.len() != 2 {
        return Err(NmeaError::MalformedChecksum(sum_text.to_string()));
    }
    let transmitted = u8::from_str_radix(sum_text, 16)
        .map_err(|_| NmeaError::MalformedChecksum(sum_text.to_string()))?;
    let computed = checksum(body);
    if computed != transmitted {
        return Err(NmeaError::ChecksumMismatch {
            computed,
            transmitted,
        });
    }
    Ok(body)
}

/// Parses one complete NMEA sentence (with `$` framing and checksum).
///
/// Unrecognized sentence types parse to [`Sentence::Unknown`] so a PerPos
/// Parser component can still forward them.
///
/// # Errors
///
/// Returns [`NmeaError`] when framing, checksum, or a required field is
/// invalid.
pub fn parse_sentence(sentence: &str) -> Result<Sentence, NmeaError> {
    let body = verify_checksum(sentence)?;
    let mut fields = body.split(',');
    let address = fields.next().unwrap_or_default().to_string();
    let rest: Vec<&str> = fields.collect();
    let type_code = if address.len() >= 5 {
        &address[2..5]
    } else {
        address.as_str()
    };
    match type_code {
        "GGA" => parse_gga(&rest).map(Sentence::Gga),
        "RMC" => parse_rmc(&rest).map(Sentence::Rmc),
        "GSA" => parse_gsa(&rest).map(Sentence::Gsa),
        "GSV" => parse_gsv(&rest).map(Sentence::Gsv),
        "VTG" => parse_vtg(&rest).map(Sentence::Vtg),
        _ => Ok(Sentence::Unknown {
            talker_and_type: address,
            fields: rest.iter().map(|s| s.to_string()).collect(),
        }),
    }
}

fn need(fields: &[&str], n: usize, sentence: &'static str) -> Result<(), NmeaError> {
    if fields.len() < n {
        Err(NmeaError::TooFewFields {
            sentence,
            got: fields.len(),
            need: n,
        })
    } else {
        Ok(())
    }
}

fn parse_time(text: &str) -> Result<NmeaTime, NmeaError> {
    if text.is_empty() {
        return Ok(NmeaTime::default());
    }
    let bad = || NmeaError::InvalidField {
        field: "time",
        value: text.to_string(),
    };
    if text.len() < 6 {
        return Err(bad());
    }
    let hour: u8 = text[0..2].parse().map_err(|_| bad())?;
    let minute: u8 = text[2..4].parse().map_err(|_| bad())?;
    let second: u8 = text[4..6].parse().map_err(|_| bad())?;
    if hour > 23 || minute > 59 || second > 60 {
        return Err(bad());
    }
    let millis = if let Some(frac) = text.get(6..).filter(|f| f.starts_with('.')) {
        let frac_val: f64 = frac.parse().map_err(|_| bad())?;
        (frac_val * 1000.0).round() as u16
    } else {
        0
    };
    Ok(NmeaTime::new(hour, minute, second, millis))
}

/// Parses `ddmm.mmmm` / `dddmm.mmmm` plus hemisphere into decimal degrees.
fn parse_coord(value: &str, hemi: &str, field: &'static str) -> Result<Option<f64>, NmeaError> {
    if value.is_empty() || hemi.is_empty() {
        return Ok(None);
    }
    let bad = || NmeaError::InvalidField {
        field,
        value: format!("{value},{hemi}"),
    };
    let dot = value.find('.').unwrap_or(value.len());
    if dot < 3 {
        return Err(bad());
    }
    let deg_digits = dot - 2;
    let degrees: f64 = value[..deg_digits].parse().map_err(|_| bad())?;
    let minutes: f64 = value[deg_digits..].parse().map_err(|_| bad())?;
    if minutes >= 60.0 {
        return Err(bad());
    }
    let magnitude = degrees + minutes / 60.0;
    let signed = match hemi {
        "N" | "E" => magnitude,
        "S" | "W" => -magnitude,
        _ => return Err(bad()),
    };
    Ok(Some(signed))
}

fn parse_f64_or(text: &str, default: f64, field: &'static str) -> Result<f64, NmeaError> {
    if text.is_empty() {
        return Ok(default);
    }
    text.parse().map_err(|_| NmeaError::InvalidField {
        field,
        value: text.to_string(),
    })
}

fn parse_u8_or(text: &str, default: u8, field: &'static str) -> Result<u8, NmeaError> {
    if text.is_empty() {
        return Ok(default);
    }
    text.parse().map_err(|_| NmeaError::InvalidField {
        field,
        value: text.to_string(),
    })
}

fn parse_gga(f: &[&str]) -> Result<Gga, NmeaError> {
    need(f, 14, "GGA")?;
    Ok(Gga {
        time: parse_time(f[0])?,
        lat_deg: parse_coord(f[1], f[2], "latitude")?,
        lon_deg: parse_coord(f[3], f[4], "longitude")?,
        quality: FixQuality::from_u8(parse_u8_or(f[5], 0, "quality")?),
        num_satellites: parse_u8_or(f[6], 0, "satellites")?,
        hdop: parse_f64_or(f[7], 99.9, "hdop")?,
        altitude_m: parse_f64_or(f[8], 0.0, "altitude")?,
        geoid_separation_m: parse_f64_or(f[10], 0.0, "geoid separation")?,
    })
}

fn parse_rmc(f: &[&str]) -> Result<Rmc, NmeaError> {
    need(f, 9, "RMC")?;
    Ok(Rmc {
        time: parse_time(f[0])?,
        valid: f[1] == "A",
        lat_deg: parse_coord(f[2], f[3], "latitude")?,
        lon_deg: parse_coord(f[4], f[5], "longitude")?,
        speed_knots: parse_f64_or(f[6], 0.0, "speed")?,
        course_deg: parse_f64_or(f[7], 0.0, "course")?,
        date: f[8].to_string(),
    })
}

fn parse_gsa(f: &[&str]) -> Result<Gsa, NmeaError> {
    need(f, 17, "GSA")?;
    let fix_type = match f[1] {
        "2" => GsaFixType::Fix2d,
        "3" => GsaFixType::Fix3d,
        _ => GsaFixType::NoFix,
    };
    let mut prns = Vec::new();
    for field in &f[2..14] {
        if !field.is_empty() {
            prns.push(parse_u8_or(field, 0, "prn")?);
        }
    }
    Ok(Gsa {
        auto_selection: f[0] == "A",
        fix_type,
        prns,
        pdop: parse_f64_or(f[14], 99.9, "pdop")?,
        hdop: parse_f64_or(f[15], 99.9, "hdop")?,
        vdop: parse_f64_or(f[16], 99.9, "vdop")?,
    })
}

fn parse_gsv(f: &[&str]) -> Result<Gsv, NmeaError> {
    need(f, 3, "GSV")?;
    let mut satellites = Vec::new();
    let mut i = 3;
    while i + 3 < f.len() + 1 && i + 3 <= f.len() {
        let chunk = &f[i..i + 4];
        if chunk[0].is_empty() {
            break;
        }
        satellites.push(SatelliteInfo {
            prn: parse_u8_or(chunk[0], 0, "prn")?,
            elevation_deg: parse_u8_or(chunk[1], 0, "elevation")?,
            azimuth_deg: if chunk[2].is_empty() {
                0
            } else {
                chunk[2].parse().map_err(|_| NmeaError::InvalidField {
                    field: "azimuth",
                    value: chunk[2].to_string(),
                })?
            },
            snr_db: if chunk[3].is_empty() {
                None
            } else {
                Some(parse_u8_or(chunk[3], 0, "snr")?)
            },
        });
        i += 4;
    }
    Ok(Gsv {
        total_messages: parse_u8_or(f[0], 1, "total messages")?,
        message_number: parse_u8_or(f[1], 1, "message number")?,
        satellites_in_view: parse_u8_or(f[2], 0, "satellites in view")?,
        satellites,
    })
}

fn parse_vtg(f: &[&str]) -> Result<Vtg, NmeaError> {
    need(f, 7, "VTG")?;
    Ok(Vtg {
        course_true_deg: parse_f64_or(f[0], 0.0, "course")?,
        speed_knots: parse_f64_or(f[4], 0.0, "speed knots")?,
        speed_kmh: parse_f64_or(f[6], 0.0, "speed kmh")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GGA: &str = "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47";
    const RMC: &str = "$GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W*6A";
    const GSA: &str = "$GPGSA,A,3,04,05,,09,12,,,24,,,,,2.5,1.3,2.1*39";
    const GSV: &str = "$GPGSV,2,1,08,01,40,083,46,02,17,308,41,12,07,344,39,14,22,228,45*75";
    const VTG: &str = "$GPVTG,054.7,T,034.4,M,005.5,N,010.2,K*48";

    #[test]
    fn parses_gga() {
        let Sentence::Gga(g) = parse_sentence(GGA).unwrap() else {
            panic!("not GGA");
        };
        assert_eq!(g.time, NmeaTime::new(12, 35, 19, 0));
        assert!((g.lat_deg.unwrap() - (48.0 + 7.038 / 60.0)).abs() < 1e-9);
        assert!((g.lon_deg.unwrap() - (11.0 + 31.0 / 60.0)).abs() < 1e-9);
        assert_eq!(g.quality, FixQuality::Gps);
        assert_eq!(g.num_satellites, 8);
        assert!((g.hdop - 0.9).abs() < 1e-12);
        assert!((g.altitude_m - 545.4).abs() < 1e-12);
    }

    #[test]
    fn parses_rmc() {
        let Sentence::Rmc(r) = parse_sentence(RMC).unwrap() else {
            panic!("not RMC");
        };
        assert!(r.valid);
        assert!((r.speed_knots - 22.4).abs() < 1e-12);
        assert!((r.course_deg - 84.4).abs() < 1e-12);
        assert_eq!(r.date, "230394");
    }

    #[test]
    fn parses_gsa() {
        let Sentence::Gsa(g) = parse_sentence(GSA).unwrap() else {
            panic!("not GSA");
        };
        assert_eq!(g.fix_type, GsaFixType::Fix3d);
        assert_eq!(g.prns, vec![4, 5, 9, 12, 24]);
        assert!((g.hdop - 1.3).abs() < 1e-12);
    }

    #[test]
    fn parses_gsv() {
        let Sentence::Gsv(g) = parse_sentence(GSV).unwrap() else {
            panic!("not GSV");
        };
        assert_eq!(g.total_messages, 2);
        assert_eq!(g.satellites.len(), 4);
        assert_eq!(g.satellites[0].prn, 1);
        assert_eq!(g.satellites[0].snr_db, Some(46));
    }

    #[test]
    fn parses_vtg() {
        let Sentence::Vtg(v) = parse_sentence(VTG).unwrap() else {
            panic!("not VTG");
        };
        assert!((v.course_true_deg - 54.7).abs() < 1e-12);
        assert!((v.speed_knots - 5.5).abs() < 1e-12);
        assert!((v.speed_kmh - 10.2).abs() < 1e-12);
    }

    #[test]
    fn unknown_sentence_is_preserved() {
        let body = "GPZDA,160012.71,11,03,2004,-1,00";
        let line = format!("${body}*{:02X}", checksum(body));
        let Sentence::Unknown {
            talker_and_type,
            fields,
        } = parse_sentence(&line).unwrap()
        else {
            panic!("not unknown");
        };
        assert_eq!(talker_and_type, "GPZDA");
        assert_eq!(fields.len(), 6);
    }

    #[test]
    fn rejects_bad_checksum() {
        let line = GGA.replace("*47", "*48");
        assert!(matches!(
            parse_sentence(&line),
            Err(NmeaError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_missing_framing() {
        assert!(matches!(
            parse_sentence("GPGGA,foo*00"),
            Err(NmeaError::MissingStartDelimiter)
        ));
        assert!(matches!(
            parse_sentence("$GPGGA,foo"),
            Err(NmeaError::MissingChecksum)
        ));
        assert!(matches!(
            parse_sentence("$GPGGA,foo*4"),
            Err(NmeaError::MalformedChecksum(_))
        ));
    }

    #[test]
    fn rejects_overlong_sentence() {
        let body = format!("GPGGA,{}", "x".repeat(100));
        let line = format!("${body}*{:02X}", checksum(&body));
        assert!(matches!(
            parse_sentence(&line),
            Err(NmeaError::SentenceTooLong(_))
        ));
    }

    #[test]
    fn empty_fix_gga_has_no_position() {
        let body = "GPGGA,123519,,,,,0,00,,,M,,M,,";
        let line = format!("${body}*{:02X}", checksum(body));
        let Sentence::Gga(g) = parse_sentence(&line).unwrap() else {
            panic!("not GGA");
        };
        assert_eq!(g.lat_deg, None);
        assert_eq!(g.quality, FixQuality::Invalid);
        assert!(!Sentence::Gga(g).has_fix());
    }

    #[test]
    fn rejects_invalid_minutes() {
        // 61 minutes is not a valid coordinate.
        let body = "GPGGA,123519,4861.000,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,";
        let line = format!("${body}*{:02X}", checksum(body));
        assert!(matches!(
            parse_sentence(&line),
            Err(NmeaError::InvalidField {
                field: "latitude",
                ..
            })
        ));
    }

    #[test]
    fn rejects_invalid_hemisphere() {
        let body = "GPGGA,123519,4807.038,X,01131.000,E,1,08,0.9,545.4,M,46.9,M,,";
        let line = format!("${body}*{:02X}", checksum(body));
        assert!(parse_sentence(&line).is_err());
    }

    #[test]
    fn southern_western_hemispheres_are_negative() {
        let body = "GPGGA,123519,4807.038,S,01131.000,W,1,08,0.9,545.4,M,46.9,M,,";
        let line = format!("${body}*{:02X}", checksum(body));
        let Sentence::Gga(g) = parse_sentence(&line).unwrap() else {
            panic!("not GGA");
        };
        assert!(g.lat_deg.unwrap() < 0.0);
        assert!(g.lon_deg.unwrap() < 0.0);
    }

    #[test]
    fn trailing_newline_is_tolerated() {
        let line = format!("{GGA}\r\n");
        assert!(parse_sentence(&line).is_ok());
    }

    #[test]
    fn fractional_seconds_parse() {
        let t = parse_time("123519.75").unwrap();
        assert_eq!(t.millis, 750);
    }

    mod fuzz {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// The parser must never panic, whatever bytes arrive off the
            /// wire — it returns a structured error instead.
            #[test]
            fn parse_never_panics(input in ".{0,120}") {
                let _ = parse_sentence(&input);
            }

            /// Valid framing with arbitrary field garbage parses to
            /// Ok(...) or a field error, never a panic.
            #[test]
            fn framed_garbage_never_panics(body in "[A-Z]{5}(,[-0-9A-Za-z.]{0,12}){0,20}") {
                let line = format!("${body}*{:02X}", checksum(&body));
                let _ = parse_sentence(&line);
            }

            /// Checksum verification agrees with manual recomputation.
            #[test]
            fn checksum_round_trip(body in "[ -)+-~]{0,60}") {
                // (excludes '*' so the body has no checksum delimiter)
                let line = format!("${body}*{:02X}", checksum(&body));
                prop_assert_eq!(verify_checksum(&line).unwrap(), body.as_str());
            }
        }
    }
}
