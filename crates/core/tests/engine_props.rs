//! Property tests of engine-level invariants: item conservation through
//! pass-through pipelines, data-tree partitioning of intermediate items,
//! and graph-edge consistency under random manipulation sequences.

#![allow(clippy::unwrap_used)]
use std::any::Any;

use perpos_core::channel::{ChannelFeature, ChannelHost, DataTree};
use perpos_core::feature::FeatureDescriptor;
use perpos_core::prelude::*;
use proptest::prelude::*;

/// Builds a pass-through pipeline of the given depth and runs `steps`
/// engine steps with one item emitted per step.
fn run_pipeline(depth: usize, steps: usize) -> (Middleware, LocationProvider) {
    let mut mw = Middleware::new();
    let mut i = 0i64;
    let src = mw.add_component(FnSource::new("src", kinds::RAW_STRING, move |_| {
        i += 1;
        Some(Value::Int(i))
    }));
    let mut prev = src;
    for d in 0..depth {
        let node = mw.add_component(FnProcessor::new(
            format!("stage{d}"),
            vec![kinds::RAW_STRING],
            kinds::RAW_STRING,
            |item| Some(item.payload.clone()),
        ));
        mw.connect(prev, node, 0).unwrap();
        prev = node;
    }
    let app = mw.application_sink();
    mw.connect(prev, app, 0).unwrap();
    let provider = mw.location_provider(Criteria::new()).unwrap();
    for _ in 0..steps {
        mw.step().unwrap();
        mw.advance_clock(SimDuration::from_millis(10));
    }
    (mw, provider)
}

struct TreeAccounting {
    trees: usize,
    elements: usize,
    roots_in_order: Vec<i64>,
}

impl ChannelFeature for TreeAccounting {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new("TreeAccounting")
    }
    fn apply(&mut self, tree: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
        self.trees += 1;
        self.elements += tree.len();
        if let Some(v) = tree.root.item.payload.as_i64() {
            self.roots_in_order.push(v);
        }
        Ok(())
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every item the source emits arrives at the application exactly
    /// once, in order, regardless of pipeline depth.
    #[test]
    fn item_conservation(depth in 0usize..8, steps in 1usize..50) {
        let (_mw, provider) = run_pipeline(depth, steps);
        let values: Vec<i64> = provider
            .history()
            .iter()
            .filter_map(|i| i.payload.as_i64())
            .collect();
        prop_assert_eq!(values.len(), steps);
        let expected: Vec<i64> = (1..=steps as i64).collect();
        prop_assert_eq!(values, expected);
    }

    /// Channel data trees partition the pipeline's emissions: with one
    /// item per step, each tree contains exactly depth+1 elements
    /// (one per pipeline level) and trees appear once per output,
    /// in output order.
    #[test]
    fn trees_partition_emissions(depth in 0usize..8, steps in 1usize..30) {
        let mut mw = Middleware::new();
        let mut i = 0i64;
        let src = mw.add_component(FnSource::new("src", kinds::RAW_STRING, move |_| {
            i += 1;
            Some(Value::Int(i))
        }));
        let mut prev = src;
        for d in 0..depth {
            let node = mw.add_component(FnProcessor::new(
                format!("stage{d}"),
                vec![kinds::RAW_STRING],
                kinds::RAW_STRING,
                |item| Some(item.payload.clone()),
            ));
            mw.connect(prev, node, 0).unwrap();
            prev = node;
        }
        let app = mw.application_sink();
        mw.connect(prev, app, 0).unwrap();
        let channel = mw.channel_into(app, 0).unwrap();
        mw.attach_channel_feature(
            channel,
            TreeAccounting { trees: 0, elements: 0, roots_in_order: vec![] },
        )
        .unwrap();
        for _ in 0..steps {
            mw.step().unwrap();
            mw.advance_clock(SimDuration::from_millis(10));
        }
        let (trees, elements, roots) = mw
            .with_channel_feature_mut::<TreeAccounting, _>(channel, "TreeAccounting", |f| {
                (f.trees, f.elements, f.roots_in_order.clone())
            })
            .unwrap();
        prop_assert_eq!(trees, steps);
        prop_assert_eq!(elements, steps * (depth + 1));
        let expected: Vec<i64> = (1..=steps as i64).collect();
        prop_assert_eq!(roots, expected);
    }

    /// Random add/connect/disconnect/remove sequences keep the edge
    /// bookkeeping consistent: downstream and upstream views mirror each
    /// other and never reference missing nodes.
    #[test]
    fn graph_edges_stay_consistent(ops in proptest::collection::vec(0u8..4, 1..60)) {
        let mut mw = Middleware::new();
        let mut nodes: Vec<perpos_core::graph::NodeId> = Vec::new();
        for (step, op) in ops.iter().enumerate() {
            match op % 4 {
                0 => {
                    let id = mw.add_component(FnProcessor::new(
                        format!("n{step}"),
                        vec![kinds::RAW_STRING],
                        kinds::RAW_STRING,
                        |item| Some(item.payload.clone()),
                    ));
                    nodes.push(id);
                }
                1 if nodes.len() >= 2 => {
                    let from = nodes[step % nodes.len()];
                    let to = nodes[(step / 2) % nodes.len()];
                    let _ = mw.connect(from, to, 0); // failures are fine
                }
                2 if !nodes.is_empty() => {
                    let n = nodes[step % nodes.len()];
                    let _ = mw.disconnect(n, 0);
                }
                3 if !nodes.is_empty() => {
                    let idx = step % nodes.len();
                    let n = nodes.swap_remove(idx);
                    let _ = mw.remove_component(n);
                }
                _ => {}
            }
            // Invariant check after every operation.
            let g = mw.graph();
            for id in g.node_ids() {
                for &(target, port) in g.downstream(id) {
                    prop_assert!(g.contains(target), "edge to missing node");
                    let ups = g.upstream(target);
                    prop_assert_eq!(ups.get(port).copied().flatten(), Some(id),
                        "downstream edge has no mirroring upstream slot");
                }
                for (port, producer) in g.upstream(id).iter().enumerate() {
                    if let Some(p) = producer {
                        prop_assert!(g.contains(*p), "upstream from missing node");
                        prop_assert!(
                            g.downstream(*p).contains(&(id, port)),
                            "upstream slot has no mirroring downstream edge"
                        );
                    }
                }
            }
            // The engine keeps stepping whatever the shape.
            mw.step().unwrap();
            mw.advance_clock(SimDuration::from_millis(1));
        }
    }

    /// Feature-added attributes survive arbitrary pipeline depth.
    #[test]
    fn attributes_propagate(depth in 0usize..6) {
        let mut mw = Middleware::new();
        let src = mw.add_component(FnSource::new("src", kinds::RAW_STRING, |_| {
            Some(Value::Int(7))
        }));
        mw.attach_feature(
            src,
            perpos_core::feature::TagFeature::new("Tag", "origin", Value::from("src")),
        )
        .unwrap();
        let mut prev = src;
        for d in 0..depth {
            // Pass-through components that preserve the whole item.
            struct Pass;
            impl perpos_core::component::Component for Pass {
                fn descriptor(&self) -> perpos_core::component::ComponentDescriptor {
                    perpos_core::component::ComponentDescriptor::processor(
                        "pass",
                        perpos_core::component::InputSpec::new("in", vec![]),
                        vec![kinds::RAW_STRING],
                    )
                }
                fn on_input(
                    &mut self,
                    _p: usize,
                    item: DataItem,
                    ctx: &mut perpos_core::component::ComponentCtx<'_>,
                ) -> Result<(), CoreError> {
                    ctx.emit(item);
                    Ok(())
                }
            }
            let node = mw.add_component(Pass);
            mw.connect(prev, node, 0).unwrap();
            prev = node;
            let _ = d;
        }
        let app = mw.application_sink();
        mw.connect(prev, app, 0).unwrap();
        let provider = mw.location_provider(Criteria::new()).unwrap();
        mw.step().unwrap();
        let item = provider.last_item().unwrap();
        prop_assert_eq!(item.attr("origin").and_then(Value::as_text), Some("src"));
    }
}
