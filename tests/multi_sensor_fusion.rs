//! End-to-end test of the paper's Fig. 2 configuration: a particle
//! filter aggregating measurements from a GPS *and* a WiFi sensor, with
//! the three abstraction levels derived from the one graph.

#![allow(clippy::unwrap_used)]
use std::sync::Arc;

use perpos::fusion::{LikelihoodFeature, ParticleFilter};
use perpos::prelude::*;

struct Setup {
    mw: Middleware,
    pf: perpos::core::graph::NodeId,
    walk: Trajectory,
    frame: LocalFrame,
}

fn fig2_graph() -> Setup {
    let building = Arc::new(demo_building());
    let frame = *building.frame();
    // Indoors along the corridor: GPS is poor, WiFi is good — fusion must
    // weather both.
    let walk = Trajectory::new(vec![Point2::new(1.0, 5.25), Point2::new(19.0, 5.25)], 0.9);
    let mut mw = Middleware::new();

    // GPS branch (degraded indoors).
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame, walk.clone())
            .with_seed(61)
            .with_environment(GpsEnvironment::urban()),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    mw.connect(gps, parser, 0).unwrap();
    mw.connect(parser, interpreter, 0).unwrap();
    mw.attach_feature(parser, HdopFeature::new()).unwrap();

    // WiFi branch.
    let env = Arc::new(WifiEnvironment::with_ap_per_room(Arc::clone(&building), 0));
    let map = Arc::new(perpos::sensors::RadioMap::build(&env, 1.0));
    let wifi = mw.add_component(WifiScanner::new("WiFi", env, walk.clone()).with_seed(67));
    let wifi_pos = mw.add_component(WifiPositioning::new(map, Arc::clone(&building)));
    mw.connect(wifi, wifi_pos, 0).unwrap();

    // The merge: a 2-input particle filter (Fig. 2's central node).
    let likelihood = LikelihoodFeature::new();
    let handle = likelihood.handle();
    let pf = mw.add_component(
        ParticleFilter::new("ParticleFilter", frame, 2)
            .with_seed(71)
            .with_particles(600)
            .with_building(Arc::clone(&building), 0)
            .with_likelihood(handle),
    );
    let app = mw.application_sink();
    mw.connect(interpreter, pf, 0).unwrap();
    mw.connect(wifi_pos, pf, 1).unwrap();
    mw.connect(pf, app, 0).unwrap();

    // Likelihood Channel Feature on the GPS channel (Fig. 5 wiring).
    let gps_channel = mw.channel_into(pf, 0).expect("gps channel");
    mw.attach_channel_feature(gps_channel, likelihood).unwrap();

    Setup {
        mw,
        pf,
        walk,
        frame,
    }
}

#[test]
fn three_channels_derive_from_fig2_graph() {
    let s = fig2_graph();
    let channels = s.mw.channels();
    // GPS chain -> PF, WiFi chain -> PF, PF -> app.
    assert_eq!(channels.len(), 3);
    let heads: Vec<&str> = channels
        .iter()
        .map(|c| c.member_names[0].as_str())
        .collect();
    assert!(heads.contains(&"GPS"));
    assert!(heads.contains(&"WiFi"));
    assert!(heads.contains(&"ParticleFilter"));
    // Both sensor channels end at the particle filter.
    let pf_endpoints = channels
        .iter()
        .filter(|c| c.endpoint.map(|(n, _)| n) == Some(s.pf))
        .count();
    assert_eq!(pf_endpoints, 2);
}

#[test]
fn fused_track_follows_truth_indoors() {
    let mut s = fig2_graph();
    let fused =
        s.mw.location_provider(Criteria::new().source("fusion"))
            .unwrap();
    let mut errs = Vec::new();
    for _ in 0..25 {
        s.mw.step().unwrap();
        let truth = s.walk.position_at(s.mw.now());
        if let Some(p) = fused.last_position() {
            errs.push(s.frame.to_local(p.coord()).distance(&truth));
        }
        s.mw.advance_clock(SimDuration::from_secs(1));
    }
    assert!(errs.len() > 15, "fusion produced a track");
    let settled = &errs[5..];
    let mean = settled.iter().sum::<f64>() / settled.len() as f64;
    assert!(
        mean < 8.0,
        "multi-sensor fused track should be accurate indoors, got {mean:.2} m"
    );
}

#[test]
fn fusion_survives_losing_one_sensor() {
    let mut s = fig2_graph();
    let fused =
        s.mw.location_provider(Criteria::new().source("fusion"))
            .unwrap();
    s.mw.run_for(SimDuration::from_secs(5), SimDuration::from_secs(1))
        .unwrap();
    let before = fused.history().len();
    assert!(before > 0);
    // The GPS dies (device off). WiFi keeps the filter fed.
    let gps =
        s.mw.structure()
            .into_iter()
            .find(|n| n.descriptor.name == "GPS")
            .unwrap()
            .id;
    s.mw.invoke(gps, "setEnabled", &[Value::Bool(false)])
        .unwrap();
    s.mw.run_for(SimDuration::from_secs(10), SimDuration::from_secs(1))
        .unwrap();
    let after = fused.history().len();
    assert!(
        after >= before + 8,
        "fusion output must continue on WiFi alone ({before} -> {after})"
    );
}

#[test]
fn positioning_layer_hides_the_fusion() {
    // Transparent use: an application that just asks for positions does
    // not see (or care) that a particle filter was plugged in.
    let mut s = fig2_graph();
    let any_position =
        s.mw.location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
            .unwrap();
    s.mw.run_for(SimDuration::from_secs(10), SimDuration::from_secs(1))
        .unwrap();
    let p = any_position.last_position().expect("position available");
    assert!(p.accuracy_m().is_some());
}
