//! End-to-end test of declarative "system level configurations"
//! (paper §2.1): a positioning process described as JSON, loaded and
//! instantiated against a factory registry.

#![allow(clippy::unwrap_used)]
use std::collections::BTreeMap;

use perpos::core::assembly::GraphConfig;
use perpos::core::component::Component;
use perpos::prelude::*;

type Factory = Box<dyn Fn() -> Box<dyn Component> + Send + Sync>;

fn factories() -> BTreeMap<String, Factory> {
    let frame = LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap());
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));
    let mut f: BTreeMap<String, Factory> = BTreeMap::new();
    f.insert(
        "gps".into(),
        Box::new(move || Box::new(GpsSimulator::new("GPS", frame, walk.clone()).with_seed(3))),
    );
    f.insert("parser".into(), Box::new(|| Box::new(Parser::new())));
    f.insert(
        "interpreter".into(),
        Box::new(|| Box::new(Interpreter::new())),
    );
    f
}

const CONFIG_JSON: &str = r#"{
  "components": [
    { "name": "gps0", "kind": "gps" },
    { "name": "parser0", "kind": "parser" },
    { "name": "interpreter0", "kind": "interpreter" },
    { "name": "app", "kind": "application" }
  ],
  "connections": [
    { "from": "gps0", "to": "parser0", "port": 0 },
    { "from": "parser0", "to": "interpreter0", "port": 0 },
    { "from": "interpreter0", "to": "app", "port": 0 }
  ]
}"#;

#[test]
fn json_configuration_builds_a_working_pipeline() {
    let config: GraphConfig = serde_json::from_str(CONFIG_JSON).unwrap();
    let mut mw = Middleware::new();
    let nodes = config.instantiate(&mut mw, &factories()).unwrap();
    assert_eq!(nodes.len(), 4);
    let provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();
    mw.run_for(SimDuration::from_secs(10), SimDuration::from_secs(1))
        .unwrap();
    assert!(provider.last_position().is_some());
    // The configured process carries the expected channel structure.
    let channels = mw.channels();
    assert_eq!(channels.len(), 1);
    assert_eq!(
        channels[0].member_names,
        vec!["GPS", "Parser", "Interpreter"]
    );
}

#[test]
fn configuration_round_trips_through_json() {
    let config: GraphConfig = serde_json::from_str(CONFIG_JSON).unwrap();
    let json = serde_json::to_string_pretty(&config).unwrap();
    let back: GraphConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(config, back);
}

#[test]
fn invalid_connections_are_rejected_with_graph_semantics() {
    // Configurations are validated with the same rules as the direct
    // manipulation API: a parser cannot consume positions.
    let bad = r#"{
      "components": [
        { "name": "gps0", "kind": "gps" },
        { "name": "interpreter0", "kind": "interpreter" }
      ],
      "connections": [
        { "from": "gps0", "to": "interpreter0", "port": 0 }
      ]
    }"#;
    let config: GraphConfig = serde_json::from_str(bad).unwrap();
    let mut mw = Middleware::new();
    let err = config.instantiate(&mut mw, &factories()).unwrap_err();
    assert!(matches!(err, CoreError::IncompatibleConnection { .. }));
}
