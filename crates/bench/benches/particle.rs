//! Criterion bench: particle-filter update cost vs particle count (the
//! knob the paper's probabilistic tracking example exposes).

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perpos_core::component::ComponentCtxProbe;
use perpos_core::prelude::*;
use perpos_fusion::ParticleFilter;
use perpos_geo::{LocalFrame, Point2, Wgs84};

fn frame() -> LocalFrame {
    LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap())
}

fn measurement(f: &LocalFrame, p: Point2, t: f64) -> DataItem {
    DataItem::new(
        kinds::POSITION_WGS84,
        SimTime::from_secs_f64(t),
        Value::from(Position::new(f.from_local(&p), Some(8.0))),
    )
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("pf_update_by_particles");
    for n in [100usize, 500, 1000, 5000, 10000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let f = frame();
            let mut pf = ParticleFilter::new("pf", f, 1)
                .with_seed(1)
                .with_particles(n);
            // Initialize.
            ComponentCtxProbe::run_input(&mut pf, measurement(&f, Point2::new(0.0, 0.0), 0.0))
                .unwrap();
            let mut t = 1.0;
            b.iter(|| {
                let item = measurement(&f, Point2::new(t, 0.0), t);
                t += 1.0;
                ComponentCtxProbe::run_input(&mut pf, item).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_constrained_update(c: &mut Criterion) {
    let building = std::sync::Arc::new(perpos_model::demo_building());
    let mut group = c.benchmark_group("pf_update_constrained");
    for n in [500usize, 2000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let f = frame();
            let mut pf = ParticleFilter::new("pf", f, 1)
                .with_seed(1)
                .with_particles(n)
                .with_building(std::sync::Arc::clone(&building), 0);
            ComponentCtxProbe::run_input(&mut pf, measurement(&f, Point2::new(10.0, 5.0), 0.0))
                .unwrap();
            let mut t = 1.0;
            b.iter(|| {
                let item = measurement(&f, Point2::new(10.0 + (t % 5.0), 5.0), t);
                t += 1.0;
                ComponentCtxProbe::run_input(&mut pf, item).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update, bench_constrained_update);
criterion_main!(benches);
