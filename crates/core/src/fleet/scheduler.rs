//! How a [`FleetPool`](crate::fleet::FleetPool) distributes its shards
//! over cores each round.
//!
//! Shards are share-nothing by construction: each owns its instances,
//! their checkpoints, its watchdog (with a shard-local RNG seed) and its
//! counters, and the only thing shards share is the immutable instance
//! factory. Stepping shards concurrently is therefore *observationally
//! identical* to stepping them in order — provided every shard sees the
//! same sequence of `Shard::run` chunk boundaries it would have seen
//! serially. [`chunk_plan`] guarantees exactly that: scheduler chunks
//! end only on checkpoint boundaries (where the serial path also cuts
//! its internal chunks) or at the call's end, so fault accounting,
//! clean-round watchdog records and checkpoint capture land on the same
//! shard steps under every scheduler and worker count.
//! `tests/fleet_parallel_determinism.rs` pins the equivalence to the
//! byte.

/// Strategy for visiting the pool's shards during
/// [`FleetPool::run`](crate::fleet::FleetPool::run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetScheduler {
    /// Step the shards one after another, in shard order, on the
    /// calling thread — the default, and the reference behavior the
    /// other schedulers must reproduce byte-for-byte.
    #[default]
    Serial,
    /// A pool of scoped worker threads pulls shard indices from a
    /// shared atomic cursor, one checkpoint-aligned round-chunk at a
    /// time with a barrier between chunks: a worker that drew a
    /// quarantined (nearly free) shard immediately steals the next
    /// index, so stragglers cannot leave cores idle, and rebalancing
    /// happens every chunk without any migration of shard state.
    WorkStealing {
        /// Worker-thread cap; `0` resolves to the machine's effective
        /// core count (cgroup-aware) at `run` time.
        workers: usize,
    },
    /// Step the shards serially but in a seeded, per-chunk permuted
    /// order — the loom-free interleaving sanitizer: any schedule
    /// sensitivity shows up as a deterministic divergence from
    /// [`FleetScheduler::Serial`] rather than a thread-timing flake.
    /// Mirrors the executor layer's `PermutedParallel`.
    Permuted {
        /// Seed driving the per-chunk Fisher–Yates shuffle; equal seeds
        /// replay the same visitation orders.
        seed: u64,
    },
}

impl FleetScheduler {
    /// The scheduler's canonical name: `"serial"`, `"work_stealing"` or
    /// `"permuted"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            FleetScheduler::Serial => "serial",
            FleetScheduler::WorkStealing { .. } => "work_stealing",
            FleetScheduler::Permuted { .. } => "permuted",
        }
    }

    /// Parses a scheduler name (the inverse of [`FleetScheduler::as_str`],
    /// with `"work-stealing"` accepted as an alias). `work_stealing`
    /// starts machine-sized (`workers: 0`) and `permuted` with seed 0;
    /// use the struct syntax or [`FleetSpec`](crate::assembly::FleetSpec)
    /// fields to pick explicit values.
    pub fn from_name(name: &str) -> Option<FleetScheduler> {
        match name {
            "serial" => Some(FleetScheduler::Serial),
            "work_stealing" | "work-stealing" => Some(FleetScheduler::WorkStealing { workers: 0 }),
            "permuted" => Some(FleetScheduler::Permuted { seed: 0 }),
            _ => None,
        }
    }

    /// The worker count this scheduler *requests*: the declared cap for
    /// [`FleetScheduler::WorkStealing`] (`0` = machine-sized), `1` for
    /// the serial-execution schedulers. Machine-independent, so it is
    /// safe to embed in analysis facts and benchmark metadata.
    pub fn requested_workers(&self) -> usize {
        match self {
            FleetScheduler::Serial | FleetScheduler::Permuted { .. } => 1,
            FleetScheduler::WorkStealing { workers } => *workers,
        }
    }

    /// The worker count `run` will actually use on this machine:
    /// [`FleetScheduler::requested_workers`] with `0` resolved through
    /// [`machine_parallelism`](crate::executor::machine_parallelism).
    pub fn resolved_workers(&self) -> usize {
        match self.requested_workers() {
            0 => crate::executor::machine_parallelism(),
            n => n,
        }
    }
}

/// Splits `rounds` (starting at global shard step `start`) into chunks
/// that end only on `checkpoint_every` boundaries or at the final
/// round. Every shard advances `steps_run` in lockstep with the pool
/// (quarantine skips advance it too), so inside each planned chunk
/// `Shard::run` computes exactly the internal chunk sequence — and thus
/// the same fault accounting, clean-round records and checkpoint
/// captures — that one serial `run(rounds)` call would have produced.
pub(crate) fn chunk_plan(start: u64, rounds: u64, checkpoint_every: u64) -> Vec<u64> {
    let every = checkpoint_every.max(1);
    let mut plan = Vec::new();
    let mut done = 0u64;
    while done < rounds {
        let to_boundary = every - (start + done) % every;
        let chunk = to_boundary.min(rounds - done);
        plan.push(chunk);
        done += chunk;
    }
    plan
}

/// splitmix64 — the same tiny generator the executor layer's
/// `PermutedParallel` uses for its wave shuffles.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded Fisher–Yates permutation of `0..len`, advancing `state` so
/// consecutive chunks visit the shards in different orders.
pub(crate) fn shuffled_indices(state: &mut u64, len: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        let j = (splitmix64(state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for sched in [
            FleetScheduler::Serial,
            FleetScheduler::WorkStealing { workers: 0 },
            FleetScheduler::Permuted { seed: 0 },
        ] {
            assert_eq!(FleetScheduler::from_name(sched.as_str()), Some(sched));
        }
        assert_eq!(
            FleetScheduler::from_name("work-stealing"),
            Some(FleetScheduler::WorkStealing { workers: 0 })
        );
        assert_eq!(FleetScheduler::from_name("threads"), None);
    }

    #[test]
    fn requested_workers_is_machine_independent() {
        assert_eq!(FleetScheduler::Serial.requested_workers(), 1);
        assert_eq!(FleetScheduler::Permuted { seed: 9 }.requested_workers(), 1);
        assert_eq!(
            FleetScheduler::WorkStealing { workers: 4 }.requested_workers(),
            4
        );
        assert_eq!(
            FleetScheduler::WorkStealing { workers: 0 }.requested_workers(),
            0
        );
        assert!(FleetScheduler::WorkStealing { workers: 0 }.resolved_workers() >= 1);
    }

    #[test]
    fn chunk_plan_cuts_only_on_boundaries() {
        // Aligned start: full intervals plus a remainder.
        assert_eq!(chunk_plan(0, 20, 8), vec![8, 8, 4]);
        // Unaligned start: first chunk tops up to the boundary.
        assert_eq!(chunk_plan(6, 10, 8), vec![2, 8]);
        // Degenerate cadence never loops forever.
        assert_eq!(chunk_plan(0, 3, 0), vec![1, 1, 1]);
        // Plans always sum to the requested rounds.
        for start in 0..10u64 {
            for rounds in 0..30u64 {
                let plan = chunk_plan(start, rounds, 8);
                assert_eq!(plan.iter().sum::<u64>(), rounds);
                let mut pos = start;
                for (i, &chunk) in plan.iter().enumerate() {
                    pos += chunk;
                    let last = i + 1 == plan.len();
                    assert!(last || pos % 8 == 0, "interior cut off-boundary");
                }
            }
        }
    }

    #[test]
    fn shuffles_are_seed_deterministic_permutations() {
        let mut a = 42u64;
        let mut b = 42u64;
        let oa = shuffled_indices(&mut a, 16);
        let ob = shuffled_indices(&mut b, 16);
        assert_eq!(oa, ob);
        let mut sorted = oa.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        // The advanced state yields a different order next chunk.
        assert_ne!(shuffled_indices(&mut a, 16), ob);
    }
}
