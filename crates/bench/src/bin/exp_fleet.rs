//! Experiment "fleet" — supervised fleet soak under deterministic chaos.
//!
//! A [`FleetPool`] shards thousands of middleware instances and walks the
//! escalation ladder when they fault: in-instance containment first,
//! checkpoint-restart second, shard quarantine third. This soak injects
//! an *environmental* fault schedule — a fraction `fault_rate` of the
//! instances carry a source that fails a step with a small seeded
//! probability, reseeded per incarnation so restarts do not replay the
//! crash out of the restored checkpoint — and measures what supervision
//! buys: fleet availability (live instance-steps over attempted),
//! recovery latency in steps-to-healthy, and sustained items/s, against
//! an unsupervised baseline where the first escaped fault kills the
//! instance for the rest of the run. Swept over instances x pipeline
//! depth x fault-rate. All counters are deterministic (seeded shim RNG,
//! deterministic restart order); only the wall-clock columns vary by
//! machine.
//!
//! Run with: `cargo run -p perpos-bench --bin exp_fleet --release`
//! (pass `--smoke` for the reduced CI check, which re-runs the smoke
//! configuration, fails unless supervised availability stays >= 0.99
//! under the 10 % fault rate while beating the unsupervised baseline,
//! and cross-checks the deterministic counters against the committed
//! `BENCH_fleet.json` so the baseline provably regenerates).
//!
//! The full sweep (re)writes `BENCH_fleet.json`; the smoke sweep only
//! reads it.

#![allow(clippy::unwrap_used)]
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use perpos_core::component::{ComponentCtx, ComponentDescriptor};
use perpos_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-step failure probability of a faulty instance's source. Chosen so
/// a 10 % faulty fleet stays above the 0.99 availability floor *with*
/// checkpoint-restart but falls well below it without.
const STEP_FAIL_PROB: f64 = 0.015;

/// Rounds each configuration runs for.
const ROUNDS: u64 = 96;

/// A counting source whose counter rides through checkpoints while its
/// fault schedule stays environmental: the RNG is *not* snapshotted and
/// is reseeded per incarnation, so a restored instance faces fresh
/// weather instead of deterministically replaying its own crash.
struct FlakySource {
    counter: i64,
    rng: Option<StdRng>,
}

impl Component for FlakySource {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::source("flaky", vec![kinds::RAW_STRING])
    }
    fn on_input(
        &mut self,
        _p: usize,
        _i: DataItem,
        _c: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        Ok(())
    }
    fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
        if let Some(rng) = self.rng.as_mut() {
            if rng.gen::<f64>() < STEP_FAIL_PROB {
                return Err(CoreError::ComponentFailure {
                    component: "flaky".to_string(),
                    reason: "injected fault".to_string(),
                });
            }
        }
        self.counter += 1;
        ctx.emit_value(kinds::RAW_STRING, Value::Int(self.counter));
        Ok(())
    }
    fn snapshot_state(&self) -> Option<Value> {
        Some(Value::Int(self.counter))
    }
    fn restore_state(&mut self, state: &Value) {
        if let Some(v) = state.as_i64() {
            self.counter = v;
        }
    }
}

/// Instance factory: every `1/fault_rate`-th instance gets a faulty
/// source, the rest run clean. The incarnation counter makes restart
/// reseeding deterministic without replaying checkpointed schedules.
fn factory(depth: usize, fault_rate: f64, seed: u64) -> impl Fn(usize) -> Middleware {
    let incarnation = Arc::new(AtomicU64::new(0));
    move |index| {
        let stripe = (fault_rate * 100.0).round() as usize;
        let faulty = stripe > 0 && index % 100 < stripe;
        let rng = faulty.then(|| {
            let n = incarnation.fetch_add(1, Ordering::Relaxed);
            StdRng::seed_from_u64(
                seed ^ (index as u64).wrapping_mul(0x9E37_79B9) ^ n.wrapping_mul(0xC0FF_EE11),
            )
        });
        let mut mw = Middleware::new();
        let src = mw.add_boxed_component(Box::new(FlakySource { counter: 0, rng }));
        let mut prev = src;
        for d in 0..depth {
            let node = mw.add_component(FnProcessor::new(
                format!("stage{d}"),
                vec![kinds::RAW_STRING],
                kinds::RAW_STRING,
                |item| Some(item.payload.clone()),
            ));
            mw.connect(prev, node, 0).unwrap();
            prev = node;
        }
        let app = mw.application_sink();
        mw.connect_to_sink(prev, app).unwrap();
        mw
    }
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Supervised {
    availability: f64,
    live_steps: u64,
    missed_steps: u64,
    instance_faults: u64,
    restarts: u64,
    cold_restarts: u64,
    quarantines: u64,
    checkpoints: u64,
    mean_recovery_steps: f64,
    items_per_sec: f64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Unsupervised {
    availability: f64,
    live_steps: u64,
    missed_steps: u64,
    dead_instances: u64,
    items_per_sec: f64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Sample {
    instances: u64,
    depth: u64,
    fault_rate: f64,
    supervised: Supervised,
    unsupervised: Unsupervised,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Doc {
    experiment: String,
    cores: u64,
    rounds: u64,
    step_fail_prob: f64,
    results: Vec<Sample>,
}

fn fleet_config(instances: usize) -> FleetConfig {
    FleetConfig {
        shards: (instances / 320).max(1),
        instances,
        checkpoint_every: 8,
        shard_fault_threshold: 16,
        shard_fault_window: 16,
        shard_backoff: 4,
        seed: 0xf1ee7,
    }
}

fn run_supervised(instances: usize, depth: usize, fault_rate: f64) -> Supervised {
    let mut pool = FleetPool::new(
        fleet_config(instances),
        factory(depth, fault_rate, 0xbad5eed),
    );
    let tick = SimDuration::from_millis(100);
    let start = Instant::now();
    pool.run(ROUNDS, tick);
    let secs = start.elapsed().as_secs_f64();
    let stats = pool.stats();
    let cold: u64 = stats.shards.iter().map(|s| s.cold_restarts).sum();
    let warm: u64 = stats.shards.iter().map(|s| s.restarts).sum();
    let checkpoints: u64 = stats.shards.iter().map(|s| s.checkpoints).sum();
    Supervised {
        availability: stats.availability(),
        live_steps: stats.live_steps(),
        missed_steps: stats.missed_steps(),
        instance_faults: stats.instance_faults(),
        restarts: warm,
        cold_restarts: cold,
        quarantines: stats.quarantines(),
        checkpoints,
        mean_recovery_steps: stats.mean_recovery_steps(),
        items_per_sec: stats.live_steps() as f64 / secs,
    }
}

/// The baseline the supervision tax is judged against: the same fleet
/// stepped with no checkpoints, no restarts and no watchdog — the first
/// fault that escapes containment leaves the instance down for the rest
/// of the soak.
fn run_unsupervised(instances: usize, depth: usize, fault_rate: f64) -> Unsupervised {
    let build = factory(depth, fault_rate, 0xbad5eed);
    let mut fleet: Vec<Option<Middleware>> = (0..instances).map(|i| Some(build(i))).collect();
    let tick = SimDuration::from_millis(100);
    let mut live = 0u64;
    let mut missed = 0u64;
    let start = Instant::now();
    for _ in 0..ROUNDS {
        for slot in &mut fleet {
            match slot {
                Some(mw) => {
                    let before = mw.steps_run();
                    match mw.step_batch(1, tick) {
                        Ok(()) => live += 1,
                        Err(_) => {
                            live += mw.steps_run().saturating_sub(before);
                            missed += 1;
                            *slot = None;
                        }
                    }
                }
                None => missed += 1,
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let dead = fleet.iter().filter(|s| s.is_none()).count() as u64;
    Unsupervised {
        availability: live as f64 / (live + missed) as f64,
        live_steps: live,
        missed_steps: missed,
        dead_instances: dead,
        items_per_sec: live as f64 / secs,
    }
}

fn measure(instances: usize, depth: usize, fault_rate: f64) -> Sample {
    let supervised = run_supervised(instances, depth, fault_rate);
    let unsupervised = run_unsupervised(instances, depth, fault_rate);
    Sample {
        instances: instances as u64,
        depth: depth as u64,
        fault_rate,
        supervised,
        unsupervised,
    }
}

fn print_sample(s: &Sample) {
    println!(
        "{:>9} {:>6} {:>6.2} {:>12.4} {:>12.4} {:>7} {:>9} {:>11} {:>9.1} {:>12.0}",
        s.instances,
        s.depth,
        s.fault_rate,
        s.supervised.availability,
        s.unsupervised.availability,
        s.supervised.instance_faults,
        s.supervised.restarts,
        s.supervised.quarantines,
        s.supervised.mean_recovery_steps,
        s.supervised.items_per_sec,
    );
}

/// The configuration the CI smoke re-runs and cross-checks.
const SMOKE: (usize, usize, f64) = (2048, 1, 0.10);

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("=== fleet: supervised soak vs unsupervised baseline ({cores} core(s)) ===\n");
    println!(
        "{:>9} {:>6} {:>6} {:>12} {:>12} {:>7} {:>9} {:>11} {:>9} {:>12}",
        "instances",
        "depth",
        "rate",
        "avail(sup)",
        "avail(raw)",
        "faults",
        "restarts",
        "quarantines",
        "rec steps",
        "items/s"
    );
    println!("{}", "-".repeat(102));

    if smoke {
        let (instances, depth, rate) = SMOKE;
        let s = measure(instances, depth, rate);
        print_sample(&s);
        let mut failed = false;
        if s.supervised.availability < 0.99 {
            eprintln!(
                "FAIL: supervised availability {:.4} under {rate} fault rate (floor 0.99)",
                s.supervised.availability
            );
            failed = true;
        }
        if s.supervised.availability <= s.unsupervised.availability {
            eprintln!("FAIL: supervision does not beat the unsupervised baseline");
            failed = true;
        }
        // Regeneration check: the committed baseline must contain this
        // exact configuration with the exact deterministic counters the
        // re-run just produced (timing columns excluded by design).
        match std::fs::read_to_string("BENCH_fleet.json") {
            Ok(text) => {
                let baseline: Doc = serde_json::from_str(&text).unwrap();
                match baseline.results.iter().find(|r| {
                    r.instances == instances as u64
                        && r.depth == depth as u64
                        && (r.fault_rate - rate).abs() < 1e-9
                }) {
                    Some(base) => {
                        let same = base.supervised.live_steps == s.supervised.live_steps
                            && base.supervised.missed_steps == s.supervised.missed_steps
                            && base.supervised.instance_faults == s.supervised.instance_faults
                            && base.supervised.restarts == s.supervised.restarts
                            && base.supervised.cold_restarts == s.supervised.cold_restarts
                            && base.supervised.quarantines == s.supervised.quarantines
                            && base.unsupervised.live_steps == s.unsupervised.live_steps
                            && base.unsupervised.dead_instances == s.unsupervised.dead_instances;
                        if !same {
                            eprintln!(
                                "FAIL: BENCH_fleet.json counters diverge from a fresh run — \
                                 regenerate with `cargo run -p perpos-bench --bin exp_fleet --release`"
                            );
                            failed = true;
                        }
                    }
                    None => {
                        eprintln!("FAIL: BENCH_fleet.json misses the smoke configuration");
                        failed = true;
                    }
                }
                // The flagship row the paper-scale claim rests on.
                let flagship = baseline
                    .results
                    .iter()
                    .find(|r| r.instances >= 10_000 && (r.fault_rate - 0.10).abs() < 1e-9);
                match flagship {
                    Some(f) if f.supervised.availability >= 0.99 => {}
                    Some(f) => {
                        eprintln!(
                            "FAIL: committed flagship availability {:.4} below 0.99",
                            f.supervised.availability
                        );
                        failed = true;
                    }
                    None => {
                        eprintln!("FAIL: BENCH_fleet.json misses a >=10k-instance 10% row");
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("FAIL: no committed BENCH_fleet.json baseline to compare ({e})");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("\nsmoke OK: floor held, baseline regenerates");
        return;
    }

    let mut results = Vec::new();
    for &instances in &[2048usize, 10_240] {
        for &depth in &[1usize, 4] {
            for &rate in &[0.0f64, 0.05, 0.10] {
                let s = measure(instances, depth, rate);
                print_sample(&s);
                results.push(s);
            }
        }
    }

    let doc = Doc {
        experiment: "fleet".to_string(),
        cores: cores as u64,
        rounds: ROUNDS,
        step_fail_prob: STEP_FAIL_PROB,
        results,
    };
    std::fs::write(
        "BENCH_fleet.json",
        serde_json::to_string_pretty(&doc).unwrap() + "\n",
    )
    .unwrap();
    println!("\nwrote BENCH_fleet.json");
}
