//! The EnTracked power strategy rebuilt from PerPos graph abstractions
//! (paper §3.3, Fig. 7).

use std::any::Any;

use perpos_core::channel::{ChannelFeature, ChannelHost, DataTree};
use perpos_core::component::MethodSpec;
use perpos_core::feature::{ComponentFeature, FeatureDescriptor, FeatureHost};
use perpos_core::graph::NodeId;
use perpos_core::prelude::*;

/// The Power Strategy Component Feature (Fig. 7): attached to the
/// device-side sensor (our GPS simulator node), it "provides methods for
/// controlling the operation mode of the updating scheme".
///
/// Modes: `"continuous"` (GPS powered) and `"suspended"` (GPS off).
/// Setting the mode reflectively drives the host component's
/// `setEnabled` method. Reflective methods: `setPowerMode(mode: text)`,
/// `getPowerMode() -> text`, `modeChanges() -> int`.
#[derive(Debug, Default)]
pub struct PowerStrategyFeature {
    suspended: bool,
    mode_changes: i64,
}

impl PowerStrategyFeature {
    /// The feature name.
    pub const NAME: &'static str = "PowerStrategy";

    /// Creates the strategy in continuous mode.
    pub fn new() -> Self {
        PowerStrategyFeature::default()
    }
}

impl ComponentFeature for PowerStrategyFeature {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(Self::NAME)
            .method(MethodSpec::new("setPowerMode", "(mode: text) -> null"))
            .method(MethodSpec::new("getPowerMode", "() -> text"))
            .method(MethodSpec::new("modeChanges", "() -> int"))
    }

    fn invoke(
        &mut self,
        method: &str,
        args: &[Value],
        host: &mut FeatureHost<'_>,
    ) -> Result<Value, CoreError> {
        match method {
            "setPowerMode" => {
                let mode = args.first().and_then(Value::as_text).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one text argument".into(),
                    }
                })?;
                let suspend = match mode {
                    "continuous" => false,
                    "suspended" => true,
                    other => {
                        return Err(CoreError::BadArguments {
                            method: method.to_string(),
                            reason: format!(
                                "unknown mode {other:?}; use \"continuous\" or \"suspended\""
                            ),
                        })
                    }
                };
                if suspend != self.suspended {
                    self.suspended = suspend;
                    self.mode_changes += 1;
                    host.invoke_component("setEnabled", &[Value::Bool(!suspend)])?;
                }
                Ok(Value::Null)
            }
            "getPowerMode" => Ok(Value::from(if self.suspended {
                "suspended"
            } else {
                "continuous"
            })),
            "modeChanges" => Ok(Value::Int(self.mode_changes)),
            other => Err(CoreError::NoSuchMethod {
                target: Self::NAME.into(),
                method: other.into(),
            }),
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The EnTracked Channel Feature (Fig. 7): the server-side controller.
///
/// Attach to the **motion channel** (the accelerometer keeps flowing even
/// when the GPS sleeps). On every motion sample it:
///
/// * suspends the GPS (via the [`PowerStrategyFeature`] on the GPS node)
///   while the target is stationary — a stationary target's last
///   reported position stays within any error threshold;
/// * while moving, duty-cycles the GPS so a fresh position arrives about
///   every `threshold_m / max_speed_mps` seconds — the paper's
///   "threshold levels for the maximum distance between two consecutive
///   position updates";
/// * watches the Interpreter's `positionsProduced` counter to know when a
///   fix was delivered and the GPS may sleep again.
///
/// Reflective methods: `setThreshold(meters: float)`,
/// `getThreshold() -> float`, `suspensions() -> int`.
#[derive(Debug)]
pub struct EnTrackedFeature {
    gps_node: NodeId,
    interpreter_node: NodeId,
    threshold_m: f64,
    max_speed_mps: f64,
    last_fix_count: i64,
    last_fix_at: Option<SimTime>,
    gps_running: bool,
    woke_at: Option<SimTime>,
    suspensions: i64,
}

impl EnTrackedFeature {
    /// The feature name.
    pub const NAME: &'static str = "EnTracked";

    /// Creates the controller for a GPS node (with an attached
    /// [`PowerStrategyFeature`]) and the Interpreter node producing the
    /// positions.
    pub fn new(gps_node: NodeId, interpreter_node: NodeId, threshold_m: f64) -> Self {
        EnTrackedFeature {
            gps_node,
            interpreter_node,
            threshold_m,
            max_speed_mps: 2.0,
            last_fix_count: 0,
            last_fix_at: None,
            gps_running: true,
            woke_at: None,
            suspensions: 0,
        }
    }

    /// Sets the assumed maximum target speed (builder style).
    pub fn with_max_speed(mut self, mps: f64) -> Self {
        assert!(mps > 0.0, "speed must be positive");
        self.max_speed_mps = mps;
        self
    }

    fn set_gps(&mut self, host: &mut ChannelHost<'_>, on: bool) -> Result<(), CoreError> {
        if on == self.gps_running {
            return Ok(());
        }
        self.gps_running = on;
        if on {
            self.woke_at = Some(host.now());
        } else {
            self.suspensions += 1;
        }
        let mode = if on { "continuous" } else { "suspended" };
        host.invoke_node_feature(
            self.gps_node,
            PowerStrategyFeature::NAME,
            "setPowerMode",
            &[Value::from(mode)],
        )?;
        Ok(())
    }
}

impl ChannelFeature for EnTrackedFeature {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(Self::NAME)
            .method(MethodSpec::new("setThreshold", "(meters: float) -> null"))
            .method(MethodSpec::new("getThreshold", "() -> float"))
            .method(MethodSpec::new("suspensions", "() -> int"))
    }

    fn apply(&mut self, tree: &DataTree, host: &mut ChannelHost<'_>) -> Result<(), CoreError> {
        // The tree root is a motion sample (we sit on the motion channel).
        let moving = tree
            .root
            .item
            .payload
            .as_map()
            .and_then(|m| m.get("moving"))
            .and_then(Value::as_bool)
            .unwrap_or(true);
        let now = host.now();

        // Did the interpreter deliver a new fix since we last looked?
        let fixes = host
            .invoke_node(self.interpreter_node, "positionsProduced", &[])?
            .as_i64()
            .unwrap_or(0);
        if fixes > self.last_fix_count {
            self.last_fix_count = fixes;
            self.last_fix_at = Some(now);
        }

        if !moving {
            // Stationary: the last reported position cannot drift beyond
            // the threshold — sleep (but get at least one fix first).
            if self.last_fix_at.is_some() {
                self.set_gps(host, false)?;
            }
            return Ok(());
        }

        // Moving: a fresh fix is due when the target may have travelled
        // the threshold since the last one.
        let due = match self.last_fix_at {
            None => true,
            Some(t) => now.since(t).as_secs_f64() >= self.threshold_m / self.max_speed_mps,
        };
        if due {
            // Wake the receiver and keep it on until a fix arrives (the
            // warm-start acquisition shows up as extra on-time — the real
            // cost EnTracked trades against the threshold).
            self.set_gps(host, true)?;
        } else if self
            .last_fix_at
            .is_some_and(|t| self.woke_at.is_none_or(|w| t >= w))
        {
            // Fix obtained for this cycle: sleep until the next one is due.
            self.set_gps(host, false)?;
        }
        Ok(())
    }

    fn invoke(&mut self, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "setThreshold" => {
                let m = args.first().and_then(Value::as_f64).ok_or_else(|| {
                    CoreError::BadArguments {
                        method: method.to_string(),
                        reason: "expected one float".into(),
                    }
                })?;
                if !(m.is_finite() && m > 0.0) {
                    return Err(CoreError::BadArguments {
                        method: method.to_string(),
                        reason: format!("threshold must be positive, got {m}"),
                    });
                }
                self.threshold_m = m;
                Ok(Value::Null)
            }
            "getThreshold" => Ok(Value::Float(self.threshold_m)),
            "suspensions" => Ok(Value::Int(self.suspensions)),
            other => Err(CoreError::NoSuchMethod {
                target: Self::NAME.into(),
                method: other.into(),
            }),
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_core::positioning::Criteria;
    use perpos_geo::{LocalFrame, Point2, Wgs84};
    use perpos_sensors::{
        GpsEnvironment, GpsSimulator, Interpreter, MotionSensor, Parser, Trajectory,
    };

    fn frame() -> LocalFrame {
        LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap())
    }

    /// Builds the Fig. 7 graph: GPS -> Parser -> Interpreter -> app and a
    /// motion sensor -> app, with PowerStrategy on the GPS and EnTracked
    /// on the motion channel. Returns (mw, gps_node).
    fn entracked_setup(
        trajectory: Trajectory,
        threshold_m: f64,
    ) -> (Middleware, perpos_core::graph::NodeId) {
        let f = frame();
        let mut mw = Middleware::new();
        let gps = mw.add_component(
            GpsSimulator::new("GPS", f, trajectory.clone())
                .with_seed(21)
                .with_environment(GpsEnvironment {
                    dropout_prob: 0.0,
                    ..GpsEnvironment::open_sky()
                })
                .with_acquisition_delay(SimDuration::from_secs(2)),
        );
        let parser = mw.add_component(Parser::new());
        let interpreter = mw.add_component(Interpreter::new());
        let motion = mw.add_component(MotionSensor::new("Motion", trajectory).with_flip_prob(0.0));
        let app = mw.application_sink();
        mw.connect(gps, parser, 0).unwrap();
        mw.connect(parser, interpreter, 0).unwrap();
        mw.connect(interpreter, app, 0).unwrap();
        let target = mw.add_target("device");
        let target_node = target.node();
        mw.connect(motion, target_node, 0).unwrap();
        mw.attach_feature(gps, PowerStrategyFeature::new()).unwrap();
        let motion_channel = mw.channel_into(target_node, 0).unwrap();
        mw.attach_channel_feature(
            motion_channel,
            EnTrackedFeature::new(gps, interpreter, threshold_m),
        )
        .unwrap();
        (mw, gps)
    }

    #[test]
    fn power_strategy_toggles_host() {
        let f = frame();
        let mut mw = Middleware::new();
        let gps = mw.add_component(GpsSimulator::new(
            "GPS",
            f,
            Trajectory::stationary(Point2::new(0.0, 0.0)),
        ));
        mw.attach_feature(gps, PowerStrategyFeature::new()).unwrap();
        assert_eq!(mw.invoke(gps, "isEnabled", &[]).unwrap(), Value::Bool(true));
        // Method dispatch falls through the component to the feature.
        mw.invoke(gps, "setPowerMode", &[Value::from("suspended")])
            .unwrap();
        assert_eq!(
            mw.invoke(gps, "isEnabled", &[]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            mw.invoke_feature(gps, PowerStrategyFeature::NAME, "getPowerMode", &[])
                .unwrap(),
            Value::from("suspended")
        );
        mw.invoke(gps, "setPowerMode", &[Value::from("continuous")])
            .unwrap();
        assert_eq!(mw.invoke(gps, "isEnabled", &[]).unwrap(), Value::Bool(true));
        assert_eq!(
            mw.invoke_feature(gps, PowerStrategyFeature::NAME, "modeChanges", &[])
                .unwrap(),
            Value::Int(2)
        );
        assert!(mw
            .invoke(gps, "setPowerMode", &[Value::from("warp")])
            .is_err());
    }

    #[test]
    fn stationary_target_suspends_gps() {
        let (mut mw, gps) = entracked_setup(Trajectory::stationary(Point2::new(5.0, 5.0)), 50.0);
        mw.run_for(SimDuration::from_secs(60), SimDuration::from_secs(1))
            .unwrap();
        // After the first fix the GPS must be off.
        assert_eq!(
            mw.invoke(gps, "isEnabled", &[]).unwrap(),
            Value::Bool(false),
            "stationary target must not keep the GPS powered"
        );
        let p = mw
            .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
            .unwrap();
        assert!(p.last_position().is_some(), "one fix was reported first");
    }

    #[test]
    fn moving_target_duty_cycles() {
        let walk = Trajectory::new(vec![Point2::new(0.0, 0.0), Point2::new(400.0, 0.0)], 1.4);
        let (mut mw, gps) = entracked_setup(walk, 50.0);
        let mut on_samples = 0u32;
        let mut total = 0u32;
        for _ in 0..240 {
            mw.step().unwrap();
            if mw.invoke(gps, "isEnabled", &[]).unwrap() == Value::Bool(true) {
                on_samples += 1;
            }
            total += 1;
            mw.advance_clock(SimDuration::from_secs(1));
        }
        // The GPS must be duty-cycled: on some of the time, but well
        // below always-on.
        assert!(on_samples > 0, "GPS must wake up while moving");
        assert!(
            on_samples < total * 3 / 4,
            "GPS on {on_samples}/{total} samples — no duty cycling happened"
        );
        // Positions keep flowing at a bounded interval.
        let p = mw
            .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
            .unwrap();
        assert!(p.history().len() >= 3, "periodic reports expected");
    }

    #[test]
    fn suspension_counter_tracks_sleep_cycles() {
        let (mut mw, _gps) = entracked_setup(Trajectory::stationary(Point2::new(1.0, 1.0)), 50.0);
        mw.run_for(SimDuration::from_secs(90), SimDuration::from_secs(1))
            .unwrap();
        let channels = mw.channels();
        let motion_channel = channels
            .iter()
            .find(|c| c.features.contains(&EnTrackedFeature::NAME.to_string()))
            .unwrap()
            .id;
        let suspensions = mw
            .invoke_channel_feature(motion_channel, EnTrackedFeature::NAME, "suspensions", &[])
            .unwrap()
            .as_i64()
            .unwrap();
        assert!(suspensions >= 1, "stationary target suspends at least once");
    }

    #[test]
    fn higher_max_speed_wakes_more_often() {
        // With a larger assumed max speed the same threshold forces more
        // frequent fixes: threshold/speed shrinks.
        let walk = Trajectory::new(vec![Point2::new(0.0, 0.0), Point2::new(600.0, 0.0)], 1.4);
        let count_on = |max_speed: f64| {
            let f = frame();
            let mut mw = Middleware::new();
            let gps = mw.add_component(
                GpsSimulator::new("GPS", f, walk.clone())
                    .with_seed(77)
                    .with_environment(GpsEnvironment {
                        dropout_prob: 0.0,
                        ..GpsEnvironment::open_sky()
                    })
                    .with_acquisition_delay(SimDuration::from_secs(1)),
            );
            let parser = mw.add_component(Parser::new());
            let interp = mw.add_component(Interpreter::new());
            let motion =
                mw.add_component(MotionSensor::new("Motion", walk.clone()).with_flip_prob(0.0));
            let app = mw.application_sink();
            mw.connect(gps, parser, 0).unwrap();
            mw.connect(parser, interp, 0).unwrap();
            mw.connect(interp, app, 0).unwrap();
            let target = mw.add_target("d");
            mw.connect(motion, target.node(), 0).unwrap();
            mw.attach_feature(gps, PowerStrategyFeature::new()).unwrap();
            let ch = mw.channel_into(target.node(), 0).unwrap();
            mw.attach_channel_feature(
                ch,
                EnTrackedFeature::new(gps, interp, 60.0).with_max_speed(max_speed),
            )
            .unwrap();
            let mut on = 0u32;
            for _ in 0..240 {
                mw.step().unwrap();
                if mw.invoke(gps, "isEnabled", &[]).unwrap() == Value::Bool(true) {
                    on += 1;
                }
                mw.advance_clock(SimDuration::from_secs(1));
            }
            on
        };
        let slow = count_on(1.0);
        let fast = count_on(6.0);
        assert!(
            fast > slow,
            "assuming a faster target ({fast} on-samples) must wake the GPS more than a slow one ({slow})"
        );
    }

    #[test]
    fn power_strategy_counts_changes_only() {
        let f = frame();
        let mut mw = Middleware::new();
        let gps = mw.add_component(GpsSimulator::new(
            "GPS",
            f,
            Trajectory::stationary(Point2::new(0.0, 0.0)),
        ));
        mw.attach_feature(gps, PowerStrategyFeature::new()).unwrap();
        // Setting the current mode repeatedly does not count as a change.
        for _ in 0..3 {
            mw.invoke(gps, "setPowerMode", &[Value::from("continuous")])
                .unwrap();
        }
        assert_eq!(
            mw.invoke_feature(gps, PowerStrategyFeature::NAME, "modeChanges", &[])
                .unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn entracked_invoke_surface() {
        let (mut mw, _gps) = entracked_setup(Trajectory::stationary(Point2::new(0.0, 0.0)), 25.0);
        let channels = mw.channels();
        let motion_channel = channels
            .iter()
            .find(|c| c.features.contains(&EnTrackedFeature::NAME.to_string()))
            .unwrap()
            .id;
        assert_eq!(
            mw.invoke_channel_feature(motion_channel, EnTrackedFeature::NAME, "getThreshold", &[])
                .unwrap(),
            Value::Float(25.0)
        );
        mw.invoke_channel_feature(
            motion_channel,
            EnTrackedFeature::NAME,
            "setThreshold",
            &[Value::Float(100.0)],
        )
        .unwrap();
        assert_eq!(
            mw.invoke_channel_feature(motion_channel, EnTrackedFeature::NAME, "getThreshold", &[])
                .unwrap(),
            Value::Float(100.0)
        );
        assert!(mw
            .invoke_channel_feature(
                motion_channel,
                EnTrackedFeature::NAME,
                "setThreshold",
                &[Value::Float(-5.0)]
            )
            .is_err());
    }
}
