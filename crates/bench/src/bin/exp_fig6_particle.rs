//! Experiment F6 — reproduces the paper's Fig. 6: the particle filter
//! refining an indoor trace, integrated via the HDOP Component Feature
//! and Likelihood Channel Feature (Fig. 5). Reports error statistics for
//! raw GPS, a Kalman baseline, and the particle filter with and without
//! building constraints, plus a particle-count sweep.
//!
//! Run with: `cargo run -p perpos-bench --bin exp_fig6_particle --release`

#![allow(clippy::unwrap_used)]
use std::sync::Arc;

use perpos_bench::{frame, position_errors, ErrorStats};
use perpos_core::prelude::*;
use perpos_fusion::{KalmanFilter, LikelihoodFeature, ParticleFilter};
use perpos_model::demo_building;
use perpos_sensors::{
    GpsEnvironment, GpsSimulator, HdopFeature, Interpreter, Parser, TraceRecorderFeature,
    Trajectory,
};

#[derive(Clone, Copy)]
enum Refiner {
    None,
    Kalman,
    Particle { n: usize, constrained: bool },
}

fn corridor_walk() -> Trajectory {
    Trajectory::new(
        vec![
            perpos_geo::Point2::new(1.0, 5.25),
            perpos_geo::Point2::new(12.5, 5.25),
            perpos_geo::Point2::new(12.5, 8.0),
            perpos_geo::Point2::new(18.0, 8.0),
        ],
        1.0,
    )
}

fn run(refiner: Refiner, seed: u64) -> (ErrorStats, ErrorStats) {
    let building = Arc::new(demo_building());
    let walk = corridor_walk();
    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame(), walk.clone())
            .with_seed(seed)
            .with_environment(GpsEnvironment::urban()),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    mw.connect(gps, parser, 0).unwrap();
    mw.connect(parser, interpreter, 0).unwrap();
    mw.attach_feature(parser, HdopFeature::new()).unwrap();
    let recorder = TraceRecorderFeature::new();
    let raw = recorder.handle();
    mw.attach_feature(interpreter, recorder).unwrap();
    let app = mw.application_sink();

    let refined_source = match refiner {
        Refiner::None => {
            mw.connect_to_sink(interpreter, app).unwrap();
            "gps"
        }
        Refiner::Kalman => {
            let kf = mw.add_component(KalmanFilter::new("Kalman", frame()));
            mw.connect(interpreter, kf, 0).unwrap();
            mw.connect_to_sink(kf, app).unwrap();
            "kalman"
        }
        Refiner::Particle { n, constrained } => {
            let likelihood = LikelihoodFeature::new();
            let handle = likelihood.handle();
            let mut pf = ParticleFilter::new("PF", frame(), 1)
                .with_seed(seed + 1000)
                .with_particles(n)
                .with_likelihood(handle);
            if constrained {
                pf = pf.with_building(Arc::clone(&building), 0);
            }
            let pf = mw.add_component(pf);
            mw.connect(interpreter, pf, 0).unwrap();
            mw.connect_to_sink(pf, app).unwrap();
            let channel = mw.channel_into(pf, 0).expect("gps channel");
            mw.attach_channel_feature(channel, likelihood).unwrap();
            "fusion"
        }
    };

    let provider = mw
        .location_provider(Criteria::new().source(refined_source))
        .unwrap();
    mw.run_for(SimDuration::from_secs(40), SimDuration::from_secs(1))
        .unwrap();

    let raw_stats = ErrorStats::from(position_errors(&raw.trace().items, &walk));
    let refined_stats = ErrorStats::from(position_errors(&provider.history(), &walk));
    (raw_stats, refined_stats)
}

fn averaged(refiner: Refiner, seeds: &[u64]) -> (ErrorStats, ErrorStats) {
    // Report the single-seed stats for the median seed by mean error to
    // damp run-to-run noise while keeping interpretable percentiles.
    let mut runs: Vec<(ErrorStats, ErrorStats)> = seeds.iter().map(|s| run(refiner, *s)).collect();
    runs.sort_by(|a, b| a.1.mean.total_cmp(&b.1.mean));
    runs[runs.len() / 2]
}

fn main() {
    let seeds = [3, 11, 23, 42, 57];
    println!("=== Fig. 6: particle-filter trace refinement (urban GPS, indoor walk) ===\n");
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8}",
        "estimator", "mean", "median", "p95", "rmse"
    );
    println!("{}", "-".repeat(64));

    let (raw, _) = averaged(Refiner::None, &seeds);
    println!(
        "{:<28} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
        "raw GPS", raw.mean, raw.median, raw.p95, raw.rmse
    );
    let (_, kalman) = averaged(Refiner::Kalman, &seeds);
    println!(
        "{:<28} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
        "Kalman (CV)", kalman.mean, kalman.median, kalman.p95, kalman.rmse
    );
    let (_, free) = averaged(
        Refiner::Particle {
            n: 800,
            constrained: false,
        },
        &seeds,
    );
    println!(
        "{:<28} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
        "particle filter (800)", free.mean, free.median, free.p95, free.rmse
    );
    let (_, constrained) = averaged(
        Refiner::Particle {
            n: 800,
            constrained: true,
        },
        &seeds,
    );
    println!(
        "{:<28} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
        "particle filter (800, walls)",
        constrained.mean,
        constrained.median,
        constrained.p95,
        constrained.rmse
    );

    println!("\nparticle count sweep (with wall constraints):");
    println!("{:<12} {:>8} {:>8}", "particles", "mean", "p95");
    for n in [50, 100, 200, 400, 800, 1600] {
        let (_, s) = averaged(
            Refiner::Particle {
                n,
                constrained: true,
            },
            &seeds,
        );
        println!("{:<12} {:>8.2} {:>8.2}", n, s.mean, s.p95);
    }
    println!("\n(expected shape: PF < Kalman < raw on every statistic; more particles help, saturating.\n Wall constraints are roughly neutral on this in-corridor walk but bound teleport-style\n outliers — see fusion::particle::tests::building_constraint_resists_wall_jumps)");
}
