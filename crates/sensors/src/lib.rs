//! Simulated sensors and standard pipeline components for PerPos.
//!
//! The paper evaluates PerPos with a phone's GPS receiver, a WiFi
//! signal-strength infrastructure and recorded traces replayed through an
//! emulator component (§3.2). None of that hardware is available to a
//! reproduction, so this crate builds behavioural equivalents (see
//! `DESIGN.md` for the substitution argument):
//!
//! * [`GpsSimulator`] — emits raw NMEA sentences for a target moving
//!   along a [`Trajectory`], with satellite visibility, HDOP, noise and
//!   dropouts governed by a [`GpsEnvironment`]; supports power control
//!   (on/off, acquisition delay) for the EnTracked experiments,
//! * [`WifiScanner`] + [`WifiPositioning`] — a log-distance path-loss
//!   radio model over a building's access points, an offline
//!   [`RadioMap`], and online k-nearest-neighbour positioning,
//! * [`MotionSensor`] — an accelerometer-like movement detector,
//! * the Fig. 1 pipeline components: [`Parser`], [`Interpreter`],
//!   [`Resolver`], [`SensorWrapper`],
//! * the §3.1/§3.2 features: [`HdopFeature`], [`NumberOfSatellitesFeature`]
//!   and the [`SatelliteFilter`] component,
//! * [`EmulatorSource`] / [`TraceRecorderFeature`] — record and replay
//!   `DataItem` traces, "taking the place of the sensors" exactly as the
//!   paper's emulator does,
//! * [`FaultInjector`] — a deterministic, seeded fault-injection feature
//!   for exercising the core's supervision policies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod emulator;
mod fault;
mod gps;
mod motion;
mod pipeline;
mod trajectory;
mod wifi;

pub use emulator::{EmulatorSource, Trace, TraceError, TraceRecorderFeature};
pub use fault::{FaultCounts, FaultInjector};
pub use gps::{GpsEnvironment, GpsSimulator};
pub use motion::MotionSensor;
pub use pipeline::{
    HdopFeature, Interpreter, NumberOfSatellitesFeature, Parser, Resolver, SatelliteFilter,
    SensorWrapper,
};
pub use trajectory::Trajectory;
pub use wifi::{AccessPoint, RadioMap, WifiEnvironment, WifiPositioning, WifiScanner};
