//! Golden-file tests: each known-bad GraphConfig fixture fires exactly
//! its diagnostic code, and the known-good configurations lint clean.

#![allow(clippy::unwrap_used)]

use perpos_analysis::{analyze_config, Code, Report, Severity, TypeCatalog};
use perpos_core::assembly::GraphConfig;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn catalog() -> TypeCatalog {
    serde_json::from_str(&fixture("catalog.json")).unwrap()
}

fn lint(name: &str) -> Report {
    let config: GraphConfig = serde_json::from_str(&fixture(name)).unwrap();
    analyze_config(&config, &catalog())
}

/// Asserts `code` fires exactly once, carries the expected severity and a
/// fix-it hint, and that no *other* code fires at all.
fn assert_only(report: &Report, code: Code, severity: Severity) {
    let hits = report.with_code(code);
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one {code}, got:\n{}",
        report.render_human()
    );
    assert_eq!(hits[0].severity, severity);
    assert!(hits[0].hint.is_some(), "{code} should carry a fix-it hint");
    assert!(!hits[0].path.is_empty(), "{code} should carry a path");
    assert_eq!(
        report.diagnostics.len(),
        1,
        "fixture should trigger only {code}, got:\n{}",
        report.render_human()
    );
}

#[test]
fn p001_kind_mismatch_fires_exactly_once() {
    let report = lint("p001_kind_mismatch.json");
    assert_only(&report, Code::P001, Severity::Error);
    let d = report.with_code(Code::P001)[0];
    assert!(d.message.contains("raw.string"), "{}", d.message);
    assert!(d.message.contains("nmea.sentence"), "{}", d.message);
}

#[test]
fn p002_dangling_input_fires_exactly_once() {
    let report = lint("p002_dangling_input.json");
    assert_only(&report, Code::P002, Severity::Error);
    assert!(report.with_code(Code::P002)[0].path[0].contains("parse0"));
}

#[test]
fn p003_missing_feature_fires_exactly_once() {
    let report = lint("p003_missing_feature.json");
    assert_only(&report, Code::P003, Severity::Error);
    assert!(report.with_code(Code::P003)[0].message.contains("Hdop"));
}

#[test]
fn p004_dead_component_fires_exactly_once() {
    let report = lint("p004_dead_component.json");
    assert_only(&report, Code::P004, Severity::Warning);
    assert_eq!(
        report.with_code(Code::P004)[0].path,
        vec!["gps_spare".to_string()]
    );
    // Warnings alone do not fail a gate.
    assert!(!report.has_errors());
}

#[test]
fn p005_cycle_fires_exactly_once() {
    let report = lint("p005_cycle.json");
    assert_only(&report, Code::P005, Severity::Error);
    let d = report.with_code(Code::P005)[0];
    assert!(d.path.contains(&"echo1".to_string()) && d.path.contains(&"echo2".to_string()));
}

#[test]
fn p007_bad_reference_fires_exactly_once() {
    let report = lint("p007_bad_reference.json");
    assert_only(&report, Code::P007, Severity::Error);
    assert!(report.with_code(Code::P007)[0].message.contains("ghost"));
}

#[test]
fn p009_no_fault_policy_fires_exactly_once() {
    // Identical to pipeline_ok.json except the source declares no
    // fault_policy: the only finding is the P009 warning.
    let report = lint("p009_no_fault_policy.json");
    assert_only(&report, Code::P009, Severity::Warning);
    let d = report.with_code(Code::P009)[0];
    assert_eq!(d.path, vec!["gps0".to_string()]);
    assert!(d.hint.as_deref().unwrap_or("").contains("drop_item"));
    // A warning alone does not fail a gate.
    assert!(!report.has_errors());
}

#[test]
fn p017_wave_interference_fires_exactly_once() {
    // Two parallel parser branches at the same topological level, both
    // declaring writes on "bias-table", under the level-parallel
    // executor: the only finding is the P017 error naming the wave, the
    // resource and both components.
    let report = lint("p017_wave_interference.json");
    assert_only(&report, Code::P017, Severity::Error);
    let d = report.with_code(Code::P017)[0];
    assert!(d.message.contains("bias-table"), "{}", d.message);
    assert!(d.message.contains("wave 1"), "{}", d.message);
    assert_eq!(d.path, vec!["parse0".to_string(), "parse1".to_string()]);
}

#[test]
fn p017_is_silent_under_the_sequential_executor() {
    // The identical interference, sequentially executed, is harmless:
    // dropping the executor request must lint completely clean.
    let mut config: GraphConfig =
        serde_json::from_str(&fixture("p017_wave_interference.json")).unwrap();
    config.executor = None;
    let report = analyze_config(&config, &catalog());
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn p018_stateful_without_snapshot_fires_exactly_once() {
    // pipeline_ok plus a fleet block, full containment coverage, and a
    // decoder declared stateful with no snapshot capability: the only
    // finding is the P018 error.
    let report = lint("p018_fleet_unsnapshotable.json");
    assert_only(&report, Code::P018, Severity::Error);
    let d = report.with_code(Code::P018)[0];
    assert_eq!(d.path, vec!["decode0".to_string()]);
    assert!(d.message.contains("snapshot"), "{}", d.message);
    assert!(
        d.hint.as_deref().unwrap_or("").contains("snapshot_state"),
        "{:?}",
        d.hint
    );
}

#[test]
fn p018_is_silent_without_a_fleet_block() {
    // Standalone, nothing checkpoints, nothing can silently reset.
    let mut config: GraphConfig =
        serde_json::from_str(&fixture("p018_fleet_unsnapshotable.json")).unwrap();
    config.fleet = None;
    let report = analyze_config(&config, &catalog());
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn p019_nondeterministic_effects_fire_exactly_once() {
    // A wall-clock-reading decoder inside a fleet deployment: replay
    // determinism is assumed but not deliverable, warned as P019.
    let report = lint("p019_nondeterministic_fleet.json");
    assert_only(&report, Code::P019, Severity::Warning);
    let d = report.with_code(Code::P019)[0];
    assert_eq!(d.path, vec!["decode0".to_string()]);
    assert!(d.message.contains("wall-clock"), "{}", d.message);
    // A warning alone does not fail a gate.
    assert!(!report.has_errors());
}

#[test]
fn p016_fleet_without_containment_fires_exactly_once() {
    // pipeline_ok.json plus a fleet block, with every component except
    // the parser carrying an explicit policy: the only finding is the
    // P016 warning naming the uncovered component.
    let report = lint("p016_fleet_no_containment.json");
    assert_only(&report, Code::P016, Severity::Warning);
    let d = report.with_code(Code::P016)[0];
    assert_eq!(d.path, vec!["parse0".to_string()]);
    assert!(d.message.contains("10240"), "{}", d.message);
    assert!(d.hint.as_deref().unwrap_or("").contains("fault_policy"));
    assert!(!report.has_errors());
}

#[test]
fn p010_frame_conflict_fires_exactly_once() {
    // A local-frame beacon fused with WGS-84 positions without a
    // transform in between.
    let report = lint("p010_frame_conflict.json");
    assert_only(&report, Code::P010, Severity::Error);
    let d = report.with_code(Code::P010)[0];
    assert!(
        d.message.contains("wgs84") && d.message.contains("local"),
        "{}",
        d.message
    );
    assert_eq!(d.path, vec!["fuse0".to_string()]);
}

#[test]
fn p011_unreachable_accuracy_fires_exactly_once() {
    // predictor claims 0.5 m but the best upstream source bound is 2 m.
    let report = lint("p011_unreachable_accuracy.json");
    assert_only(&report, Code::P011, Severity::Error);
    let d = report.with_code(Code::P011)[0];
    assert_eq!(d.path, vec!["predict0".to_string()]);
}

#[test]
fn p012_raw_to_sink_fires_exactly_once() {
    // Raw NMEA strings (identifiable sensor data) wired straight into
    // the application.
    let report = lint("p012_raw_to_sink.json");
    assert_only(&report, Code::P012, Severity::Error);
    let d = report.with_code(Code::P012)[0];
    assert!(d.message.contains("raw.string"), "{}", d.message);
    assert!(d.message.contains("gps0"), "{}", d.message);
}

#[test]
fn p013_rate_overrun_fires_with_buffer_prediction() {
    // 1 Hz inflow into a throttle declaring 0.5 items/s capacity: the
    // rate overload (P013) and its channel-buffer consequence (P014) are
    // the only findings.
    let report = lint("p013_rate_overrun.json");
    let p013 = report.with_code(Code::P013);
    assert_eq!(p013.len(), 1, "{}", report.render_human());
    assert_eq!(p013[0].severity, Severity::Warning);
    assert!(p013[0].hint.is_some());
    assert_eq!(p013[0].path, vec!["slow0".to_string()]);
    let p014 = report.with_code(Code::P014);
    assert_eq!(p014.len(), 1, "{}", report.render_human());
    assert_eq!(p014[0].severity, Severity::Warning);
    assert_eq!(p014[0].path, vec!["slow0".to_string()]);
    // 0.5 items/s surplus into a 4096-entry buffer: ~8192 s to eviction.
    assert!(p014[0].message.contains("8192"), "{}", p014[0].message);
    assert!(
        p014[0].hint.as_deref().unwrap_or("").contains("P013"),
        "{:?}",
        p014[0].hint
    );
    assert_eq!(report.diagnostics.len(), 2, "{}", report.render_human());
    // Warnings alone do not fail a gate.
    assert!(!report.has_errors());
}

#[test]
fn facts_and_diagnostics_share_one_canonical_order() {
    // Regression for the shared `canonical_sort` helper: both call
    // sites — the diagnostics renderer and the facts serializer — must
    // be insensitive to declaration order, so the same graph with its
    // components and connections reversed renders byte-identically.
    use perpos_analysis::{facts_json, infer_facts, FlowGraph};
    let catalog = catalog();

    let config: GraphConfig = serde_json::from_str(&fixture("dataflow_ok.json")).unwrap();
    let mut reversed = config.clone();
    reversed.components.reverse();
    reversed.connections.reverse();
    let flow = FlowGraph::from_config(&config, &catalog);
    let rflow = FlowGraph::from_config(&reversed, &catalog);
    assert_eq!(
        facts_json(&flow, &infer_facts(&flow)),
        facts_json(&rflow, &infer_facts(&rflow)),
        "facts serialization must not depend on declaration order"
    );

    // A fixture with two findings: the canonical order survives the
    // pass emitting them in a different sequence.
    let noisy: GraphConfig = serde_json::from_str(&fixture("p013_rate_overrun.json")).unwrap();
    let mut noisy_reversed = noisy.clone();
    noisy_reversed.components.reverse();
    noisy_reversed.connections.reverse();
    let a = analyze_config(&noisy, &catalog);
    let b = analyze_config(&noisy_reversed, &catalog);
    assert_eq!(a.diagnostics.len(), 2);
    assert_eq!(
        a.render_json(),
        b.render_json(),
        "diagnostic rendering must not depend on declaration order"
    );
}

#[test]
fn dataflow_heavy_pipeline_lints_clean() {
    // Exercises every dataflow domain without tripping it: a frame
    // transform before the merge (P010), a reachable accuracy claim
    // (P011), an anonymizer in front of the sink (P012) and a throttle
    // with enough declared capacity (P013) — all via instance-level
    // TransferSpec overrides of the catalog defaults.
    let report = lint("dataflow_ok.json");
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn known_good_pipeline_lints_clean() {
    let report = lint("pipeline_ok.json");
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn repo_example_configs_lint_clean() {
    // Every shipped example configuration must stay clean under the full
    // pass list, including the dataflow analyses — CI runs perpos-lint
    // over the same set.
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let catalog: TypeCatalog = serde_json::from_str(
        &std::fs::read_to_string(format!("{root}/examples/configs/catalog.json")).unwrap(),
    )
    .unwrap();
    let mut checked = 0;
    for entry in std::fs::read_dir(format!("{root}/examples/configs")).unwrap() {
        let path = entry.unwrap().path();
        if path.file_name().is_some_and(|n| n == "catalog.json")
            || path.extension().is_none_or(|e| e != "json")
        {
            continue;
        }
        let config: GraphConfig =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let report = analyze_config(&config, &catalog);
        assert!(
            report.is_clean(),
            "{}:\n{}",
            path.display(),
            report.render_human()
        );
        checked += 1;
    }
    assert!(checked >= 2, "expected at least two example configs");
}
