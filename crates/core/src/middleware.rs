//! The [`Middleware`] facade: one object owning the processing graph, the
//! channel layer, the positioning layer and the simulation clock, and the
//! execution engine that moves data from sensors to applications.
//!
//! Execution model: the engine is deterministic and synchronous. Each
//! [`Middleware::step`] ticks every source component; emitted items run
//! through the producing node's Component Features (produce direction),
//! are recorded by the channel layer (completing a channel output fires
//! the attached Channel Features), and are then delivered to downstream
//! ports whose declared kinds accept them, where the consuming node's
//! features (consume direction) and the component itself process them.
//! Graph manipulation between steps keeps the channel views causally
//! connected — they are recomputed from the live graph on every change
//! (paper §2: "maintaining a causal connection between the positioning
//! system and the tree").

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use crate::channel::{ChannelFeature, ChannelId, ChannelInfo, ChannelLayer};
use crate::component::{Component, ComponentCtx, MethodSpec};
use crate::data::{DataItem, Value};
use crate::distribution::Deployment;
use crate::feature::{ComponentFeature, FeatureAction, FeatureHost};
use crate::graph::{NodeId, NodeInfo, ProcessingGraph};
use crate::positioning::{ApplicationSink, Criteria, LocationProvider, SinkShared};
use crate::{CoreError, SimClock, SimDuration, SimTime};

/// A named tracked target: an application end-point of its own, to which
/// several sensor pipelines may be connected (paper §2.3: "definition of
/// tracked targets, which may have several sensors attached to them").
#[derive(Clone)]
pub struct Target {
    name: String,
    node: NodeId,
    shared: Arc<SinkShared>,
}

impl Target {
    /// The target's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sink node representing this target in the graph.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// A location provider filtered by `criteria` over this target's data.
    pub fn provider(&self, criteria: Criteria) -> LocationProvider {
        LocationProvider::new(Arc::clone(&self.shared), criteria)
    }
}

impl fmt::Debug for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Target")
            .field("name", &self.name)
            .field("node", &self.node)
            .finish()
    }
}

/// The PerPos middleware instance.
///
/// See the crate-level documentation for an end-to-end example.
pub struct Middleware {
    graph: ProcessingGraph,
    channels: ChannelLayer,
    clock: SimClock,
    app_sink: NodeId,
    app_shared: Arc<SinkShared>,
    targets: Vec<Target>,
    steps_run: u64,
    /// Items emitted by features during out-of-band reflective calls,
    /// routed at the start of the next step.
    pending: Vec<(NodeId, DataItem)>,
    deployment: Option<Deployment>,
}

impl fmt::Debug for Middleware {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Middleware")
            .field("graph", &self.graph)
            .field("steps_run", &self.steps_run)
            .finish()
    }
}

impl Default for Middleware {
    fn default() -> Self {
        Middleware::new()
    }
}

impl Middleware {
    /// Creates a middleware instance with one application sink.
    pub fn new() -> Self {
        let mut graph = ProcessingGraph::new();
        let (sink, shared) = ApplicationSink::new("application");
        let app_sink = graph.add(Box::new(sink));
        let mut channels = ChannelLayer::default();
        channels.recompute(&graph);
        Middleware {
            graph,
            channels,
            clock: SimClock::new(),
            app_sink,
            app_shared: shared,
            targets: Vec::new(),
            steps_run: 0,
            pending: Vec::new(),
            deployment: None,
        }
    }

    // ------------------------------------------------------------------
    // Clock
    // ------------------------------------------------------------------

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Number of engine steps executed so far.
    pub fn steps_run(&self) -> u64 {
        self.steps_run
    }

    /// Advances the simulation clock by `d` without running a step —
    /// for experiment loops that interleave stepping with measurements.
    pub fn advance_clock(&mut self, d: SimDuration) -> SimTime {
        self.clock.advance(d)
    }

    // ------------------------------------------------------------------
    // Process Structure Layer (PSL) — paper §2.1
    // ------------------------------------------------------------------

    /// Adds a component to the processing graph.
    pub fn add_component(&mut self, component: impl Component + 'static) -> NodeId {
        let id = self.graph.add(Box::new(component));
        self.channels.recompute(&self.graph);
        id
    }

    /// Adds an already boxed component.
    pub fn add_boxed_component(&mut self, component: Box<dyn Component>) -> NodeId {
        let id = self.graph.add(component);
        self.channels.recompute(&self.graph);
        id
    }

    /// Removes a component, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] for unknown nodes.
    pub fn remove_component(&mut self, id: NodeId) -> Result<Box<dyn Component>, CoreError> {
        let c = self.graph.remove(id)?;
        self.channels.recompute(&self.graph);
        Ok(c)
    }

    /// Connects `from`'s output to `(to, port)` with full validation (see
    /// [`ProcessingGraph::connect`]).
    ///
    /// # Errors
    ///
    /// Propagates the graph's validation errors.
    pub fn connect(&mut self, from: NodeId, to: NodeId, port: usize) -> Result<(), CoreError> {
        self.graph.connect(from, to, port)?;
        self.channels.recompute(&self.graph);
        Ok(())
    }

    /// Disconnects input `port` of `to`.
    ///
    /// # Errors
    ///
    /// Propagates the graph's validation errors.
    pub fn disconnect(&mut self, to: NodeId, port: usize) -> Result<Option<NodeId>, CoreError> {
        let r = self.graph.disconnect(to, port)?;
        self.channels.recompute(&self.graph);
        Ok(r)
    }

    /// Connects `from` to the first free input port of `sink` (an
    /// application sink or target node). Returns the chosen port.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PortOccupied`] when every port is taken, or
    /// the usual connection validation errors.
    pub fn connect_to_sink(&mut self, from: NodeId, sink: NodeId) -> Result<usize, CoreError> {
        let info = self.graph.info(sink)?;
        let port = info
            .inputs
            .iter()
            .position(|p| p.is_none())
            .ok_or(CoreError::PortOccupied {
                node: sink,
                port: info.inputs.len(),
            })?;
        self.connect(from, sink, port)?;
        Ok(port)
    }

    /// Inserts `new` into the existing edge `from -> (to, port)` (the
    /// §3.1 "insert a filter after the Parser" operation).
    ///
    /// # Errors
    ///
    /// Propagates the graph's validation errors.
    pub fn insert_between(
        &mut self,
        new: NodeId,
        from: NodeId,
        to: NodeId,
        port: usize,
    ) -> Result<(), CoreError> {
        self.graph.insert_between(new, from, to, port)?;
        self.channels.recompute(&self.graph);
        Ok(())
    }

    /// Attaches a Component Feature to a node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] for unknown nodes.
    pub fn attach_feature(
        &mut self,
        id: NodeId,
        feature: impl ComponentFeature + 'static,
    ) -> Result<(), CoreError> {
        self.graph.attach_feature(id, Box::new(feature))?;
        self.channels.recompute(&self.graph);
        Ok(())
    }

    /// Detaches a Component Feature by name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownFeatureName`] when absent.
    pub fn detach_feature(
        &mut self,
        id: NodeId,
        name: &str,
    ) -> Result<Box<dyn ComponentFeature>, CoreError> {
        let f = self.graph.detach_feature(id, name)?;
        self.channels.recompute(&self.graph);
        Ok(f)
    }

    /// Inspection of the full process structure (PSL view).
    pub fn structure(&self) -> Vec<NodeInfo> {
        self.graph
            .node_ids()
            .into_iter()
            .filter_map(|id| self.graph.info(id).ok())
            .collect()
    }

    /// Inspection record for one node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] for unknown nodes.
    pub fn node_info(&self, id: NodeId) -> Result<NodeInfo, CoreError> {
        self.graph.info(id)
    }

    /// Renders the process tree as indented text.
    pub fn render_process_tree(&self) -> String {
        self.graph.render_tree()
    }

    /// Reflectively invokes a method on a node (component first, then its
    /// features).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSuchMethod`] when nothing handles it.
    pub fn invoke(&mut self, id: NodeId, method: &str, args: &[Value]) -> Result<Value, CoreError> {
        let now = self.clock.now();
        let (value, emitted) = self.graph.invoke(id, method, args, now)?;
        self.pending.extend(emitted.into_iter().map(|i| (id, i)));
        Ok(value)
    }

    /// Reflectively invokes a method on a named Component Feature.
    ///
    /// # Errors
    ///
    /// Propagates reflective errors.
    pub fn invoke_feature(
        &mut self,
        id: NodeId,
        feature: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CoreError> {
        let now = self.clock.now();
        let (value, emitted) = self.graph.invoke_feature(id, feature, method, args, now)?;
        self.pending.extend(emitted.into_iter().map(|i| (id, i)));
        Ok(value)
    }

    /// All methods a node appears to implement.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] for unknown nodes.
    pub fn methods(&self, id: NodeId) -> Result<Vec<MethodSpec>, CoreError> {
        self.graph.methods(id)
    }

    /// Typed access to an attached Component Feature.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownFeatureName`] when absent or of another
    /// type.
    pub fn with_feature_mut<T: 'static, R>(
        &mut self,
        id: NodeId,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, CoreError> {
        self.graph.with_feature_mut(id, name, f)
    }

    /// Direct access to the graph for read-only traversals.
    pub fn graph(&self) -> &ProcessingGraph {
        &self.graph
    }

    // ------------------------------------------------------------------
    // Process Channel Layer (PCL) — paper §2.2
    // ------------------------------------------------------------------

    /// The current channels (PCL view).
    pub fn channels(&self) -> Vec<ChannelInfo> {
        self.channels.infos()
    }

    /// The channel delivering into `(node, port)`, if any.
    pub fn channel_into(&self, node: NodeId, port: usize) -> Option<ChannelId> {
        self.channels.channel_into(node, port)
    }

    /// Attaches a Channel Feature, validating its declared dependencies.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownChannel`] or
    /// [`CoreError::MissingFeature`] for unsatisfied dependencies.
    pub fn attach_channel_feature(
        &mut self,
        id: ChannelId,
        feature: impl ChannelFeature + 'static,
    ) -> Result<(), CoreError> {
        self.channels
            .attach_feature(&self.graph, id, Box::new(feature))
    }

    /// Detaches a Channel Feature by name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownFeatureName`] when absent.
    pub fn detach_channel_feature(
        &mut self,
        id: ChannelId,
        name: &str,
    ) -> Result<Box<dyn ChannelFeature>, CoreError> {
        self.channels.detach_feature(id, name)
    }

    /// Reflectively invokes a method on an attached Channel Feature — how
    /// Positioning Layer code reaches middleware adaptations.
    ///
    /// # Errors
    ///
    /// Propagates reflective errors.
    pub fn invoke_channel_feature(
        &mut self,
        id: ChannelId,
        feature: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CoreError> {
        self.channels.invoke_feature(id, feature, method, args)
    }

    /// Typed access to an attached Channel Feature (the paper's
    /// `inputChannel.getFeature(Likelihood.class)`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownFeatureName`] when absent or of another
    /// type.
    pub fn with_channel_feature_mut<T: 'static, R>(
        &mut self,
        id: ChannelId,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, CoreError> {
        self.channels.with_feature_mut(id, name, f)
    }

    // ------------------------------------------------------------------
    // Positioning Layer — paper §2.3
    // ------------------------------------------------------------------

    /// The default application sink node (root of the process tree).
    pub fn application_sink(&self) -> NodeId {
        self.app_sink
    }

    /// Requests a location provider matching `criteria` over the default
    /// application sink.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoMatchingProvider`] when the criteria names
    /// kinds that no component in the graph can provide.
    pub fn location_provider(&self, criteria: Criteria) -> Result<LocationProvider, CoreError> {
        if !criteria.kinds().is_empty() {
            let available = self
                .graph
                .node_ids()
                .into_iter()
                .flat_map(|id| self.graph.effective_provides(id))
                .collect::<Vec<_>>();
            if !criteria.kinds().iter().any(|k| available.contains(k)) {
                return Err(CoreError::NoMatchingProvider(criteria.to_string()));
            }
        }
        Ok(LocationProvider::new(
            Arc::clone(&self.app_shared),
            criteria,
        ))
    }

    /// Creates a named tracked target with its own sink node; connect
    /// sensor pipelines to `target.node()`.
    pub fn add_target(&mut self, name: impl Into<String>) -> Target {
        let name = name.into();
        let (sink, shared) = ApplicationSink::new(name.clone());
        let node = self.graph.add(Box::new(sink));
        self.channels.recompute(&self.graph);
        let target = Target { name, node, shared };
        self.targets.push(target.clone());
        target
    }

    /// The registered targets.
    pub fn targets(&self) -> &[Target] {
        &self.targets
    }

    /// The k nearest targets to a reference position, by each target's
    /// most recent reported position — the "k-nearest targets" query the
    /// Positioning Layer offers (paper §2). Targets that have not
    /// reported a position yet are skipped.
    pub fn k_nearest_targets(
        &self,
        from: &perpos_geo::Wgs84,
        k: usize,
    ) -> Vec<(String, crate::data::Position, f64)> {
        let mut out: Vec<(String, crate::data::Position, f64)> = self
            .targets
            .iter()
            .filter_map(|t| {
                let pos = t.provider(Criteria::new()).last_position()?;
                let d = pos.coord().distance_m(from);
                Some((t.name().to_string(), pos, d))
            })
            .collect();
        out.sort_by(|a, b| a.2.total_cmp(&b.2));
        out.truncate(k);
        out
    }

    // ------------------------------------------------------------------
    // Distribution (simulated D-OSGi, paper §3.3)
    // ------------------------------------------------------------------

    /// Distributes the graph over hosts: items crossing host boundaries
    /// travel through the deployment's link model (latency/loss) instead
    /// of being delivered synchronously.
    pub fn set_deployment(&mut self, deployment: Deployment) {
        self.deployment = Some(deployment);
    }

    /// The active deployment, if the graph is distributed.
    pub fn deployment(&self) -> Option<&Deployment> {
        self.deployment.as_ref()
    }

    /// Removes the deployment; the graph becomes co-located again.
    /// In-flight messages are dropped.
    pub fn clear_deployment(&mut self) -> Option<Deployment> {
        self.deployment.take()
    }

    // ------------------------------------------------------------------
    // Engine
    // ------------------------------------------------------------------

    /// Runs one engine step at the current simulated time: ticks all
    /// sources and propagates emissions through the graph to quiescence.
    ///
    /// # Errors
    ///
    /// Aborts on the first component/feature failure and surfaces it.
    pub fn step(&mut self) -> Result<(), CoreError> {
        let now = self.clock.now();
        self.steps_run += 1;
        let mut queue: VecDeque<(NodeId, usize, DataItem)> = VecDeque::new();

        // Deliver remote messages that are due.
        if let Some(dep) = &mut self.deployment {
            for (target, port, item) in dep.take_due(now) {
                if self.graph.contains(target) {
                    queue.push_back((target, port, item));
                }
            }
        }

        // Route feature emissions from out-of-band reflective calls.
        for (node, item) in std::mem::take(&mut self.pending) {
            if self.graph.contains(node) {
                self.route_item(node, item, now, &mut queue)?;
            }
        }

        for src in self.graph.sources() {
            let emitted = self.run_tick(src, now)?;
            for item in emitted {
                self.dispatch_output(src, item, now, &mut queue)?;
            }
        }

        while let Some((node, port, item)) = queue.pop_front() {
            let (passed, extras) = self.run_consume_features(node, item, now)?;
            for extra in extras {
                self.route_item(node, extra, now, &mut queue)?;
            }
            let Some(item) = passed else { continue };
            let emitted = self.run_on_input(node, port, item, now)?;
            for item in emitted {
                self.dispatch_output(node, item, now, &mut queue)?;
            }
        }
        Ok(())
    }

    /// Advances simulated time by `tick` after each step until `total`
    /// has elapsed.
    ///
    /// # Errors
    ///
    /// Propagates the first step error.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero.
    pub fn run_for(&mut self, total: SimDuration, tick: SimDuration) -> Result<(), CoreError> {
        assert!(!tick.is_zero(), "tick duration must be non-zero");
        let end = self.clock.now() + total;
        while self.clock.now() < end {
            self.step()?;
            self.clock.advance(tick);
        }
        Ok(())
    }

    /// Ticks one source component.
    fn run_tick(&mut self, id: NodeId, now: SimTime) -> Result<Vec<DataItem>, CoreError> {
        let node = self.graph.node_mut(id).ok_or(CoreError::UnknownNode(id))?;
        let mut ctx = ComponentCtx::new(now);
        node.component.on_tick(&mut ctx)?;
        Ok(ctx.take_emitted())
    }

    /// Delivers one item to a component's input port.
    fn run_on_input(
        &mut self,
        id: NodeId,
        port: usize,
        item: DataItem,
        now: SimTime,
    ) -> Result<Vec<DataItem>, CoreError> {
        let node = self.graph.node_mut(id).ok_or(CoreError::UnknownNode(id))?;
        let mut ctx = ComponentCtx::new(now);
        node.component.on_input(port, item, &mut ctx)?;
        Ok(ctx.take_emitted())
    }

    /// Runs the consume-direction features of a node over an incoming
    /// item. Returns the (possibly replaced) item and any data the
    /// features added.
    fn run_consume_features(
        &mut self,
        id: NodeId,
        item: DataItem,
        now: SimTime,
    ) -> Result<(Option<DataItem>, Vec<DataItem>), CoreError> {
        let node = self.graph.node_mut(id).ok_or(CoreError::UnknownNode(id))?;
        let component = &mut node.component;
        let features = &mut node.features;
        let mut extras = Vec::new();
        let mut current = Some(item);
        for slot in features.iter_mut() {
            let mut host = FeatureHost::new(component.as_mut(), now);
            if let Some(it) = current.take() {
                let kind_before = it.kind.clone();
                match slot.feature.on_consume(it, &mut host)? {
                    FeatureAction::Continue(out) => {
                        if out.kind != kind_before {
                            return Err(CoreError::ComponentFailure {
                                component: slot.descriptor.name.clone(),
                                reason: format!(
                                    "feature changed item kind {kind_before} -> {}; features cannot change the data type (paper §2.1)",
                                    out.kind
                                ),
                            });
                        }
                        current = Some(out);
                    }
                    FeatureAction::Drop => current = None,
                }
            }
            extras.extend(host.take_emitted());
        }
        Ok((current, extras))
    }

    /// Runs the produce-direction features over an item a node emitted,
    /// then routes the surviving item plus any feature-added data.
    fn dispatch_output(
        &mut self,
        id: NodeId,
        item: DataItem,
        now: SimTime,
        queue: &mut VecDeque<(NodeId, usize, DataItem)>,
    ) -> Result<(), CoreError> {
        let node = self.graph.node_mut(id).ok_or(CoreError::UnknownNode(id))?;
        let component = &mut node.component;
        let features = &mut node.features;
        let mut outputs = Vec::new();
        let mut current = Some(item);
        for slot in features.iter_mut() {
            let mut host = FeatureHost::new(component.as_mut(), now);
            if let Some(it) = current.take() {
                let kind_before = it.kind.clone();
                match slot.feature.on_produce(it, &mut host)? {
                    FeatureAction::Continue(out) => {
                        if out.kind != kind_before {
                            return Err(CoreError::ComponentFailure {
                                component: slot.descriptor.name.clone(),
                                reason: format!(
                                    "feature changed item kind {kind_before} -> {}; features cannot change the data type (paper §2.1)",
                                    out.kind
                                ),
                            });
                        }
                        current = Some(out);
                    }
                    FeatureAction::Drop => current = None,
                }
            }
            outputs.extend(host.take_emitted());
        }
        if let Some(it) = current {
            outputs.insert(0, it);
        }
        for out in outputs {
            self.route_item(id, out, now, queue)?;
        }
        Ok(())
    }

    /// Channel bookkeeping plus downstream fan-out for one finished item.
    fn route_item(
        &mut self,
        id: NodeId,
        item: DataItem,
        now: SimTime,
        queue: &mut VecDeque<(NodeId, usize, DataItem)>,
    ) -> Result<(), CoreError> {
        if let Some(tree) = self.channels.record(id, &item) {
            let emitted = self.channels.apply_features(&mut self.graph, &tree, now)?;
            for (node, extra) in emitted {
                self.route_item(node, extra, now, queue)?;
            }
        }
        for (target, port) in self.graph.downstream(id) {
            let accepts = self
                .graph
                .node(target)
                .and_then(|n| n.descriptor.inputs.get(port).cloned())
                .map(|spec| spec.accepts_kind(&item.kind))
                .unwrap_or(false);
            if !accepts {
                continue;
            }
            // Cross-host edges go through the deployment's link model.
            match self.deployment.as_mut() {
                Some(d) if d.crosses_hosts(id, target) => {
                    d.send(now, id, target, port, item.clone());
                }
                _ => queue.push_back((target, port, item.clone())),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{FnProcessor, FnSource};
    use crate::data::{kinds, Position};
    use crate::feature::{FeatureDescriptor, TagFeature};
    use perpos_geo::Wgs84;
    use std::any::Any;

    fn wgs(lat: f64, lon: f64) -> Wgs84 {
        Wgs84::new(lat, lon, 0.0).unwrap()
    }

    fn position_source(mw: &mut Middleware, name: &str, lat: f64, lon: f64) -> NodeId {
        mw.add_component(FnSource::new(name, kinds::POSITION_WGS84, move |_| {
            Some(Value::from(Position::new(wgs(lat, lon), Some(5.0))))
        }))
    }

    #[test]
    fn pipeline_delivers_to_provider() {
        let mut mw = Middleware::new();
        let src = position_source(&mut mw, "gps", 56.0, 10.0);
        let app = mw.application_sink();
        mw.connect(src, app, 0).unwrap();
        mw.run_for(SimDuration::from_secs(1), SimDuration::from_millis(100))
            .unwrap();
        let provider = mw
            .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
            .unwrap();
        assert!(provider.last_position().is_some());
        assert_eq!(provider.delivered_count(), 10);
        assert_eq!(mw.steps_run(), 10);
    }

    #[test]
    fn provider_requires_available_kind() {
        let mw = Middleware::new();
        assert!(matches!(
            mw.location_provider(Criteria::new().kind(kinds::POSITION_WGS84)),
            Err(CoreError::NoMatchingProvider(_))
        ));
        // Criteria with no kinds always succeeds.
        assert!(mw.location_provider(Criteria::new()).is_ok());
    }

    #[test]
    fn produce_features_transform_data() {
        let mut mw = Middleware::new();
        let src = position_source(&mut mw, "gps", 56.0, 10.0);
        mw.attach_feature(
            src,
            TagFeature::new("SourceTag", "source", Value::from("gps")),
        )
        .unwrap();
        let app = mw.application_sink();
        mw.connect(src, app, 0).unwrap();
        mw.run_for(SimDuration::from_millis(100), SimDuration::from_millis(100))
            .unwrap();
        let provider = mw.location_provider(Criteria::new().source("gps")).unwrap();
        assert!(provider.last_item().is_some());
    }

    #[test]
    fn consume_features_can_drop() {
        struct DropAll;
        impl ComponentFeature for DropAll {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("DropAll")
            }
            fn on_consume(
                &mut self,
                _item: DataItem,
                _host: &mut FeatureHost<'_>,
            ) -> Result<FeatureAction, CoreError> {
                Ok(FeatureAction::Drop)
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut mw = Middleware::new();
        let src = position_source(&mut mw, "gps", 56.0, 10.0);
        let app = mw.application_sink();
        mw.attach_feature(app, DropAll).unwrap();
        mw.connect(src, app, 0).unwrap();
        mw.run_for(SimDuration::from_secs(1), SimDuration::from_millis(100))
            .unwrap();
        let provider = mw.location_provider(Criteria::new()).unwrap();
        assert_eq!(provider.delivered_count(), 0);
    }

    #[test]
    fn feature_cannot_change_kind() {
        struct KindChanger;
        impl ComponentFeature for KindChanger {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("KindChanger")
            }
            fn on_produce(
                &mut self,
                mut item: DataItem,
                _host: &mut FeatureHost<'_>,
            ) -> Result<FeatureAction, CoreError> {
                item.kind = kinds::RAW_STRING;
                Ok(FeatureAction::Continue(item))
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut mw = Middleware::new();
        let src = position_source(&mut mw, "gps", 56.0, 10.0);
        mw.attach_feature(src, KindChanger).unwrap();
        let app = mw.application_sink();
        mw.connect(src, app, 0).unwrap();
        assert!(matches!(mw.step(), Err(CoreError::ComponentFailure { .. })));
    }

    #[test]
    fn feature_added_data_reaches_accepting_ports() {
        // A feature on the source adds room-id items; the sink accepts
        // anything, so both kinds arrive.
        struct RoomAdder;
        impl ComponentFeature for RoomAdder {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("RoomAdder").adds(kinds::POSITION_ROOM)
            }
            fn on_produce(
                &mut self,
                item: DataItem,
                host: &mut FeatureHost<'_>,
            ) -> Result<FeatureAction, CoreError> {
                host.emit_value(kinds::POSITION_ROOM, Value::from("R1"));
                Ok(FeatureAction::Continue(item))
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut mw = Middleware::new();
        let src = position_source(&mut mw, "gps", 56.0, 10.0);
        mw.attach_feature(src, RoomAdder).unwrap();
        let app = mw.application_sink();
        mw.connect(src, app, 0).unwrap();
        mw.step().unwrap();
        let rooms = mw
            .location_provider(Criteria::new().kind(kinds::POSITION_ROOM))
            .unwrap();
        assert_eq!(rooms.last_item().unwrap().payload.as_text(), Some("R1"));
    }

    #[test]
    fn multi_stage_pipeline_and_channels() {
        let mut mw = Middleware::new();
        let src = mw.add_component(FnSource::new("gps", kinds::RAW_STRING, |_| {
            Some(Value::from("$GPGGA"))
        }));
        let parser = mw.add_component(FnProcessor::new(
            "parser",
            vec![kinds::RAW_STRING],
            kinds::NMEA_SENTENCE,
            |i| Some(i.payload.clone()),
        ));
        let app = mw.application_sink();
        mw.connect(src, parser, 0).unwrap();
        mw.connect(parser, app, 0).unwrap();
        let chans = mw.channels();
        assert_eq!(chans.len(), 1);
        assert_eq!(chans[0].member_names, vec!["gps", "parser"]);
        assert_eq!(chans[0].endpoint, Some((app, 0)));
        mw.step().unwrap();
        let p = mw.location_provider(Criteria::new()).unwrap();
        assert_eq!(p.last_item().unwrap().kind, kinds::NMEA_SENTENCE);
    }

    #[test]
    fn channel_feature_sees_trees() {
        struct TreeCounter {
            trees: usize,
            elements: usize,
        }
        impl ChannelFeature for TreeCounter {
            fn descriptor(&self) -> FeatureDescriptor {
                FeatureDescriptor::new("TreeCounter")
            }
            fn apply(
                &mut self,
                tree: &crate::channel::DataTree,
                _host: &mut crate::channel::ChannelHost<'_>,
            ) -> Result<(), CoreError> {
                self.trees += 1;
                self.elements += tree.len();
                Ok(())
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut mw = Middleware::new();
        let src = mw.add_component(FnSource::new("gps", kinds::RAW_STRING, |_| {
            Some(Value::from("raw"))
        }));
        let parser = mw.add_component(FnProcessor::new(
            "parser",
            vec![kinds::RAW_STRING],
            kinds::NMEA_SENTENCE,
            |i| Some(i.payload.clone()),
        ));
        let app = mw.application_sink();
        mw.connect(src, parser, 0).unwrap();
        mw.connect(parser, app, 0).unwrap();
        let channel = mw.channel_into(app, 0).unwrap();
        mw.attach_channel_feature(
            channel,
            TreeCounter {
                trees: 0,
                elements: 0,
            },
        )
        .unwrap();
        mw.run_for(SimDuration::from_millis(300), SimDuration::from_millis(100))
            .unwrap();
        let (trees, elements) = mw
            .with_channel_feature_mut::<TreeCounter, (usize, usize)>(channel, "TreeCounter", |f| {
                (f.trees, f.elements)
            })
            .unwrap();
        assert_eq!(trees, 3);
        assert_eq!(elements, 6); // each tree: 1 nmea + 1 raw string
    }

    #[test]
    fn mid_run_channel_feature_attachment_preserves_logical_time() {
        struct Ranges(Vec<u64>);
        impl ChannelFeature for Ranges {
            fn descriptor(&self) -> crate::feature::FeatureDescriptor {
                crate::feature::FeatureDescriptor::new("Ranges")
            }
            fn apply(
                &mut self,
                tree: &crate::channel::DataTree,
                _h: &mut crate::channel::ChannelHost<'_>,
            ) -> Result<(), CoreError> {
                self.0.push(tree.root.logical);
                Ok(())
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut mw = Middleware::new();
        let src = mw.add_component(FnSource::new("src", kinds::RAW_STRING, |_| {
            Some(Value::Int(1))
        }));
        let stage = mw.add_component(FnProcessor::new(
            "stage",
            vec![kinds::RAW_STRING],
            kinds::RAW_STRING,
            |i| Some(i.payload.clone()),
        ));
        let app = mw.application_sink();
        mw.connect(src, stage, 0).unwrap();
        mw.connect(stage, app, 0).unwrap();
        // Run 3 steps before attaching: logical time advances unseen.
        for _ in 0..3 {
            mw.step().unwrap();
            mw.advance_clock(SimDuration::from_millis(10));
        }
        let channel = mw.channel_into(app, 0).unwrap();
        mw.attach_channel_feature(channel, Ranges(Vec::new()))
            .unwrap();
        for _ in 0..2 {
            mw.step().unwrap();
            mw.advance_clock(SimDuration::from_millis(10));
        }
        let logicals = mw
            .with_channel_feature_mut::<Ranges, Vec<u64>>(channel, "Ranges", |r| r.0.clone())
            .unwrap();
        // Attaching a feature does not reset the channel's logical clock:
        // the first observed outputs are #4 and #5.
        assert_eq!(logicals, vec![4, 5]);
    }

    #[test]
    fn runtime_insertion_takes_effect() {
        let mut mw = Middleware::new();
        let mut counter = 0;
        let src = mw.add_component(FnSource::new("s", kinds::RAW_STRING, move |_| {
            counter += 1;
            Some(Value::Int(counter))
        }));
        let app = mw.application_sink();
        mw.connect(src, app, 0).unwrap();
        mw.step().unwrap();

        // Insert a filter dropping odd numbers mid-flight.
        let filter = mw.add_component(FnProcessor::new(
            "even-only",
            vec![kinds::RAW_STRING],
            kinds::RAW_STRING,
            |i| match i.payload.as_i64() {
                Some(v) if v % 2 == 0 => Some(i.payload.clone()),
                _ => None,
            },
        ));
        mw.insert_between(filter, src, app, 0).unwrap();
        for _ in 0..4 {
            mw.clock.advance(SimDuration::from_millis(100));
            mw.step().unwrap();
        }
        let p = mw.location_provider(Criteria::new()).unwrap();
        let values: Vec<i64> = p
            .history()
            .iter()
            .filter_map(|i| i.payload.as_i64())
            .collect();
        assert_eq!(values, vec![1, 2, 4], "1 pre-insertion, then evens only");
    }

    #[test]
    fn targets_have_independent_sinks() {
        let mut mw = Middleware::new();
        let t1 = mw.add_target("alice");
        let t2 = mw.add_target("bob");
        let s1 = position_source(&mut mw, "gps-alice", 10.0, 10.0);
        let s2 = position_source(&mut mw, "gps-bob", 20.0, 20.0);
        mw.connect(s1, t1.node(), 0).unwrap();
        mw.connect(s2, t2.node(), 0).unwrap();
        mw.step().unwrap();
        let p1 = t1.provider(Criteria::new());
        let p2 = t2.provider(Criteria::new());
        assert_eq!(p1.last_position().unwrap().coord().lat_deg(), 10.0);
        assert_eq!(p2.last_position().unwrap().coord().lat_deg(), 20.0);
        assert_eq!(mw.targets().len(), 2);
    }

    #[test]
    fn merge_component_heads_its_own_channel() {
        // Two sources into a merge, merge into the app: the PCL must
        // derive three channels — one per source ending at the merge, and
        // one headed at the merge ending at the app (paper Fig. 2).
        struct Merge;
        impl Component for Merge {
            fn descriptor(&self) -> crate::component::ComponentDescriptor {
                crate::component::ComponentDescriptor::merge(
                    "fusion",
                    vec![
                        crate::component::InputSpec::new("a", vec![]),
                        crate::component::InputSpec::new("b", vec![]),
                    ],
                    vec![kinds::POSITION_WGS84],
                )
            }
            fn on_input(
                &mut self,
                _p: usize,
                item: DataItem,
                ctx: &mut ComponentCtx,
            ) -> Result<(), CoreError> {
                ctx.emit(DataItem::new(
                    kinds::POSITION_WGS84,
                    ctx.now(),
                    item.payload,
                ));
                Ok(())
            }
        }
        let mut mw = Middleware::new();
        let s1 = position_source(&mut mw, "gps", 10.0, 10.0);
        let s2 = position_source(&mut mw, "wifi", 11.0, 11.0);
        let merge = mw.add_component(Merge);
        let app = mw.application_sink();
        mw.connect(s1, merge, 0).unwrap();
        mw.connect(s2, merge, 1).unwrap();
        mw.connect(merge, app, 0).unwrap();

        let channels = mw.channels();
        assert_eq!(channels.len(), 3);
        let by_head: std::collections::BTreeMap<String, &crate::channel::ChannelInfo> = channels
            .iter()
            .map(|c| (c.member_names[0].clone(), c))
            .collect();
        assert_eq!(by_head["gps"].endpoint, Some((merge, 0)));
        assert_eq!(by_head["wifi"].endpoint, Some((merge, 1)));
        assert_eq!(by_head["fusion"].endpoint, Some((app, 0)));

        // Trees flow on all three channels.
        struct Count(usize);
        impl ChannelFeature for Count {
            fn descriptor(&self) -> crate::feature::FeatureDescriptor {
                crate::feature::FeatureDescriptor::new("Count")
            }
            fn apply(
                &mut self,
                _t: &crate::channel::DataTree,
                _h: &mut crate::channel::ChannelHost<'_>,
            ) -> Result<(), CoreError> {
                self.0 += 1;
                Ok(())
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let merge_channel = mw.channel_into(app, 0).unwrap();
        assert_eq!(merge_channel.head(), merge);
        mw.attach_channel_feature(merge_channel, Count(0)).unwrap();
        mw.step().unwrap();
        let n = mw
            .with_channel_feature_mut::<Count, usize>(merge_channel, "Count", |c| c.0)
            .unwrap();
        // Each source delivers one item; the merge emits per input.
        assert_eq!(n, 2);
        // The merge channel's trees are rooted at the merge output.
        let p = mw.location_provider(Criteria::new()).unwrap();
        assert_eq!(p.delivered_count(), 2);
    }

    #[test]
    fn k_nearest_targets_orders_by_distance() {
        let mut mw = Middleware::new();
        let near = mw.add_target("near");
        let far = mw.add_target("far");
        let silent = mw.add_target("silent");
        let s1 = position_source(&mut mw, "gps-near", 10.0, 10.0);
        let s2 = position_source(&mut mw, "gps-far", 20.0, 20.0);
        mw.connect(s1, near.node(), 0).unwrap();
        mw.connect(s2, far.node(), 0).unwrap();
        mw.step().unwrap();
        let from = wgs(10.0, 10.0);
        let nearest = mw.k_nearest_targets(&from, 5);
        // "silent" never reported and is skipped.
        assert_eq!(nearest.len(), 2);
        assert_eq!(nearest[0].0, "near");
        assert_eq!(nearest[1].0, "far");
        assert!(nearest[0].2 < nearest[1].2);
        // k truncates.
        assert_eq!(mw.k_nearest_targets(&from, 1).len(), 1);
        let _ = silent;
    }

    #[test]
    fn error_in_component_aborts_step() {
        struct Failing;
        impl Component for Failing {
            fn descriptor(&self) -> crate::component::ComponentDescriptor {
                crate::component::ComponentDescriptor::source("failing", vec![kinds::RAW_STRING])
            }
            fn on_input(
                &mut self,
                _p: usize,
                _i: DataItem,
                _c: &mut ComponentCtx,
            ) -> Result<(), CoreError> {
                Ok(())
            }
            fn on_tick(&mut self, _ctx: &mut ComponentCtx) -> Result<(), CoreError> {
                Err(CoreError::ComponentFailure {
                    component: "failing".into(),
                    reason: "simulated fault".into(),
                })
            }
        }
        let mut mw = Middleware::new();
        mw.add_component(Failing);
        assert!(matches!(mw.step(), Err(CoreError::ComponentFailure { .. })));
    }
}
