//! Versioned instance checkpoints: everything a [`Middleware`] needs to
//! resume byte-identically after a crash.
//!
//! A [`Snapshot`] captures the *dynamic* state of one middleware
//! instance — logical time, per-channel ring state, supervision records,
//! pending reflective emissions and the opaque per-component /
//! per-feature state exposed through
//! [`Component::snapshot_state`](crate::component::Component::snapshot_state) —
//! together with a signature of the graph *structure* it was taken from.
//! Restoring applies that state into a structurally identical instance
//! (typically rebuilt by the same factory that built the original), so
//! component code and wiring come from the factory while every counter,
//! buffer and RNG position comes from the checkpoint. The contract,
//! proven by `tests/fleet_recovery.rs`: a restored instance stepped `k`
//! times produces byte-identical trees, history and health to the
//! original stepped `k` times without interruption.
//!
//! [`Middleware`]: crate::Middleware

use crate::channel::ChannelLayerSnapshot;
use crate::data::{DataItem, Value};
use crate::distribution::Deployment;
use crate::executor::ExecMode;
use crate::graph::{NodeId, ProcessingGraph};
use crate::supervision::HealthRegistry;
use crate::SimTime;

/// Version tag written into every [`Snapshot`].
///
/// Version rules: the number is bumped whenever the captured state's
/// shape changes incompatibly (a field added to the channel ring state,
/// a different health-registry layout, …).
/// [`Middleware::restore`](crate::Middleware::restore) rejects
/// snapshots whose version differs from the build's — a fleet never
/// silently resumes from a checkpoint it may misinterpret.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Structural identity of one node, used to verify that a snapshot is
/// restored into the graph it was taken from.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct NodeSignature {
    pub id: NodeId,
    pub name: String,
    pub inputs: Vec<Option<NodeId>>,
    pub features: Vec<String>,
}

/// The structure signature of a whole graph: node ids are allocated
/// sequentially and never reused, so a factory rebuilding the same
/// pipeline reproduces identical ids and the signatures compare equal.
pub(crate) fn structure_signature(graph: &ProcessingGraph) -> Vec<NodeSignature> {
    graph
        .node_ids()
        .filter_map(|id| graph.info(id).ok())
        .map(|info| NodeSignature {
            id: info.id,
            name: info.descriptor.name,
            inputs: info.inputs,
            features: info.features.into_iter().map(|f| f.name).collect(),
        })
        .collect()
}

/// A checkpoint of one middleware instance; see the module docs.
///
/// Snapshots are in-memory values (cheap: payloads stay behind shared
/// `Arc`s) created by [`Middleware::snapshot`](crate::Middleware::snapshot)
/// and consumed by [`Middleware::restore`](crate::Middleware::restore).
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) version: u32,
    pub(crate) structure: Vec<NodeSignature>,
    pub(crate) now: SimTime,
    pub(crate) steps_run: u64,
    pub(crate) exec_mode: ExecMode,
    pub(crate) channels: ChannelLayerSnapshot,
    pub(crate) health: HealthRegistry,
    pub(crate) pending: Vec<(NodeId, DataItem)>,
    pub(crate) deployment: Option<Deployment>,
    /// Opaque per-component state, only for components that returned
    /// `Some` from `snapshot_state`.
    pub(crate) component_state: Vec<(NodeId, Value)>,
    /// Opaque per-feature state, keyed by `(node, feature index)`.
    pub(crate) feature_state: Vec<((NodeId, usize), Value)>,
}

impl Snapshot {
    /// The format version the snapshot was written with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Simulated time at capture.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine steps the instance had run at capture.
    pub fn steps_run(&self) -> u64 {
        self.steps_run
    }

    /// Number of nodes in the captured structure.
    pub fn node_count(&self) -> usize {
        self.structure.len()
    }
}
