//! Executor determinism suite: the [`Sequential`] and [`LevelParallel`]
//! executors must be *observationally identical* — byte-identical
//! channel data trees, identical provider delivery history, and
//! identical per-node health records for the same trace, including
//! traces with injected panics and errors. This is the contract that
//! makes the execution policy a pure performance knob: switching it can
//! never change what the positioning process computes.

#![allow(clippy::unwrap_used)]
use std::any::Any;

use perpos::core::channel::{ChannelFeature, ChannelHost, DataTree};
use perpos::core::executor::LevelParallel;
use perpos::prelude::*;

/// A Channel Feature that records the exact rendered form of every data
/// tree it is applied to — the byte-level observable the determinism
/// contract is stated over.
#[derive(Default)]
struct TreeLog {
    rendered: Vec<String>,
}

impl TreeLog {
    const NAME: &'static str = "TreeLog";
}

impl ChannelFeature for TreeLog {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(Self::NAME)
    }
    fn apply(&mut self, tree: &DataTree, _host: &mut ChannelHost<'_>) -> Result<(), CoreError> {
        self.rendered.push(tree.render());
        Ok(())
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A stateful Component Feature tagging each produced item with a
/// sequence number — exercises the copy-on-write attribute path and the
/// per-node feature-call ordering under parallel execution.
struct SeqTag {
    next: i64,
}

impl ComponentFeature for SeqTag {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new("SeqTag").method(MethodSpec::new("seq", "() -> int"))
    }
    fn on_produce(
        &mut self,
        mut item: DataItem,
        _host: &mut FeatureHost<'_>,
    ) -> Result<FeatureAction, CoreError> {
        self.next += 1;
        item.attrs.insert("seq", Value::Int(self.next));
        Ok(FeatureAction::Continue(item))
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A two-port merge that XOR-folds whichever branch delivers — arrival
/// *order* at a merge is exactly what a wrong parallel schedule would
/// scramble, so its output is a sensitive determinism probe.
struct XorMerge;

impl Component for XorMerge {
    fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor::merge(
            "merge",
            vec![
                InputSpec::new("a", vec![kinds::RAW_STRING]),
                InputSpec::new("b", vec![kinds::RAW_STRING]),
            ],
            vec![kinds::RAW_STRING],
        )
    }
    fn on_input(
        &mut self,
        port: usize,
        item: DataItem,
        ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        if let Some(v) = item.payload.as_i64() {
            ctx.emit_value(
                kinds::RAW_STRING,
                Value::Int((v ^ 0x5a).wrapping_add(port as i64)),
            );
        }
        Ok(())
    }
}

fn source(name: &str, stride: i64) -> impl Component {
    let mut i = 0i64;
    FnSource::new(name.to_string(), kinds::RAW_STRING, move |_| {
        i += stride;
        Some(Value::Int(i))
    })
}

fn stage(name: &str, mut f: impl FnMut(i64) -> i64 + Send + 'static) -> impl Component {
    FnProcessor::new(
        name.to_string(),
        vec![kinds::RAW_STRING],
        kinds::RAW_STRING,
        move |item| item.payload.as_i64().map(|v| Value::Int(f(v)).into()),
    )
}

/// Everything the contract quantifies over, rendered to strings so the
/// comparison is byte-exact.
#[derive(Debug, PartialEq)]
struct Observed {
    trees: Vec<Vec<String>>,
    history: String,
    health: Vec<String>,
    steps: u64,
}

/// Builds the shared scenario — three sources, two branches merging
/// into a two-port processor, a third independent branch, a stateful
/// feature on one branch — runs it for 100 steps and collects every
/// observable. `faulty` additionally injects seeded panics and errors
/// under `DropItem` and `Quarantine` policies.
fn run_scenario(parallel: bool, faulty: bool) -> Observed {
    let mut mw = Middleware::new();
    if parallel {
        // An explicit worker count: the auto default would fall back to
        // the sequential path on a single-core machine, and this suite
        // exists to exercise the parallel wave machinery.
        mw.install_executor(Box::new(LevelParallel::with_workers(4)));
    }
    let src_a = mw.add_component(source("src-a", 1));
    let src_b = mw.add_component(source("src-b", 10));
    let src_c = mw.add_component(source("src-c", 100));
    let pa1 = mw.add_component(stage("pa1", |v| v * 2));
    let pa2 = mw.add_component(stage("pa2", |v| v + 3));
    let pb1 = mw.add_component(stage("pb1", |v| v - 1));
    let merge = mw.add_component(XorMerge);
    let pc1 = mw.add_component(stage("pc1", |v| v * 7));
    let app = mw.application_sink();
    mw.connect(src_a, pa1, 0).unwrap();
    mw.connect(pa1, pa2, 0).unwrap();
    mw.connect(pa2, merge, 0).unwrap();
    mw.connect(src_b, pb1, 0).unwrap();
    mw.connect(pb1, merge, 1).unwrap();
    mw.connect_to_sink(merge, app).unwrap();
    mw.connect(src_c, pc1, 0).unwrap();
    mw.connect_to_sink(pc1, app).unwrap();
    mw.attach_feature(pa1, SeqTag { next: 0 }).unwrap();

    if faulty {
        mw.attach_feature(
            pb1,
            FaultInjector::with_seed(42)
                .with_panic_rate(0.15)
                .with_error_rate(0.15),
        )
        .unwrap();
        mw.set_fault_policy(pb1, FaultPolicy::DropItem).unwrap();
        mw.attach_feature(pc1, FaultInjector::with_seed(7).with_panic_rate(0.3))
            .unwrap();
        mw.set_fault_policy(pc1, FaultPolicy::quarantine_default())
            .unwrap();
    }

    let channels: Vec<_> = mw.channels().iter().map(|c| c.id).collect();
    for &ch in &channels {
        mw.attach_channel_feature(ch, TreeLog::default()).unwrap();
    }
    let provider = mw.location_provider(Criteria::new()).unwrap();
    mw.run_for(SimDuration::from_secs(10), SimDuration::from_millis(100))
        .unwrap();

    let trees = channels
        .iter()
        .map(|&ch| {
            mw.with_channel_feature_mut(ch, TreeLog::NAME, |log: &mut TreeLog| log.rendered.clone())
                .unwrap()
        })
        .collect();
    let health = mw
        .structure()
        .iter()
        .map(|n| format!("{}: {:?}", n.descriptor.name, mw.node_health(n.id)))
        .collect();
    Observed {
        trees,
        history: format!("{:?}", provider.history()),
        health,
        steps: mw.steps_run(),
    }
}

#[test]
fn executors_produce_identical_data_trees() {
    let seq = run_scenario(false, false);
    let par = run_scenario(true, false);
    assert!(
        seq.trees.iter().any(|t| !t.is_empty()),
        "scenario must actually derive trees: {seq:?}"
    );
    assert!(!seq.history.is_empty());
    assert_eq!(seq, par);
}

#[test]
fn executors_agree_under_injected_faults() {
    let seq = run_scenario(false, true);
    let par = run_scenario(true, true);
    let total_faults = |o: &Observed| o.health.iter().filter(|h| !h.contains("faults: 0")).count();
    assert!(
        total_faults(&seq) >= 2,
        "both injectors must have fired: {:?}",
        seq.health
    );
    assert_eq!(seq, par);
}

#[test]
fn healthy_branches_survive_a_quarantined_one() {
    // Not a cross-mode comparison: a sanity check that the fault
    // scenario above still delivers data from the clean branches, so
    // the equality assertions are about a live system, not a dead one.
    let par = run_scenario(true, true);
    assert!(
        par.trees.iter().any(|t| !t.is_empty()),
        "clean branches keep deriving trees: {par:?}"
    );
}
