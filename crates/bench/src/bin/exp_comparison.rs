//! Experiment "comparison" — executes the paper's §3.1–§3.4 middleware
//! comparison instead of arguing it: runs the three adaptation scenarios
//! against PerPos, a Location-Stack-style baseline and a PoSIM-style
//! baseline, and prints the capability matrix the paper's prose derives.
//!
//! Run with: `cargo run -p perpos-bench --bin exp_comparison`

#![allow(clippy::unwrap_used)]
use perpos_baselines::{
    LocationStack, LsGpsAdapter, PoSim, PosimGpsWrapper, WorldEntry, WorldModel,
};
use perpos_bench::frame;
use perpos_core::prelude::*;
use perpos_geo::Point2;
use perpos_sensors::{
    GpsEnvironment, GpsSimulator, Interpreter, NumberOfSatellitesFeature, Parser, SatelliteFilter,
    Trajectory,
};

fn unreliable_env() -> GpsEnvironment {
    GpsEnvironment {
        mean_visible_sats: 3.2,
        sat_stddev: 1.0,
        base_noise_m: 10.0,
        dropout_prob: 0.0,
    }
}

/// §3.1 on PerPos: filter unreliable readings *before* they reach the
/// application. Returns (delivered, unreliable_delivered).
fn scenario_31_perpos() -> (usize, usize) {
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));
    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame(), walk)
            .with_seed(9)
            .with_environment(unreliable_env()),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let app = mw.application_sink();
    mw.connect(gps, parser, 0).unwrap();
    mw.connect(parser, interpreter, 0).unwrap();
    mw.connect(interpreter, app, 0).unwrap();
    mw.attach_feature(parser, NumberOfSatellitesFeature::new())
        .unwrap();
    let filter = mw.add_component(SatelliteFilter::new(4));
    mw.insert_between(filter, parser, interpreter, 0).unwrap();
    let provider = mw.location_provider(Criteria::new()).unwrap();
    mw.run_for(SimDuration::from_secs(60), SimDuration::from_secs(1))
        .unwrap();
    let delivered = provider.history().len();
    (delivered, 0) // unreliable readings never reach the application
}

/// §3.1 on PoSIM: the policy can switch the sensor off but the already
/// produced position reaches the application. Returns (delivered,
/// unreliable_delivered).
fn scenario_31_posim() -> (usize, usize) {
    let walk = Trajectory::stationary(Point2::new(0.0, 0.0));
    let mut posim = PoSim::new();
    posim.add_wrapper(Box::new(PosimGpsWrapper::new(
        GpsSimulator::new("GPS", frame(), walk)
            .with_seed(9)
            .with_environment(unreliable_env()),
    )));
    posim
        .add_policy("if satellites < 4 then set power off")
        .unwrap();
    let mut delivered = 0usize;
    let mut unreliable = 0usize;
    for t in 0..60 {
        let out = posim.poll(SimTime::from_secs_f64(t as f64));
        for _ in &out {
            delivered += 1;
            if posim
                .info("gps", "satellites")
                .and_then(|v| v.as_i64())
                .is_some_and(|s| s < 4)
            {
                unreliable += 1;
            }
        }
    }
    (delivered, unreliable)
}

fn main() {
    println!("=== §3: the three adaptations across middleware styles (executed) ===\n");

    // --- §3.1: unreliable reading detection. ---
    let (pp_del, pp_bad) = scenario_31_perpos();
    let (po_del, po_bad) = scenario_31_posim();
    println!("§3.1 unreliable-reading filtering (60 s under a bad sky):");
    println!("  PerPos        : {pp_del:>3} positions delivered, {pp_bad} unreliable (filtered in-process)");
    println!("  PoSIM-style   : {po_del:>3} positions delivered, {po_bad} unreliable (policy fires, position already out)");
    println!("  LocationStack : satellite count not representable — schema has no field; requires middleware source change");
    println!("  MiddleWhere   : world-model entries carry position/accuracy/time only; the producing sensor is invisible\n");

    // MiddleWhere executed: a gateway stores unreliable fixes and the
    // application cannot tell them apart.
    let mut world = WorldModel::new();
    let mut gw = PosimGpsWrapper::new(
        GpsSimulator::new(
            "GPS",
            frame(),
            Trajectory::stationary(Point2::new(0.0, 0.0)),
        )
        .with_seed(9)
        .with_environment(unreliable_env()),
    );
    use perpos_baselines::SensorWrapper as _;
    for t in 0..30 {
        for (pos, acc) in gw.sample(SimTime::from_secs_f64(t as f64)) {
            world.store(
                "target",
                WorldEntry {
                    position: pos,
                    accuracy_m: acc,
                    updated: SimTime::from_secs_f64(t as f64),
                },
            );
        }
    }

    // --- Location Stack HDOP check, executed. ---
    let mut stack = LocationStack::new(frame());
    stack.add_sensor(Box::new(LsGpsAdapter::new(
        GpsSimulator::new(
            "GPS",
            frame(),
            Trajectory::stationary(Point2::new(0.0, 0.0)),
        )
        .with_seed(9)
        .with_environment(unreliable_env()),
    )));
    let mut got = 0;
    for t in 0..30 {
        if stack.poll(SimTime::from_secs_f64(t as f64)).is_some() {
            got += 1;
        }
    }
    println!("§3.2 particle filter with HDOP likelihood + per-position timing:");
    println!("  PerPos        : supported (HDOP Component Feature + Likelihood Channel Feature; data trees tie HDOP to each position) — see exp_fig6_particle");
    println!("  PoSIM-style   : partial (hdop info readable but latest-value-only; no data tree, wrong position association)");
    println!("  LocationStack : not possible without source changes ({got}/30 polls returned positions; none carries HDOP)");
    println!(
        "  MiddleWhere   : not possible — {} world-model updates stored, queryable by place only",
        world.stores()
    );
    println!();

    println!("§3.3 power-aware tracking (EnTracked):");
    println!("  PerPos        : supported (PowerStrategy Component Feature + EnTracked Channel Feature) — see exp_fig7_entracked");
    println!("  PoSIM-style   : partial (power control feature + policy, but no process awareness: cannot react to interpreter output distances)");
    println!("  LocationStack : not possible (no sensor configuration path through the layers)");
    println!(
        "  MiddleWhere   : does not apply — \"configuration of sensors is not discussed\" (§3.3)\n"
    );

    println!(
        "capability matrix (y = supported, p = partial, n = requires middleware source change):"
    );
    println!(
        "  {:<36}{:>8}{:>8}{:>10}{:>12}",
        "", "PerPos", "PoSIM", "LocStack", "MiddleWhere"
    );
    for (row, a, b, c, d) in [
        ("access low-level info (HDOP/sats)", "y", "y", "n", "n"),
        ("info tied to specific position", "y", "n", "n", "n"),
        ("filter before delivery", "y", "n", "n", "n"),
        ("insert processing step at runtime", "y", "n", "n", "n"),
        ("attach cross-step (channel) logic", "y", "n", "n", "n"),
        ("control sensor power", "y", "y", "n", "n"),
        ("process-state-driven power control", "y", "p", "n", "n"),
        ("plug in new fusion (particle filter)", "y", "n", "n", "n"),
        ("spatial queries over many targets", "p", "n", "n", "y"),
    ] {
        println!("  {row:<36}{a:>8}{b:>8}{c:>10}{d:>12}");
    }
}
