//! Trace recording and replay — the paper's emulator (§3.2): "an
//! emulator component that reads sensor data from a file and presents
//! itself as a sensor. The emulator was plugged into the processing
//! graph, taking the place of the sensors."

use std::any::Any;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use perpos_core::component::{Component, ComponentCtx, ComponentDescriptor, MethodSpec};
use perpos_core::feature::{ComponentFeature, FeatureAction, FeatureDescriptor, FeatureHost};
use perpos_core::prelude::*;
use serde::{Deserialize, Serialize};

/// An error loading or saving a [`Trace`].
///
/// Distinguishes transport problems (the file could not be read or
/// written) from content problems (the bytes are not a valid trace —
/// truncated recordings, corrupt JSON, or a well-formed document of the
/// wrong shape). Callers that retry on `Io` should treat `Parse` as
/// permanent.
#[derive(Debug)]
pub enum TraceError {
    /// Reading or writing the underlying stream failed.
    Io(std::io::Error),
    /// The bytes were read but do not decode as a trace.
    Parse(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse(msg) => write!(f, "trace parse error: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Parse(_) => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A recorded sequence of data items, ordered by timestamp.
///
/// ```
/// use perpos_core::prelude::*;
/// use perpos_sensors::{EmulatorSource, Trace};
///
/// let trace = Trace::new(vec![DataItem::new(
///     kinds::RAW_STRING,
///     SimTime::ZERO,
///     Value::from("$GPGGA,..."),
/// )]);
/// let mut buf = Vec::new();
/// trace.save(&mut buf)?;
/// let reloaded = Trace::load(&buf[..])?;
/// let emulator = EmulatorSource::new("replay", reloaded);
/// assert_eq!(emulator.remaining(), 1);
/// # Ok::<(), perpos_sensors::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// The recorded items.
    pub items: Vec<DataItem>,
}

impl Trace {
    /// Creates a trace from items (sorted by timestamp).
    pub fn new(mut items: Vec<DataItem>) -> Self {
        items.sort_by_key(|i| i.timestamp);
        Trace { items }
    }

    /// Number of recorded items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Serializes the trace as JSON to a writer.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the writer fails; [`TraceError::Parse`] if
    /// the trace cannot be encoded.
    pub fn save(&self, mut w: impl Write) -> Result<(), TraceError> {
        let json =
            serde_json::to_string_pretty(self).map_err(|e| TraceError::Parse(e.to_string()))?;
        w.write_all(json.as_bytes())?;
        Ok(())
    }

    /// Writes the trace to a file.
    ///
    /// # Errors
    ///
    /// See [`Trace::save`].
    pub fn save_to_file(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        let f = std::fs::File::create(path)?;
        self.save(f)
    }

    /// Reads a trace from a reader.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the reader fails; [`TraceError::Parse`] if
    /// the bytes are truncated, corrupt, or not a trace document.
    pub fn load(mut r: impl Read) -> Result<Self, TraceError> {
        let mut buf = String::new();
        r.read_to_string(&mut buf)?;
        serde_json::from_str(&buf).map_err(|e| TraceError::Parse(e.to_string()))
    }

    /// Reads a trace from a file.
    ///
    /// # Errors
    ///
    /// See [`Trace::load`].
    pub fn load_from_file(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let f = std::fs::File::open(path)?;
        Trace::load(f)
    }
}

/// A Component Feature that records every item its host produces.
///
/// Attach to a sensor node, run the scenario, then call
/// [`TraceRecorderFeature::trace`] (via the shared handle) to obtain the
/// recording for later replay.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorderFeature {
    items: Arc<Mutex<Vec<DataItem>>>,
}

impl TraceRecorderFeature {
    /// The feature name.
    pub const NAME: &'static str = "TraceRecorder";

    /// Creates a recorder.
    pub fn new() -> Self {
        TraceRecorderFeature::default()
    }

    /// A handle sharing this recorder's buffer; survives attachment.
    pub fn handle(&self) -> TraceRecorderFeature {
        self.clone()
    }

    /// The recording so far.
    pub fn trace(&self) -> Trace {
        Trace::new(self.items.lock().clone())
    }

    /// Number of recorded items.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
}

impl ComponentFeature for TraceRecorderFeature {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new(Self::NAME).method(MethodSpec::new("recordedCount", "() -> int"))
    }

    fn on_produce(
        &mut self,
        item: DataItem,
        _host: &mut FeatureHost<'_>,
    ) -> Result<FeatureAction, CoreError> {
        self.items.lock().push(item.clone());
        Ok(FeatureAction::Continue(item))
    }

    fn invoke(
        &mut self,
        method: &str,
        _args: &[Value],
        _host: &mut FeatureHost<'_>,
    ) -> Result<Value, CoreError> {
        match method {
            "recordedCount" => Ok(Value::Int(self.items.lock().len() as i64)),
            other => Err(CoreError::NoSuchMethod {
                target: Self::NAME.into(),
                method: other.into(),
            }),
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The emulator Source component: replays a [`Trace`] against the
/// simulation clock, presenting itself as a sensor.
///
/// Each engine tick, every not-yet-replayed item whose recorded timestamp
/// is due is re-emitted (with its original payload, attributes and
/// timestamp preserved). Reflective method: `remainingCount() -> int`.
#[derive(Debug)]
pub struct EmulatorSource {
    name: String,
    trace: Trace,
    provides: Vec<DataKind>,
    cursor: usize,
}

impl EmulatorSource {
    /// Creates an emulator replaying `trace`.
    pub fn new(name: impl Into<String>, trace: Trace) -> Self {
        let mut provides: Vec<DataKind> = Vec::new();
        for item in &trace.items {
            if !provides.contains(&item.kind) {
                provides.push(item.kind.clone());
            }
        }
        EmulatorSource {
            name: name.into(),
            trace,
            provides,
            cursor: 0,
        }
    }

    /// Loads a trace file and creates an emulator for it.
    ///
    /// # Errors
    ///
    /// See [`Trace::load`].
    pub fn from_file(name: impl Into<String>, path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Ok(EmulatorSource::new(name, Trace::load_from_file(path)?))
    }

    /// Items not yet replayed.
    pub fn remaining(&self) -> usize {
        self.trace.items.len() - self.cursor
    }
}

impl Component for EmulatorSource {
    fn descriptor(&self) -> ComponentDescriptor {
        // The replay cursor is state with no snapshot hooks: restored
        // instances restart the trace from the top (P018 under a fleet).
        ComponentDescriptor::source(self.name.clone(), self.provides.clone())
            .with_effects(EffectSpec::new().stateful(false))
    }

    fn on_input(
        &mut self,
        port: usize,
        _item: DataItem,
        _ctx: &mut ComponentCtx<'_>,
    ) -> Result<(), CoreError> {
        Err(CoreError::ComponentFailure {
            component: self.name.clone(),
            reason: format!("emulator source has no input port {port}"),
        })
    }

    fn on_tick(&mut self, ctx: &mut ComponentCtx<'_>) -> Result<(), CoreError> {
        while self.cursor < self.trace.items.len()
            && self.trace.items[self.cursor].timestamp <= ctx.now()
        {
            let item = self.trace.items[self.cursor].clone();
            self.cursor += 1;
            ctx.emit(item);
        }
        Ok(())
    }

    fn invoke(&mut self, method: &str, _args: &[Value]) -> Result<Value, CoreError> {
        match method {
            "remainingCount" => Ok(Value::Int(self.remaining() as i64)),
            other => Err(CoreError::NoSuchMethod {
                target: self.name.clone(),
                method: other.to_string(),
            }),
        }
    }

    fn methods(&self) -> Vec<MethodSpec> {
        vec![MethodSpec::new("remainingCount", "() -> int")]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_core::component::ComponentCtxProbe;

    fn item(t: f64, v: i64) -> DataItem {
        DataItem::new(kinds::RAW_STRING, SimTime::from_secs_f64(t), Value::Int(v))
    }

    #[test]
    fn trace_orders_items() {
        let t = Trace::new(vec![item(2.0, 2), item(0.0, 0), item(1.0, 1)]);
        let values: Vec<i64> = t.items.iter().filter_map(|i| i.payload.as_i64()).collect();
        assert_eq!(values, vec![0, 1, 2]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn trace_save_load_round_trip() {
        let t = Trace::new(vec![
            item(0.0, 1).with_attr("hdop", Value::Float(1.5)),
            item(1.0, 2),
        ]);
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let back = Trace::load(&buf[..]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn trace_file_round_trip() {
        let t = Trace::new(vec![item(0.0, 7)]);
        let dir = std::env::temp_dir().join("perpos-emulator-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        t.save_to_file(&path).unwrap();
        let emu = EmulatorSource::from_file("emu", &path).unwrap();
        assert_eq!(emu.remaining(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_trace_is_a_parse_error() {
        // A valid trace chopped mid-document must not round-trip.
        let t = Trace::new(vec![item(0.0, 1), item(1.0, 2)]);
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let cut = &buf[..buf.len() / 2];
        match Trace::load(cut) {
            Err(TraceError::Parse(msg)) => assert!(!msg.is_empty()),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_shape_is_a_parse_error() {
        // Well-formed JSON that is not a trace document.
        let err = Trace::load(&b"[1, 2, 3]"[..]).unwrap_err();
        assert!(matches!(err, TraceError::Parse(_)), "got {err:?}");
        assert!(err.to_string().contains("parse"));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Trace::load_from_file("/nonexistent/perpos-trace.json").unwrap_err();
        assert!(matches!(err, TraceError::Io(_)), "got {err:?}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn emulator_replays_by_timestamp() {
        let trace = Trace::new(vec![item(0.0, 0), item(1.0, 1), item(5.0, 2)]);
        let mut emu = EmulatorSource::new("emu", trace);
        // t = 0: only the first item.
        let out = ComponentCtxProbe::run_tick(&mut emu).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.as_i64(), Some(0));
        // t = 2: the second.
        let mut ctx = perpos_core::component::ComponentCtx::new(SimTime::from_secs_f64(2.0));
        emu.on_tick(&mut ctx).unwrap();
        let out = ctx.take_emitted();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.as_i64(), Some(1));
        assert_eq!(emu.invoke("remainingCount", &[]).unwrap(), Value::Int(1));
        // Far future: drains the rest.
        let mut ctx = perpos_core::component::ComponentCtx::new(SimTime::from_secs_f64(100.0));
        emu.on_tick(&mut ctx).unwrap();
        assert_eq!(ctx.take_emitted().len(), 1);
        assert_eq!(emu.remaining(), 0);
    }

    #[test]
    fn emulator_declares_trace_kinds() {
        let trace = Trace::new(vec![
            item(0.0, 1),
            DataItem::new(kinds::WIFI_SCAN, SimTime::ZERO, Value::Null),
        ]);
        let emu = EmulatorSource::new("emu", trace);
        let d = emu.descriptor();
        let provides = &d.output.unwrap().provides;
        assert!(provides.contains(&kinds::RAW_STRING));
        assert!(provides.contains(&kinds::WIFI_SCAN));
    }

    #[test]
    fn recorder_feature_records() {
        let recorder = TraceRecorderFeature::new();
        let handle = recorder.handle();
        let mut mw = Middleware::new();
        let mut n = 0;
        let src = mw.add_component(perpos_core::component::FnSource::new(
            "s",
            kinds::RAW_STRING,
            move |_| {
                n += 1;
                Some(Value::Int(n))
            },
        ));
        mw.attach_feature(src, recorder).unwrap();
        let app = mw.application_sink();
        mw.connect(src, app, 0).unwrap();
        mw.run_for(SimDuration::from_millis(300), SimDuration::from_millis(100))
            .unwrap();
        assert_eq!(handle.len(), 3);
        let trace = handle.trace();
        assert_eq!(trace.len(), 3);
        // Replay the recording through a fresh middleware: same values.
        let mut mw2 = Middleware::new();
        let emu = mw2.add_component(EmulatorSource::new("emu", trace));
        let app2 = mw2.application_sink();
        mw2.connect(emu, app2, 0).unwrap();
        mw2.run_for(SimDuration::from_millis(300), SimDuration::from_millis(100))
            .unwrap();
        let p = mw2
            .location_provider(perpos_core::positioning::Criteria::new())
            .unwrap();
        let values: Vec<i64> = p
            .history()
            .iter()
            .filter_map(|i| i.payload.as_i64())
            .collect();
        assert_eq!(values, vec![1, 2, 3]);
    }
}
