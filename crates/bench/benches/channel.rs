//! Criterion bench: channel layer costs — logical-time bookkeeping and
//! data-tree assembly (the Fig. 4 machinery) at varying pipeline depth.

#![allow(clippy::unwrap_used)]
use std::any::Any;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perpos_core::channel::{ChannelFeature, ChannelHost, DataTree};
use perpos_core::feature::FeatureDescriptor;
use perpos_core::prelude::*;

struct Consume;
impl ChannelFeature for Consume {
    fn descriptor(&self) -> FeatureDescriptor {
        FeatureDescriptor::new("Consume")
    }
    fn apply(&mut self, tree: &DataTree, _h: &mut ChannelHost<'_>) -> Result<(), CoreError> {
        std::hint::black_box(tree.len());
        Ok(())
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn setup(depth: usize, with_feature: bool) -> Middleware {
    let mut mw = Middleware::new();
    let mut i = 0i64;
    let src = mw.add_component(FnSource::new("src", kinds::RAW_STRING, move |_| {
        i += 1;
        Some(Value::Int(i))
    }));
    let mut prev = src;
    for d in 0..depth {
        let node = mw.add_component(FnProcessor::new(
            format!("stage{d}"),
            vec![kinds::RAW_STRING],
            kinds::RAW_STRING,
            |item| Some(item.payload.clone()),
        ));
        mw.connect(prev, node, 0).unwrap();
        prev = node;
    }
    let app = mw.application_sink();
    mw.connect(prev, app, 0).unwrap();
    if with_feature {
        let channel = mw.channel_into(app, 0).unwrap();
        mw.attach_channel_feature(channel, Consume).unwrap();
    }
    mw
}

fn bench_tree_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_tree_by_depth");
    for depth in [1usize, 3, 6, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            let mut mw = setup(d, true);
            b.iter(|| {
                mw.step().unwrap();
                mw.advance_clock(SimDuration::from_micros(1));
            });
        });
    }
    group.finish();
}

fn bench_recompute(c: &mut Criterion) {
    // Channel derivation cost after a structural change.
    let mut group = c.benchmark_group("channel_recompute");
    for depth in [4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter_with_setup(
                || setup(d, false),
                |mut mw| {
                    // attach_feature triggers a recompute.
                    let src = mw.graph().sources()[0];
                    mw.attach_feature(
                        src,
                        perpos_core::feature::TagFeature::new("T", "k", Value::Null),
                    )
                    .unwrap();
                    mw
                },
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_assembly, bench_recompute);
criterion_main!(benches);
