//! Codecs between domain types and the middleware's dynamic [`Value`]
//! representation.
//!
//! NMEA sentences travel the processing graph as `nmea.sentence` items;
//! the payload is the sentence serialized to JSON text, which keeps the
//! middleware core independent of the NMEA model while letting any
//! component or feature recover the full structure.

use perpos_core::prelude::*;
use perpos_nmea::Sentence;
use std::fmt;

/// Encodes a parsed NMEA sentence as an item payload.
pub fn sentence_to_value(s: &Sentence) -> Value {
    Value::Text(serde_json::to_string(s).expect("sentence serialization is infallible"))
}

/// A per-line defect found while scanning a trace block. Carries the
/// 1-based line number within the block so a corrupt capture can be
/// diagnosed without re-scanning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// The line does not start with `$`.
    MissingStart {
        /// 1-based line number within the block.
        line: usize,
    },
    /// The line contains a byte outside printable ASCII.
    NonAscii {
        /// 1-based line number within the block.
        line: usize,
        /// Byte offset of the first offending byte within the line.
        byte: usize,
    },
    /// A `*` suffix is present but not followed by exactly two hex digits.
    TruncatedChecksum {
        /// 1-based line number within the block.
        line: usize,
    },
    /// The `*XX` checksum does not match the XOR of the sentence body.
    BadChecksum {
        /// 1-based line number within the block.
        line: usize,
        /// Checksum computed from the sentence body.
        expected: u8,
        /// Checksum carried on the line.
        found: u8,
    },
}

impl TraceError {
    /// 1-based line number within the scanned block.
    pub fn line(&self) -> usize {
        match *self {
            TraceError::MissingStart { line }
            | TraceError::NonAscii { line, .. }
            | TraceError::TruncatedChecksum { line }
            | TraceError::BadChecksum { line, .. } => line,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceError::MissingStart { line } => {
                write!(f, "line {line}: sentence does not start with '$'")
            }
            TraceError::NonAscii { line, byte } => {
                write!(f, "line {line}: non-ASCII byte at offset {byte}")
            }
            TraceError::TruncatedChecksum { line } => {
                write!(f, "line {line}: '*' not followed by two hex digits")
            }
            TraceError::BadChecksum { line, expected, found } => {
                write!(f, "line {line}: checksum {found:02X} != computed {expected:02X}")
            }
        }
    }
}

/// Outcome of scanning one trace block: how many lines were accepted,
/// how many were skipped, and a typed error per skipped line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockReport {
    /// Lines that passed validation and were appended to the output.
    pub parsed: usize,
    /// Malformed lines that were counted and skipped (never fatal).
    pub skipped: usize,
    /// One typed error per skipped line, in block order.
    pub errors: Vec<TraceError>,
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'A'..=b'F' => Some(b - b'A' + 10),
        b'a'..=b'f' => Some(b - b'a' + 10),
        _ => None,
    }
}

/// Scans a newline-delimited block of NMEA sentences in a single
/// bounds-checked pass, appending each valid line to `out`.
///
/// Validation per line: leading `$`, printable ASCII throughout, and —
/// when the line ends in `*HH` — a two-hex-digit checksum equal to the
/// XOR of the bytes between `$` and the final `*`. Lines without a
/// trailing checksum are accepted (checksums are optional in captures);
/// a `*` in the last three bytes that is not a well-formed `*HH` is
/// reported as truncated. Blank lines and a trailing `\r` are tolerated
/// silently. Malformed lines are counted and reported, never fatal.
///
/// `out` is cleared first and then holds exactly this block's valid
/// lines, so one buffer can be reused across blocks (the allocation is
/// kept); the scan itself allocates nothing besides error records.
pub fn scan_block<'a>(block: &'a str, out: &mut Vec<&'a str>) -> BlockReport {
    out.clear();
    let mut report = BlockReport::default();
    let mut lineno = 0usize;
    for raw in block.split('\n') {
        let line = raw.strip_suffix('\r').unwrap_or(raw);
        if line.is_empty() {
            continue;
        }
        lineno += 1;
        let bytes = line.as_bytes();
        // Wide vectorizable passes instead of one branchy byte loop:
        // an all-printable check, a reverse `*` find, and an XOR fold
        // paid only by lines that actually carry a checksum.
        // Branchless violation fold: a short-circuiting `all()` compiles
        // to a byte-at-a-time loop, while an OR reduction vectorizes —
        // clean lines (the common case) pay a few lanes, not a cycle per
        // byte. The exact offset is only recovered on the error path.
        let viol = bytes
            .iter()
            .fold(0u8, |a, &b| a | u8::from(!(0x20..0x7f).contains(&b)));
        let err = if viol != 0 {
            let byte = bytes
                .iter()
                .position(|&b| !(0x20..0x7f).contains(&b))
                .unwrap_or(0);
            Some(TraceError::NonAscii { line: lineno, byte })
        } else if bytes[0] != b'$' {
            Some(TraceError::MissingStart { line: lineno })
        } else {
            // A checksum is a trailing `*HH`; `*` anywhere else is a
            // body byte (the spec XORs every byte between `$` and the
            // final `*`, so a stray `*` simply contributes to the sum).
            // Probing only the 3-byte tail keeps checksum-less lines
            // from paying a whole-line reverse scan.
            let tail = bytes.get(bytes.len().saturating_sub(3)..).unwrap_or(b"");
            match tail {
                [b'*', hi, lo] => match (hex_val(*hi), hex_val(*lo)) {
                    (Some(h), Some(l)) => {
                        let s = bytes.len() - 3;
                        let xor = bytes[1..s].iter().fold(0u8, |a, &b| a ^ b);
                        let found = (h << 4) | l;
                        (found != xor).then_some(TraceError::BadChecksum {
                            line: lineno,
                            expected: xor,
                            found,
                        })
                    }
                    _ => Some(TraceError::TruncatedChecksum { line: lineno }),
                },
                // A `*` in the tail window that is not a well-formed
                // `*HH` is a checksum cut off mid-write.
                t if t.contains(&b'*') => Some(TraceError::TruncatedChecksum { line: lineno }),
                _ => None,
            }
        };
        match err {
            Some(e) => {
                report.skipped += 1;
                report.errors.push(e);
            }
            None => {
                report.parsed += 1;
                out.push(line);
            }
        }
    }
    report
}

/// Scans `block` and feeds every valid line through the middleware's
/// batch-ingest path as `kind` items emitted by `source`, one logical
/// step per line. Returns the number of items ingested alongside the
/// scan report. Convenience wrapper over [`scan_block`] +
/// [`Middleware::ingest_batch`]; hot loops that want zero steady-state
/// allocation should call those directly with a reused line buffer.
pub fn ingest_nmea_block(
    mw: &mut Middleware,
    source: NodeId,
    kind: DataKind,
    block: &str,
    tick: SimDuration,
) -> Result<(u64, BlockReport), CoreError> {
    let mut lines = Vec::new();
    let report = scan_block(block, &mut lines);
    let ingested = mw.ingest_batch(source, kind, &lines, tick)?;
    Ok((ingested, report))
}

/// Decodes an item payload produced by [`sentence_to_value`].
pub fn value_to_sentence(v: &Value) -> Option<Sentence> {
    let text = v.as_text()?;
    serde_json::from_str(text).ok()
}

/// Convenience: decodes the sentence carried by an `nmea.sentence` item.
pub fn sentence_of(item: &DataItem) -> Option<Sentence> {
    if item.kind != kinds::NMEA_SENTENCE {
        return None;
    }
    value_to_sentence(&item.payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perpos_core::SimTime;
    use perpos_nmea::{parse_sentence, Gga};

    #[test]
    fn sentence_round_trip() {
        let line = "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47";
        let sentence = parse_sentence(line).unwrap();
        let v = sentence_to_value(&sentence);
        assert_eq!(value_to_sentence(&v), Some(sentence));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let v = sentence_to_value(&Sentence::Gga(Gga::default()));
        let item = DataItem::new(kinds::RAW_STRING, SimTime::ZERO, v);
        assert_eq!(sentence_of(&item), None);
    }

    #[test]
    fn all_sentence_types_round_trip() {
        for line in [
            "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47",
            "$GPRMC,123519,A,4807.038,N,01131.000,E,022.4,084.4,230394,003.1,W*6A",
            "$GPGSA,A,3,04,05,,09,12,,,24,,,,,2.5,1.3,2.1*39",
            "$GPGSV,2,1,08,01,40,083,46,02,17,308,41,12,07,344,39,14,22,228,45*75",
            "$GPVTG,054.7,T,034.4,M,005.5,N,010.2,K*48",
        ] {
            let s = parse_sentence(line).unwrap();
            assert_eq!(value_to_sentence(&sentence_to_value(&s)), Some(s), "{line}");
        }
    }

    #[test]
    fn malformed_payload_is_none() {
        assert_eq!(value_to_sentence(&Value::Text("not json".into())), None);
        assert_eq!(value_to_sentence(&Value::Int(1)), None);
    }

    #[test]
    fn clean_block_parses_every_line() {
        let block = "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47\r\n\
                     $GPVTG,054.7,T,034.4,M,005.5,N,010.2,K*48\n\
                     $GPXXX,no,checksum,is,fine\n";
        let mut out = Vec::new();
        let report = scan_block(block, &mut out);
        assert_eq!(report.parsed, 3);
        assert_eq!(report.skipped, 0);
        assert!(report.errors.is_empty());
        assert_eq!(out.len(), 3);
        // `\r` is stripped, the checksum suffix is kept.
        assert!(out[0].ends_with("*47"));
    }

    #[test]
    fn corrupt_block_counts_and_skips_each_defect() {
        // A realistic corrupt capture: good line, bad checksum, binary
        // garbage mid-stream, a line missing '$', a '*' cut off by a
        // write tear, blank separators, then a good tail line.
        let block = "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47\n\
                     $GPVTG,054.7,T,034.4,M,005.5,N,010.2,K*FF\n\
                     \u{fffd}\u{fffd}binary tear\n\
                     GPRMC,123519,A,4807.038,N\n\
                     $GPGSA,A,3,04,05*4\n\
                     \n\
                     $GPXXX,tail\n";
        let mut out = Vec::new();
        let report = scan_block(block, &mut out);
        assert_eq!(report.parsed, 2);
        assert_eq!(report.skipped, 4);
        assert_eq!(out, vec![
            "$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*47",
            "$GPXXX,tail",
        ]);
        assert_eq!(report.errors.len(), 4);
        assert!(
            matches!(report.errors[0], TraceError::BadChecksum { line: 2, found: 0xFF, .. }),
            "{:?}",
            report.errors[0]
        );
        assert!(matches!(report.errors[1], TraceError::NonAscii { line: 3, byte: 0 }));
        assert!(matches!(report.errors[2], TraceError::MissingStart { line: 4 }));
        assert!(matches!(report.errors[3], TraceError::TruncatedChecksum { line: 5 }));
        // Errors render with their line numbers for diagnostics.
        assert!(report.errors[0].to_string().contains("line 2"));
        assert_eq!(report.errors[3].line(), 5);
    }

    #[test]
    fn checksum_is_xor_of_body() {
        // "$GPGGA,1*XX": body XOR of "GPGGA,1".
        let xor = "GPGGA,1".bytes().fold(0u8, |a, b| a ^ b);
        let good = format!("$GPGGA,1*{xor:02X}\n");
        let bad = format!("$GPGGA,1*{:02X}\n", xor ^ 1);
        let mut out = Vec::new();
        assert_eq!(scan_block(&good, &mut out).parsed, 1);
        let report = scan_block(&bad, &mut out);
        assert_eq!(report.skipped, 1);
        assert!(
            matches!(report.errors[0], TraceError::BadChecksum { expected, found, .. }
                if expected == xor && found == xor ^ 1)
        );
    }

    #[test]
    fn block_ingest_feeds_valid_lines_through_the_graph() {
        use std::sync::{Arc, Mutex};

        let mut mw = Middleware::new();
        let src = mw.add_component(FnSource::new("trace", kinds::RAW_STRING, |_| None));
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let tap_seen = Arc::clone(&seen);
        let tap = mw.add_component(FnProcessor::new(
            "tap",
            vec![kinds::RAW_STRING],
            kinds::RAW_STRING,
            move |item: &DataItem| {
                if let Some(text) = item.payload.as_text() {
                    tap_seen.lock().unwrap().push(text.to_string());
                }
                None
            },
        ));
        mw.connect(src, tap, 0).unwrap();

        let block = "$GPXXX,one\nnope\n$GPXXX,two\n";
        let (ingested, report) =
            ingest_nmea_block(&mut mw, src, kinds::RAW_STRING, block, SimDuration::from_micros(1))
                .unwrap();
        assert_eq!(ingested, 2);
        assert_eq!(report.parsed, 2);
        assert_eq!(report.skipped, 1);
        assert_eq!(*seen.lock().unwrap(), vec!["$GPXXX,one", "$GPXXX,two"]);
    }
}
