use std::error::Error;
use std::fmt;

/// Error type for invalid geodetic values.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// Latitude outside `[-90, 90]` degrees.
    LatitudeOutOfRange(f64),
    /// Longitude outside `[-180, 180]` degrees.
    LongitudeOutOfRange(f64),
    /// A coordinate value was NaN or infinite.
    NotFinite(&'static str),
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::LatitudeOutOfRange(v) => {
                write!(f, "latitude {v} out of range [-90, 90]")
            }
            GeoError::LongitudeOutOfRange(v) => {
                write!(f, "longitude {v} out of range [-180, 180]")
            }
            GeoError::NotFinite(what) => write!(f, "{what} must be finite"),
        }
    }
}

impl Error for GeoError {}
