//! Ready-made validation gates for the core's `*_checked` composition
//! entry points.
//!
//! [`perpos_core::assembly::GraphConfig::instantiate_checked`] and
//! [`perpos_core::assembly::Assembler::sync_checked`] accept a check
//! callback; this module builds those callbacks from the analysis
//! passes. A gate fails on **error** diagnostics only — warnings (dead
//! components, unconnected sinks) describe states that are legal while a
//! process is being grown incrementally.

use perpos_core::assembly::GraphConfig;
use perpos_core::graph::NodeInfo;
use perpos_core::CoreError;

use crate::catalog::TypeCatalog;
use crate::config::analyze_config;
use crate::diagnostic::Report;
use crate::live::analyze_structure;

/// Converts a report's errors into the `CoreError` a gate must return.
fn reject(report: &Report) -> Result<(), CoreError> {
    let Some(first) = report.errors().next() else {
        return Ok(());
    };
    let count = report.errors().count();
    let mut reason = format!("[{}] {}", first.code, first.message);
    if count > 1 {
        reason.push_str(&format!(" (and {} more error(s))", count - 1));
    }
    Err(CoreError::ComponentFailure {
        component: first
            .path
            .first()
            .cloned()
            .unwrap_or_else(|| "graph".to_string()),
        reason,
    })
}

/// A configuration gate for `GraphConfig::instantiate_checked`: rejects
/// configurations whose analysis against `catalog` reports errors.
pub fn config_gate(catalog: TypeCatalog) -> impl Fn(&GraphConfig) -> Result<(), CoreError> {
    move |config| reject(&analyze_config(config, &catalog))
}

/// A structure gate for `Assembler::sync_checked`: rejects process
/// structures whose whole-graph analysis reports errors.
pub fn structure_gate() -> impl Fn(&[NodeInfo]) -> Result<(), CoreError> {
    |nodes| reject(&analyze_structure(nodes))
}
