//! Exit-status and output-format semantics of the `perpos-lint` binary.

#![allow(clippy::unwrap_used)]

use std::process::{Command, Output};

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_perpos-lint"))
        .args(args)
        .output()
        .expect("perpos-lint runs")
}

#[test]
fn clean_config_exits_zero() {
    let out = lint(&[
        &fixture("pipeline_ok.json"),
        "--catalog",
        &fixture("catalog.json"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}

#[test]
fn config_with_errors_exits_one() {
    let out = lint(&[
        &fixture("p001_kind_mismatch.json"),
        "--catalog",
        &fixture("catalog.json"),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error [P001]"), "{stdout}");
    assert!(stdout.contains("hint:"), "{stdout}");
}

#[test]
fn config_with_warnings_only_exits_zero() {
    let out = lint(&[
        &fixture("p004_dead_component.json"),
        "--catalog",
        &fixture("catalog.json"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("warning [P004]"), "{stdout}");
}

#[test]
fn json_format_is_machine_readable() {
    let out = lint(&[
        &fixture("p005_cycle.json"),
        "--catalog",
        &fixture("catalog.json"),
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let value = serde_json::parse_value_str(&stdout).expect("valid JSON");
    let map = value.as_map().unwrap();
    let errors = map.iter().find(|(k, _)| k == "errors").unwrap();
    assert_eq!(errors.1, serde::Content::I64(1), "{stdout}");
    let diags = map
        .iter()
        .find(|(k, _)| k == "diagnostics")
        .and_then(|(_, v)| v.as_list())
        .unwrap();
    assert_eq!(diags.len(), 1);
}

#[test]
fn json_report_carries_schema_version() {
    let out = lint(&[
        &fixture("pipeline_ok.json"),
        "--catalog",
        &fixture("catalog.json"),
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let value = serde_json::parse_value_str(&stdout).expect("valid JSON");
    let map = value.as_map().unwrap();
    let version = map.iter().find(|(k, _)| k == "schema_version").unwrap();
    assert_eq!(
        version.1,
        serde::Content::I64(i64::from(perpos_analysis::JSON_SCHEMA_VERSION)),
        "{stdout}"
    );
}

#[test]
fn facts_json_reports_inferred_dataflow() {
    let out = lint(&[
        &fixture("dataflow_ok.json"),
        "--catalog",
        &fixture("catalog.json"),
        "--facts",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let value = serde_json::parse_value_str(&stdout).expect("valid JSON");
    let map = value.as_map().unwrap();
    let version = map.iter().find(|(k, _)| k == "schema_version").unwrap();
    assert_eq!(
        version.1,
        serde::Content::I64(i64::from(perpos_analysis::JSON_SCHEMA_VERSION)),
        "{stdout}"
    );
    let nodes = map
        .iter()
        .find(|(k, _)| k == "nodes")
        .and_then(|(_, v)| v.as_list())
        .unwrap();
    assert_eq!(nodes.len(), 10, "{stdout}");
    // The inferred frame and rate of the GPS source survive the trip
    // through the solver and the JSON encoder.
    assert!(stdout.contains("wgs84"), "{stdout}");
    let edges = map
        .iter()
        .find(|(k, _)| k == "edges")
        .and_then(|(_, v)| v.as_list())
        .unwrap();
    assert_eq!(edges.len(), 10, "{stdout}");
    // Execution metadata: the fixture does not request an executor, so
    // the doc reports the default, and the level structure layers every
    // node exactly once.
    let executor = map.iter().find(|(k, _)| k == "executor").unwrap();
    assert_eq!(
        executor.1,
        serde::Content::Str("sequential".into()),
        "{stdout}"
    );
    let levels = map
        .iter()
        .find(|(k, _)| k == "levels")
        .and_then(|(_, v)| v.as_list())
        .unwrap();
    let layered: usize = levels
        .iter()
        .map(|lvl| lvl.as_list().map_or(0, |l| l.len()))
        .sum();
    assert_eq!(layered, 10, "{stdout}");
}

#[test]
fn facts_json_exit_status_still_reflects_errors() {
    let out = lint(&[
        &fixture("p012_raw_to_sink.json"),
        "--catalog",
        &fixture("catalog.json"),
        "--facts",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The taint fact itself is visible in the output.
    assert!(stdout.contains("raw.string"), "{stdout}");
}

#[test]
fn explain_prints_description_example_and_fix() {
    let out = lint(&["--explain", "P012"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("P012:"), "{stdout}");
    assert!(stdout.contains("example:"), "{stdout}");
    assert!(stdout.contains("fix:"), "{stdout}");
}

#[test]
fn explain_all_covers_every_code() {
    let out = lint(&["--explain", "all"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    for code in perpos_analysis::Code::ALL {
        assert!(
            stdout.contains(&format!("{code}:")),
            "--explain all is missing {code}"
        );
    }
}

#[test]
fn lint_output_is_byte_deterministic() {
    // Satellite of the synthesis work: both renderers emit canonically
    // sorted arrays, so two runs over the same input are byte-identical.
    for extra in [&["--format", "json"][..], &["--facts", "json"][..]] {
        let mut args = vec![
            fixture("p004_dead_component.json"),
            "--catalog".to_string(),
            fixture("catalog.json"),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        let args: Vec<&str> = args.iter().map(String::as_str).collect();
        let first = lint(&args);
        let second = lint(&args);
        assert_eq!(
            first.stdout, second.stdout,
            "{extra:?} output must be reproducible"
        );
        assert_eq!(first.status.code(), second.status.code());
    }
}

#[test]
fn synth_feasible_goal_emits_config_that_lints_clean() {
    let catalog = format!(
        "{}/../../examples/configs/catalog.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let out = lint(&[
        "synth",
        "--catalog",
        &catalog,
        "--accuracy-m",
        "5",
        "--no-identifiable-at-sink",
        "--emit",
        "config",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The emitted GraphConfig must survive the full lint pass it was
    // synthesized under.
    let dir = std::env::temp_dir().join("perpos_synth_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("synthesized.json");
    std::fs::write(&path, &stdout).unwrap();
    let relint = lint(&[path.to_str().unwrap(), "--catalog", &catalog]);
    assert_eq!(relint.status.code(), Some(0), "{relint:?}");
}

#[test]
fn synth_output_is_byte_deterministic() {
    let catalog = format!(
        "{}/../../examples/configs/catalog.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let args = ["synth", "--catalog", &catalog, "--accuracy-m", "40"];
    let first = lint(&args);
    let second = lint(&args);
    assert_eq!(first.status.code(), Some(0), "{first:?}");
    assert_eq!(first.stdout, second.stdout, "ranking must be reproducible");
}

#[test]
fn synth_doc_carries_schema_version_and_goal() {
    let catalog = format!(
        "{}/../../examples/configs/catalog.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let out = lint(&["synth", "--catalog", &catalog, "--accuracy-m", "5"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let value = serde_json::parse_value_str(&stdout).expect("valid JSON");
    let map = value.as_map().unwrap();
    let version = map.iter().find(|(k, _)| k == "schema_version").unwrap();
    assert_eq!(
        version.1,
        serde::Content::I64(i64::from(perpos_analysis::JSON_SCHEMA_VERSION)),
        "{stdout}"
    );
    assert!(map.iter().any(|(k, _)| k == "synthesis"), "{stdout}");
}

#[test]
fn synth_infeasible_goal_names_binding_constraint_and_exits_one() {
    // The coarse fixture catalog bottoms out at 3 m; an 0.5 m goal must
    // fail with the accuracy constraint named, not an empty list.
    let out = lint(&[
        "synth",
        "--catalog",
        &fixture("synth_coarse_catalog.json"),
        "--accuracy-m",
        "0.5",
        "--format",
        "human",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("[P015]"), "{stdout}");
    assert!(stdout.contains("accuracy bound is binding"), "{stdout}");
    assert!(stdout.contains("requested 0.5"), "{stdout}");
    assert!(stdout.contains("achieves 3"), "{stdout}");
}

#[test]
fn synth_without_catalog_exits_two() {
    let out = lint(&["synth", "--accuracy-m", "5"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("synth needs --catalog"));
}

#[test]
fn explain_unknown_code_exits_two() {
    let out = lint(&["--explain", "P099"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown diagnostic code"));
}

#[test]
fn missing_file_exits_two() {
    let out = lint(&["/nonexistent/config.json"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("cannot read"));
}

#[test]
fn bad_usage_exits_two_and_help_exits_zero() {
    let out = lint(&["--format", "xml", "x.json"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8(out.stderr).unwrap().contains("usage:"));

    let out = lint(&["--help"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8(out.stdout).unwrap().contains("usage:"));
}

#[test]
fn without_catalog_unknown_types_are_reported() {
    let out = lint(&[&fixture("pipeline_ok.json")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("unknown component type"), "{stdout}");
}
