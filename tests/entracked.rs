//! End-to-end test of the §3.3 / Fig. 7 adaptation: EnTracked power
//! management through the Power Strategy Component Feature and the
//! EnTracked Channel Feature.

#![allow(clippy::unwrap_used)]
use perpos::energy::{EnTrackedFeature, EnergyMeter, PowerModel, PowerStrategyFeature};
use perpos::prelude::*;

struct Run {
    energy: EnergyMeter,
    reports: Vec<(SimTime, Point2)>,
    walk: Trajectory,
}

fn run(walk: Trajectory, entracked_threshold: Option<f64>, seconds: u64) -> Run {
    let frame = LocalFrame::new(Wgs84::new(56.17, 10.19, 0.0).unwrap());
    let mut mw = Middleware::new();
    let gps = mw.add_component(
        GpsSimulator::new("GPS", frame, walk.clone())
            .with_seed(17)
            .with_acquisition_delay(SimDuration::from_secs(3)),
    );
    let parser = mw.add_component(Parser::new());
    let interpreter = mw.add_component(Interpreter::new());
    let motion = mw.add_component(MotionSensor::new("Motion", walk.clone()).with_seed(19));
    let app = mw.application_sink();
    mw.connect(gps, parser, 0).unwrap();
    mw.connect(parser, interpreter, 0).unwrap();
    mw.connect(interpreter, app, 0).unwrap();
    let target = mw.add_target("device");
    mw.connect(motion, target.node(), 0).unwrap();
    if let Some(threshold) = entracked_threshold {
        mw.attach_feature(gps, PowerStrategyFeature::new()).unwrap();
        let channel = mw.channel_into(target.node(), 0).unwrap();
        mw.attach_channel_feature(channel, EnTrackedFeature::new(gps, interpreter, threshold))
            .unwrap();
    }
    let provider = mw
        .location_provider(Criteria::new().kind(kinds::POSITION_WGS84))
        .unwrap();
    let mut energy = EnergyMeter::new(PowerModel::default());
    let mut seen = 0usize;
    let mut reports = Vec::new();
    for _ in 0..seconds {
        mw.step().unwrap();
        let on = mw.invoke(gps, "isEnabled", &[]).unwrap() == Value::Bool(true);
        let acq = mw.invoke(gps, "isAcquiring", &[]).unwrap() == Value::Bool(true);
        energy.sample(on, acq, true, SimDuration::from_secs(1));
        let history = provider.history();
        for item in &history[seen..] {
            if let Some(p) = item.payload.as_position() {
                reports.push((item.timestamp, frame.to_local(p.coord())));
            }
        }
        energy.add_transmissions((history.len() - seen) as u64);
        seen = history.len();
        mw.advance_clock(SimDuration::from_secs(1));
    }
    Run {
        energy,
        reports,
        walk,
    }
}

/// The "error of the last known position" metric EnTracked bounds.
fn max_staleness_error(run: &Run, seconds: u64) -> f64 {
    let mut worst: f64 = 0.0;
    for s in 0..seconds {
        let t = SimTime::from_secs_f64(s as f64);
        let truth = run.walk.position_at(t);
        let last_known = run
            .reports
            .iter()
            .rev()
            .find(|(rt, _)| *rt <= t)
            .map(|(_, p)| *p);
        if let Some(p) = last_known {
            worst = worst.max(p.distance(&truth));
        }
    }
    worst
}

#[test]
fn entracked_saves_energy_on_stationary_target() {
    let stationary = Trajectory::stationary(Point2::new(3.0, 3.0));
    let always = run(stationary.clone(), None, 300);
    let ent = run(stationary, Some(50.0), 300);
    assert!(
        ent.energy.total_j() < always.energy.total_j() / 4.0,
        "EnTracked {:.0} J must be far below always-on {:.0} J",
        ent.energy.total_j(),
        always.energy.total_j()
    );
    assert!(ent.energy.gps_on_s() < 60.0, "GPS mostly off");
    assert!(!ent.reports.is_empty(), "at least one position reported");
}

#[test]
fn entracked_bounds_error_while_moving() {
    let walk = Trajectory::new(vec![Point2::new(0.0, 0.0), Point2::new(350.0, 0.0)], 1.4);
    let threshold = 60.0;
    let seconds = 250;
    let ent = run(walk.clone(), Some(threshold), seconds);
    let always = run(walk, None, seconds);

    assert!(
        ent.energy.total_j() < always.energy.total_j(),
        "duty-cycling must save energy while moving too ({:.0} vs {:.0} J)",
        ent.energy.total_j(),
        always.energy.total_j()
    );
    let stale = max_staleness_error(&ent, seconds);
    // The threshold is on distance between updates; acquisition delay adds
    // slack, so allow 2x.
    assert!(
        stale < threshold * 2.0,
        "last-known-position error {stale:.0} m must stay near the {threshold} m threshold"
    );
    assert!(
        ent.reports.len() >= 3,
        "periodic reports while moving: {}",
        ent.reports.len()
    );
}

#[test]
fn tighter_threshold_costs_more_energy() {
    let walk = Trajectory::new(vec![Point2::new(0.0, 0.0), Point2::new(350.0, 0.0)], 1.4);
    let tight = run(walk.clone(), Some(20.0), 250);
    let loose = run(walk, Some(120.0), 250);
    assert!(
        tight.energy.total_j() > loose.energy.total_j(),
        "tight {:.0} J vs loose {:.0} J",
        tight.energy.total_j(),
        loose.energy.total_j()
    );
    assert!(tight.reports.len() > loose.reports.len());
}
