//! Structured diagnostics: stable codes, severities, offending paths and
//! fix-it hints, with human-readable and JSON renderings.

use std::fmt;

use serde::{Content, Serialize};

/// Stable diagnostic codes. The numeric part never changes meaning once
/// released; renderers and tests key on these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Type-flow mismatch: a producer's effective output kinds cannot
    /// satisfy the consuming port's accepted kinds.
    P001,
    /// Dangling required input: a declared input port is never connected.
    P002,
    /// Unsatisfiable feature requirement: a port's `requiring_feature`
    /// declaration cannot be met by the upstream producer.
    P003,
    /// Dead component: no directed path to any sink (includes orphan
    /// sources and unconsumed subgraphs).
    P004,
    /// Configuration cycle: the declared connections contain a cycle, so
    /// instantiation would be rejected.
    P005,
    /// Feature conflict: features on one component add the same data kind
    /// or expose colliding method names.
    P006,
    /// Configuration reference error: unknown instance/type names,
    /// duplicate instance names, out-of-range or doubly-driven ports.
    P007,
    /// Non-monotonic logical time observed on a channel at runtime.
    P008,
    /// Source component with no explicit fault policy: the engine's
    /// default `Propagate` aborts the whole run on the first sensor
    /// fault.
    P009,
}

impl Code {
    /// All codes, in numeric order.
    pub const ALL: [Code; 9] = [
        Code::P001,
        Code::P002,
        Code::P003,
        Code::P004,
        Code::P005,
        Code::P006,
        Code::P007,
        Code::P008,
        Code::P009,
    ];

    /// The stable textual form, e.g. `"P001"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::P001 => "P001",
            Code::P002 => "P002",
            Code::P003 => "P003",
            Code::P004 => "P004",
            Code::P005 => "P005",
            Code::P006 => "P006",
            Code::P007 => "P007",
            Code::P008 => "P008",
            Code::P009 => "P009",
        }
    }

    /// One-line description of what the code means.
    pub fn summary(&self) -> &'static str {
        match self {
            Code::P001 => "type-flow mismatch between producer and consumer port",
            Code::P002 => "declared input port is never connected",
            Code::P003 => "port feature requirement cannot be satisfied",
            Code::P004 => "component has no path to any sink",
            Code::P005 => "configuration connections form a cycle",
            Code::P006 => "conflicting features on one component",
            Code::P007 => "configuration reference error",
            Code::P008 => "non-monotonic logical time on a channel",
            Code::P009 => "source component has no explicit fault policy",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Code {
    fn to_content(&self) -> Content {
        Content::Str(self.as_str().to_string())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational only.
    Info,
    /// Suspicious but not necessarily wrong.
    Warning,
    /// The graph/configuration is unsound; gates reject on these.
    Error,
}

impl Severity {
    /// Lower-case textual form used in both renderers.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Severity {
    fn to_content(&self) -> Content {
        Content::Str(self.as_str().to_string())
    }
}

/// One finding of an analysis pass.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity.
    pub severity: Severity,
    /// What is wrong, in one sentence.
    pub message: String,
    /// The offending node/edge path, outermost first — e.g.
    /// `["gps", "parser(port 0)"]` for an edge, `["interp"]` for a node.
    pub path: Vec<String>,
    /// How to fix it, when the analysis can tell.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic; attach a hint with [`Diagnostic::with_hint`].
    pub fn new(
        code: Code,
        severity: Severity,
        message: impl Into<String>,
        path: Vec<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            path,
            hint: None,
        }
    }

    /// Attaches a fix-it hint (builder style).
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] at {}: {}",
            self.severity,
            self.code,
            if self.path.is_empty() {
                "<graph>".to_string()
            } else {
                self.path.join(" -> ")
            },
            self.message
        )?;
        if let Some(h) = &self.hint {
            write!(f, "\n    hint: {h}")?;
        }
        Ok(())
    }
}

/// The result of running analysis passes: an ordered list of findings.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Report {
    /// Findings in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Merges another report's findings into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Findings with [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the report is completely clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings carrying `code`.
    pub fn with_code(&self, code: Code) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Human-readable multi-line rendering (one finding per line, hint
    /// lines indented), ending with a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let errors = self.errors().count();
        let warnings = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        out.push_str(&format!(
            "{} finding(s): {} error(s), {} warning(s)\n",
            self.diagnostics.len(),
            errors,
            warnings
        ));
        out
    }

    /// Machine-readable JSON rendering.
    pub fn render_json(&self) -> String {
        #[derive(Serialize)]
        struct JsonReport {
            errors: u64,
            warnings: u64,
            diagnostics: Vec<Diagnostic>,
        }
        let body = JsonReport {
            errors: self.errors().count() as u64,
            warnings: self
                .diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Warning)
                .count() as u64,
            diagnostics: self.diagnostics.clone(),
        };
        serde_json::to_string_pretty(&body)
            .expect("diagnostic report is plain data and always serializes")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_human())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(
            Diagnostic::new(
                Code::P001,
                Severity::Error,
                "producer provides [\"raw\"] but port accepts [\"nmea\"]",
                vec!["gps".into(), "parser(port 0)".into()],
            )
            .with_hint("insert a converting component or fix the port spec"),
        );
        r.push(Diagnostic::new(
            Code::P004,
            Severity::Warning,
            "no path to any sink",
            vec!["orphan".into()],
        ));
        r
    }

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn report_classifies_findings() {
        let r = sample();
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.with_code(Code::P001).len(), 1);
        assert_eq!(r.with_code(Code::P008).len(), 0);
    }

    #[test]
    fn human_rendering_carries_code_path_and_hint() {
        let text = sample().render_human();
        assert!(
            text.contains("error [P001] at gps -> parser(port 0)"),
            "{text}"
        );
        assert!(
            text.contains("hint: insert a converting component"),
            "{text}"
        );
        assert!(
            text.contains("2 finding(s): 1 error(s), 1 warning(s)"),
            "{text}"
        );
    }

    #[test]
    fn json_rendering_is_machine_readable() {
        let json = sample().render_json();
        let v = serde_json::parse_value_str(&json).expect("report JSON parses");
        let map = v.as_map().expect("top-level object");
        let diags = map
            .iter()
            .find(|(k, _)| k == "diagnostics")
            .and_then(|(_, v)| v.as_list())
            .expect("diagnostics array");
        assert_eq!(diags.len(), 2);
        let first = diags[0].as_map().expect("diagnostic object");
        let get = |k: &str| {
            first
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("code"), Some(serde::Content::Str("P001".into())));
        assert_eq!(get("severity"), Some(serde::Content::Str("error".into())));
    }

    #[test]
    fn all_codes_have_distinct_text_and_summaries() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code text {c}");
            assert!(!c.summary().is_empty());
        }
    }
}
